"""Behavioral analog/mixed-signal circuit blocks for the readout chains."""

from .adc import ADC
from .amplifier import Amplifier, DifferenceAmplifier
from .block import Block, Chain, Gain, Passthrough, Saturation
from .buffer import ClassABBuffer
from .chopper import ChopperAmplifier, square_carrier
from .counter import (
    FrequencyCounter,
    FrequencyMeasurement,
    ReciprocalCounter,
    comparator_edges,
)
from .dda import DDAInstrumentationAmplifier
from .filters import HighPassFilter, LowPassFilter, RCLowPass
from .limiter import LimitingAmplifier
from .lockin import ACBridgeReadout, LockInAmplifier, ac_bridge_output
from .mux import AnalogMultiplexer, MuxTimeslot
from .noise import amplifier_input_noise, noise_signal, pink_noise, white_noise
from .offset_dac import OffsetCompensationDAC
from .pll import PLLReading, PhaseLockedLoop
from .signal import Signal
from .vga import VariableGainAmplifier

__all__ = [
    "ADC",
    "Amplifier",
    "AnalogMultiplexer",
    "Block",
    "Chain",
    "ChopperAmplifier",
    "ClassABBuffer",
    "DDAInstrumentationAmplifier",
    "DifferenceAmplifier",
    "FrequencyCounter",
    "FrequencyMeasurement",
    "Gain",
    "HighPassFilter",
    "ACBridgeReadout",
    "LimitingAmplifier",
    "LockInAmplifier",
    "ac_bridge_output",
    "LowPassFilter",
    "MuxTimeslot",
    "OffsetCompensationDAC",
    "PLLReading",
    "Passthrough",
    "PhaseLockedLoop",
    "RCLowPass",
    "ReciprocalCounter",
    "Saturation",
    "Signal",
    "VariableGainAmplifier",
    "amplifier_input_noise",
    "comparator_edges",
    "noise_signal",
    "pink_noise",
    "square_carrier",
    "white_noise",
]
