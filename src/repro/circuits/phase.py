"""Loop phase conditioning: the +90-degree element.

A piezoresistive bridge senses cantilever *displacement*, whose force
response sits at -90 degrees at resonance; Barkhausen's phase condition
therefore needs +90 degrees of electrical lead somewhere in the loop for
oscillation to lock at the mechanical resonance.  Integrated resonant
loops provide it with an all-pass/differentiating stage (the ETH
predecessor oscillator of the paper's ref. [3] does exactly this); here
it is modeled as a first-difference differentiator normalized to unity
gain at a reference frequency:

    y[n] = (x[n] - x[n-1]) * fs / (2 pi f_ref)

giving phase ``+90 deg - pi f / fs`` (exact lead at low f, slight lag
approaching Nyquist) and gain ``~ f / f_ref``.  Run well below Nyquist
(the loop simulations use 40+ samples per cycle) the residual phase
error is a few degrees, which the closed loop absorbs as a tiny
frequency offset — just like real hardware does.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import CircuitError
from ..units import require_positive
from .block import Block
from .signal import Signal


class PhaseLead(Block):
    """Differentiator normalized to unity gain at ``reference_frequency``."""

    def __init__(self, reference_frequency: float) -> None:
        self.reference_frequency = require_positive(
            "reference_frequency", reference_frequency
        )
        self._last = 0.0
        self._scale: float | None = None
        self._rate: float | None = None

    def _ensure(self, sample_rate: float) -> None:
        if self._scale is None or self._rate != sample_rate:
            if self.reference_frequency >= sample_rate / 2.0:
                raise CircuitError(
                    "reference frequency must be below Nyquist"
                )
            self._scale = sample_rate / (2.0 * math.pi * self.reference_frequency)
            self._rate = sample_rate

    def prepare(self, sample_rate: float) -> None:
        """Fix the sample rate before per-sample stepping."""
        self._ensure(sample_rate)

    def process(self, signal: Signal) -> Signal:
        self._ensure(signal.sample_rate)
        x = signal.samples
        diff = np.empty_like(x)
        diff[0] = x[0] - self._last
        diff[1:] = x[1:] - x[:-1]
        self._last = float(x[-1])
        return Signal(diff * self._scale, signal.sample_rate)

    def step(self, x: float) -> float:
        if self._scale is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        y = (x - self._last) * self._scale
        self._last = x
        return y

    def reset(self) -> None:
        self._last = 0.0

    def lower_stage(self):
        from ..engine.kernel import OP_DIFF, KernelOp, KernelStage

        if self._scale is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        op = KernelOp(OP_DIFF, (self._scale,), (self._last,))

        def sync(final) -> None:
            self._last = float(final[0])

        return KernelStage("PhaseLead", [op], sync)

    def response(self, frequency: np.ndarray, sample_rate: float) -> np.ndarray:
        """Exact complex response of the first difference at sample rate."""
        self._ensure(sample_rate)
        w = 2.0 * math.pi * np.asarray(frequency, dtype=float) / sample_rate
        return (1.0 - np.exp(-1j * w)) * self._scale
