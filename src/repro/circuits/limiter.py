"""Non-linear amplitude-limiting amplifier (Fig. 5).

"A non-linear amplifier limits the amplitude of the feedback loop for
stable operation."  Without it, a loop gain above unity grows the
oscillation until something saturates unpredictably; the limiter makes
the saturation *defined*: small signals see gain ``A``, large signals
converge to a fixed output level, and the oscillation amplitude settles
where the *effective* (describing-function) gain times the rest of the
loop equals one.

Model: ``y = level * tanh(A x / level)`` — smooth, memoryless,
monotonic, with exact small-signal gain ``A`` and exact asymptote
``|y| < level``.  The describing function (fundamental-harmonic gain vs
input amplitude) is computed numerically for the AGC analysis.
"""

from __future__ import annotations

import math

import numpy as np

from ..units import require_positive
from .block import Block
from .signal import Signal


class LimitingAmplifier(Block):
    """Soft-limiting (tanh) amplifier.

    Parameters
    ----------
    small_signal_gain:
        Gain for vanishing input [V/V].
    output_level:
        Asymptotic output amplitude [V].
    """

    def __init__(self, small_signal_gain: float, output_level: float) -> None:
        self.small_signal_gain = require_positive(
            "small_signal_gain", small_signal_gain
        )
        self.output_level = require_positive("output_level", output_level)

    def process(self, signal: Signal) -> Signal:
        scaled = self.small_signal_gain * signal.samples / self.output_level
        return Signal(self.output_level * np.tanh(scaled), signal.sample_rate)

    def step(self, x: float) -> float:
        scaled = self.small_signal_gain * x / self.output_level
        return self.output_level * math.tanh(scaled)

    def lower_stage(self):
        from ..engine.kernel import OP_TANH, KernelOp, KernelStage

        return KernelStage(
            "LimitingAmplifier",
            [KernelOp(OP_TANH, (self.small_signal_gain, self.output_level))],
        )

    def describing_function(self, amplitude: float, harmonics: int = 1024) -> float:
        """Effective sinusoidal gain at a given input amplitude.

        Fundamental-harmonic output amplitude of ``y(level*tanh(A sin/level))``
        divided by the input amplitude; decreases monotonically from the
        small-signal gain toward 0 — the mechanism that stabilizes the
        loop amplitude.
        """
        require_positive("amplitude", amplitude)
        theta = np.linspace(0.0, 2.0 * math.pi, harmonics, endpoint=False)
        x = amplitude * np.sin(theta)
        y = self.output_level * np.tanh(
            self.small_signal_gain * x / self.output_level
        )
        fundamental = 2.0 * np.mean(y * np.sin(theta))
        return float(fundamental / amplitude)

    def amplitude_for_gain(
        self, target_gain: float, tolerance: float = 1e-9
    ) -> float:
        """Input amplitude at which the describing function equals a target.

        Solves ``N(a) = target_gain`` by bisection; this is the predicted
        steady-state loop amplitude when the rest of the loop contributes
        gain ``1 / target_gain``.  Raises if the target is not reachable
        (>= small-signal gain).
        """
        require_positive("target_gain", target_gain)
        if target_gain >= self.small_signal_gain:
            from ..errors import OscillationError

            raise OscillationError(
                f"target gain {target_gain} not below small-signal gain "
                f"{self.small_signal_gain}; the loop cannot limit"
            )
        lo, hi = 1e-12, 1.0
        # expand hi until the describing function drops below target
        while self.describing_function(hi) > target_gain:
            hi *= 4.0
            if hi > 1e9:  # pragma: no cover - defensive
                raise RuntimeError("describing-function bracket failed")
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if self.describing_function(mid) > target_gain:
                lo = mid
            else:
                hi = mid
            if hi / lo < 1.0 + tolerance:
                break
        return math.sqrt(lo * hi)
