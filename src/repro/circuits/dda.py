"""Fully differential DDA instrumentation amplifier (Fig. 5 first stage).

"The first amplifier stage is a low-noise, fully differential
instrumentation amplifier using a fully differential-difference
amplifier (DDA) in a non-inverting feedback configuration."

A DDA has two differential input ports; with the bridge across port 1
and the feedback divider across port 2, the closed-loop gain is the
classic non-inverting ``1 + R2 / R1`` without loading the bridge — the
property that makes it the right in-amp for a kilo-ohm source.  The
behavioral model is a :class:`~repro.circuits.amplifier.DifferenceAmplifier`
whose gain is *set by the resistor ratio*, carrying the noise/offset/
GBW/CMRR parameters of the underlying DDA.

Kernel lowering is inherited from :class:`Amplifier` (``step`` and
``lower_stage`` share the same defining class, so the override-parity
check in :func:`repro.engine.kernel.lower_block` accepts the whole
family): the loop's DDA lowers to bias + gain + GBW pole ops whenever
``noise_density`` is zero — the Fig. 5 loop's case, where bridge and
amplifier noise are synthesized as one input-referred record instead —
and refuses (reference-path fallback) when per-sample noise is on.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..units import require_positive
from .amplifier import DifferenceAmplifier


class DDAInstrumentationAmplifier(DifferenceAmplifier):
    """Non-inverting feedback DDA in-amp with ratio-defined gain.

    Parameters
    ----------
    feedback_r1 / feedback_r2:
        Feedback divider [Ohm]; closed-loop gain = ``1 + r2/r1``.
    gbw:
        DDA gain-bandwidth product [Hz].
    noise_density / noise_corner:
        Input-referred noise of the DDA.
    input_offset:
        DDA input offset [V].
    cmrr_db:
        Common-mode rejection [dB].
    rails:
        Output swing limits [V].
    rng:
        Noise generator.
    """

    def __init__(
        self,
        feedback_r1: float = 1e3,
        feedback_r2: float = 49e3,
        gbw: float = 10e6,
        noise_density: float = 20e-9,
        noise_corner: float = 1e3,
        input_offset: float = 0.0,
        cmrr_db: float = 90.0,
        rails: tuple[float, float] | None = (-2.5, 2.5),
        rng: np.random.Generator | None = None,
    ) -> None:
        self.feedback_r1 = require_positive("feedback_r1", feedback_r1)
        self.feedback_r2 = require_positive("feedback_r2", feedback_r2)
        gain = 1.0 + self.feedback_r2 / self.feedback_r1
        if gbw is not None and gbw <= gain:
            raise CircuitError(
                f"DDA gbw {gbw} Hz cannot realize closed-loop gain {gain}"
            )
        super().__init__(
            gain=gain,
            gbw=gbw,
            input_offset=input_offset,
            noise_density=noise_density,
            noise_corner=noise_corner,
            rails=rails,
            rng=rng,
            cmrr_db=cmrr_db,
        )

    @property
    def closed_loop_gain(self) -> float:
        """``1 + R2/R1`` [V/V]."""
        return 1.0 + self.feedback_r2 / self.feedback_r1

    def input_impedance_advantage(self, bridge_resistance: float) -> float:
        """Gain error avoided by not loading the bridge.

        A plain resistive in-amp of input resistance ``R_in ~ R1`` would
        attenuate the bridge by ``R_in / (R_in + R_bridge)``; the DDA's
        MOS-gate inputs make that factor 1.  Returns the error factor the
        DDA avoids (1 = no advantage).
        """
        require_positive("bridge_resistance", bridge_resistance)
        return (self.feedback_r1 + bridge_resistance) / self.feedback_r1
