"""Voltage amplifier with the non-idealities the paper's chains manage.

The behavioral model covers exactly the imperfections the Fig. 4 / Fig. 5
architectures exist to fight:

* input-referred **offset** (millivolts in CMOS — 1000x the signal) —
  motivates chopping and the programmable offset-compensation stage;
* input-referred **noise**, white + 1/f with a corner — motivates
  chopping (static chain) and high-pass filtering (resonant loop);
* finite **gain-bandwidth product** — one dominant pole at
  ``gbw / gain``;
* **supply rails** — hard clipping, which is what makes uncompensated
  offset fatal rather than merely annoying.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..units import require_nonnegative, require_positive
from .block import Block
from .filters import RCLowPass
from .noise import amplifier_input_noise
from .signal import Signal


class Amplifier(Block):
    """Single-ended voltage amplifier.

    Parameters
    ----------
    gain:
        Low-frequency voltage gain [V/V]; must be positive (use an ideal
        :class:`~repro.circuits.block.Gain` of -1 for inversions).
    gbw:
        Gain-bandwidth product [Hz]; ``None`` for an ideal wideband amp.
    input_offset:
        Input-referred DC offset [V].
    noise_density:
        Input-referred white noise density [V/sqrt(Hz)].
    noise_corner:
        1/f corner frequency of the input noise [Hz].
    rails:
        Output saturation limits (low, high) [V]; ``None`` disables.
    rng:
        Random generator for the noise realization.  ``None`` falls back
        to a fixed-seed generator so simulations are reproducible (and
        cacheable) by default; pass your own generator to decorrelate
        instances.
    """

    def __init__(
        self,
        gain: float,
        gbw: float | None = None,
        input_offset: float = 0.0,
        noise_density: float = 0.0,
        noise_corner: float = 0.0,
        rails: tuple[float, float] | None = (-2.5, 2.5),
        rng: np.random.Generator | None = None,
    ) -> None:
        self.gain = require_positive("gain", gain)
        if gbw is not None:
            require_positive("gbw", gbw)
            if gbw <= gain:
                raise CircuitError(
                    f"gbw ({gbw} Hz) must exceed the DC gain ({gain}) for a "
                    "meaningful closed-loop bandwidth"
                )
        self.gbw = gbw
        self.input_offset = float(input_offset)
        self.noise_density = require_nonnegative("noise_density", noise_density)
        self.noise_corner = require_nonnegative("noise_corner", noise_corner)
        if rails is not None and rails[1] <= rails[0]:
            raise CircuitError(f"rails must be (low, high), got {rails}")
        self.rails = rails
        # deterministic fallback: an unseeded generator here would make
        # every noisy simulation unrepeatable (and uncacheable) by default
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._pole = RCLowPass(self.bandwidth) if gbw is not None else None

    @property
    def bandwidth(self) -> float:
        """Closed-loop -3 dB bandwidth ``gbw / gain`` [Hz] (inf if ideal)."""
        return float("inf") if self.gbw is None else self.gbw / self.gain

    def process(self, signal: Signal) -> Signal:
        x = signal.samples + self.input_offset
        if self.noise_density > 0.0:
            x = x + amplifier_input_noise(
                self.noise_density**2,
                self.noise_corner,
                len(x),
                signal.sample_rate,
                self._rng,
            )
        y = x * self.gain
        if self._pole is not None:
            filtered = self._pole.process(Signal(y, signal.sample_rate))
            y = filtered.samples
        if self.rails is not None:
            y = np.clip(y, self.rails[0], self.rails[1])
        return Signal(y, signal.sample_rate)

    def prepare(self, sample_rate: float) -> None:
        """Fix the sample rate before per-sample stepping."""
        if self._pole is not None:
            self._pole.prepare(sample_rate)
        self._step_rate = sample_rate

    def step(self, x: float) -> float:
        x = x + self.input_offset
        if self.noise_density > 0.0:
            # white component only in stepping mode; 1/f needs record-level
            # synthesis and is negligible within a loop's short memory.
            sigma = self.noise_density * (self._step_sigma_factor())
            x += self._rng.normal(0.0, sigma)
        y = x * self.gain
        if self._pole is not None:
            y = self._pole.step(y)
        if self.rails is not None:
            y = min(max(y, self.rails[0]), self.rails[1])
        return y

    def _step_sigma_factor(self) -> float:
        rate = getattr(self, "_step_rate", None)
        if rate is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        return (rate / 2.0) ** 0.5

    def lower_stage(self):
        from ..engine.kernel import (
            OP_BIAS,
            OP_CLIP,
            OP_GAIN,
            KernelOp,
            KernelStage,
            compose_stages,
        )
        from ..errors import LoweringError

        if self.noise_density > 0.0:
            # per-sample RNG draws cannot be replayed by a coefficient
            # program; the loop falls back to the reference path
            raise LoweringError(
                f"{type(self).__name__} draws per-sample noise "
                "(noise_density > 0)"
            )
        head = KernelStage(
            type(self).__name__,
            [
                KernelOp(OP_BIAS, (self.input_offset,)),
                KernelOp(OP_GAIN, (self.gain,)),
            ],
        )
        stages = [head]
        if self._pole is not None:
            stages.append(self._pole.lower_stage())
        if self.rails is not None:
            stages.append(
                KernelStage(
                    "rails", [KernelOp(OP_CLIP, (self.rails[0], self.rails[1]))]
                )
            )
        return compose_stages(type(self).__name__, stages)

    def reset(self) -> None:
        if self._pole is not None:
            self._pole.reset()


class DifferenceAmplifier(Amplifier):
    """Two-input difference amplifier with finite CMRR.

    Processes a differential input directly; when the common-mode
    waveform is known (e.g. bridge mid-supply plus interference), use
    :meth:`process_with_common_mode` so the CMRR leakage appears in the
    output — this is how the monolithic-vs-external interference claim is
    evaluated.

    Parameters
    ----------
    cmrr_db:
        Common-mode rejection ratio [dB].
    """

    def __init__(self, *args, cmrr_db: float = 90.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cmrr_db = require_positive("cmrr_db", cmrr_db)

    @property
    def common_mode_gain(self) -> float:
        """Gain from common-mode input to output [V/V]."""
        return self.gain / (10.0 ** (self.cmrr_db / 20.0))

    def process_with_common_mode(
        self, differential: Signal, common_mode: Signal
    ) -> Signal:
        """Amplify a differential input in the presence of common mode."""
        leak = self.common_mode_gain / self.gain
        effective = Signal(
            differential.samples + leak * common_mode.samples,
            differential.sample_rate,
        )
        return self.process(effective)
