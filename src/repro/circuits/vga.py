"""Variable-gain amplifier (Fig. 5).

"A variable gain amplifier allows to adjust to different mechanical
damping of the cantilever, due to different liquids presented to the
biosensor."  Lower Q means less displacement per drive, so the loop
needs more electrical gain to satisfy the oscillation condition; the
VGA provides it in programmable steps.
"""

from __future__ import annotations

import math


from ..errors import CircuitError
from .block import Block
from .signal import Signal


class VariableGainAmplifier(Block):
    """Digitally programmable gain in uniform dB steps.

    Parameters
    ----------
    min_gain_db / max_gain_db:
        Gain range [dB].
    steps:
        Number of programmable settings across the range (>= 2).
    setting:
        Initial setting index (0 = minimum gain).
    """

    def __init__(
        self,
        min_gain_db: float = 0.0,
        max_gain_db: float = 40.0,
        steps: int = 16,
        setting: int = 0,
    ) -> None:
        if max_gain_db <= min_gain_db:
            raise CircuitError("max_gain_db must exceed min_gain_db")
        if steps < 2:
            raise CircuitError("a VGA needs at least 2 settings")
        self.min_gain_db = float(min_gain_db)
        self.max_gain_db = float(max_gain_db)
        self.steps = int(steps)
        self._setting = 0
        self.set_setting(setting)

    @property
    def step_db(self) -> float:
        """Gain increment between adjacent settings [dB]."""
        return (self.max_gain_db - self.min_gain_db) / (self.steps - 1)

    @property
    def setting(self) -> int:
        """Current setting index."""
        return self._setting

    def set_setting(self, setting: int) -> None:
        """Program a setting index; out-of-range raises."""
        if not 0 <= setting < self.steps:
            raise CircuitError(
                f"setting {setting} outside [0, {self.steps - 1}]"
            )
        self._setting = int(setting)

    @property
    def gain_db(self) -> float:
        """Current gain [dB]."""
        return self.min_gain_db + self._setting * self.step_db

    @property
    def gain(self) -> float:
        """Current gain [V/V]."""
        return 10.0 ** (self.gain_db / 20.0)

    def set_gain_at_least(self, required_gain: float) -> float:
        """Program the lowest setting whose gain meets a requirement.

        Returns the programmed linear gain; raises if the requirement
        exceeds the VGA's range (the loop then cannot oscillate, which is
        a real failure mode in viscous liquids).
        """
        if required_gain <= 0.0:
            raise CircuitError("required gain must be positive")
        required_db = 20.0 * math.log10(required_gain)
        if required_db > self.max_gain_db + 1e-12:
            raise CircuitError(
                f"required gain {required_db:.1f} dB exceeds VGA range "
                f"[{self.min_gain_db}, {self.max_gain_db}] dB"
            )
        steps_needed = math.ceil(
            max(0.0, (required_db - self.min_gain_db)) / self.step_db - 1e-12
        )
        self.set_setting(min(steps_needed, self.steps - 1))
        return self.gain

    def process(self, signal: Signal) -> Signal:
        return Signal(signal.samples * self.gain, signal.sample_rate)

    def step(self, x: float) -> float:
        return x * self.gain

    def lower_stage(self):
        # gain is read at lowering time, so reprogramming the setting
        # between runs (the AGC search) re-lowers with the new value
        from ..engine.kernel import OP_GAIN, KernelOp, KernelStage

        return KernelStage(
            "VariableGainAmplifier", [KernelOp(OP_GAIN, (self.gain,))]
        )
