"""Lock-in detection: the alternative to chopping for bridge readout.

A chopper modulates the *signal path*; a lock-in instead excites the
*bridge* with an AC carrier and demodulates the bridge output.  Both
move the measurement away from the amplifier's 1/f region, but they are
not equivalent: AC bridge excitation also strips the **bridge's own
1/f noise** (resistance fluctuations only modulate a carrier when
current flows, so their baseband component vanishes), which chopping
cannot do — the bridge offset/noise enters the chopper *before* the
input modulator.

The model: the bridge output under AC bias is the carrier scaled by the
instantaneous bridge unbalance; the lock-in multiplies by the reference
and low-pass filters.  Bench ABL3 races it against the Fig. 4 chopper.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import CircuitError
from ..units import require_positive
from .amplifier import Amplifier
from .block import Block
from .filters import LowPassFilter
from .signal import Signal


class LockInAmplifier(Block):
    """Synchronous demodulator: mixer + output low-pass.

    Parameters
    ----------
    carrier_frequency:
        Reference/excitation frequency [Hz].
    output_cutoff:
        Post-mixer low-pass corner [Hz]; sets the measurement bandwidth.
    phase:
        Reference phase [rad]; 0 detects the in-phase component.
    preamp:
        Optional amplifier ahead of the mixer (its 1/f noise lands far
        from the carrier and is rejected — the architecture's point).
    """

    def __init__(
        self,
        carrier_frequency: float,
        output_cutoff: float,
        phase: float = 0.0,
        preamp: Amplifier | None = None,
    ) -> None:
        self.carrier_frequency = require_positive(
            "carrier_frequency", carrier_frequency
        )
        self.output_cutoff = require_positive("output_cutoff", output_cutoff)
        if output_cutoff >= carrier_frequency / 2.0:
            raise CircuitError(
                "output cutoff must sit well below the carrier"
            )
        self.phase = float(phase)
        self.preamp = preamp
        self._lowpass = LowPassFilter(output_cutoff, order=2)

    def process(self, signal: Signal) -> Signal:
        x = signal
        if self.preamp is not None:
            x = self.preamp.process(x)
        t = x.times
        reference = np.cos(
            2.0 * math.pi * self.carrier_frequency * t + self.phase
        )
        mixed = Signal(2.0 * x.samples * reference, x.sample_rate)
        return self._lowpass.process(mixed)

    def reset(self) -> None:
        self._lowpass.reset()
        if self.preamp is not None:
            self.preamp.reset()


def ac_bridge_output(
    unbalance: Signal,
    bias_amplitude: float,
    carrier_frequency: float,
) -> Signal:
    """Bridge differential output under AC excitation [V].

    ``v(t) = V_ac cos(w t) * u(t)`` with ``u`` the fractional bridge
    unbalance waveform (signal + mismatch); amplitude modulation of the
    carrier by the measurand.
    """
    require_positive("bias_amplitude", bias_amplitude)
    require_positive("carrier_frequency", carrier_frequency)
    if carrier_frequency >= unbalance.sample_rate / 2.0:
        raise CircuitError("carrier above Nyquist")
    t = unbalance.times
    carrier = bias_amplitude * np.cos(2.0 * math.pi * carrier_frequency * t)
    return Signal(carrier * unbalance.samples, unbalance.sample_rate)


class ACBridgeReadout(Block):
    """Complete AC-excitation bridge readout: excitation + lock-in.

    Consumes the *fractional unbalance* waveform (dimensionless, e.g.
    ``bridge.sensitivity() * sigma(t) / V_bias``... in practice
    ``output_voltage / V_bias`` at DC bias) and produces the demodulated
    baseband voltage, as if the same bridge were AC-biased.
    """

    def __init__(
        self,
        bias_amplitude: float,
        carrier_frequency: float,
        output_cutoff: float,
        preamp: Amplifier | None = None,
    ) -> None:
        self.bias_amplitude = require_positive("bias_amplitude", bias_amplitude)
        self.carrier_frequency = require_positive(
            "carrier_frequency", carrier_frequency
        )
        self.lockin = LockInAmplifier(
            carrier_frequency, output_cutoff, preamp=preamp
        )

    def process(self, unbalance: Signal) -> Signal:
        modulated = ac_bridge_output(
            unbalance, self.bias_amplitude, self.carrier_frequency
        )
        return self.lockin.process(modulated)

    def reset(self) -> None:
        self.lockin.reset()
