"""PLL-based frequency readout — the counter's continuous-time rival.

The paper reads the oscillation with a gated counter (±1-count grid).
The classic alternative, used in later generations of resonant-sensor
ASICs, is a phase-locked loop: an NCO tracks the input phase through a
multiplying phase detector and a PI loop filter, and the NCO's frequency
control word *is* the measurement — continuous, with resolution set by
the loop bandwidth rather than a gate grid.

Behavioral model (all discrete-time at the signal rate):

    pd[n]   = x[n] · cos(phase[n])                 (multiplier PD)
    e[n]    = LPF(pd[n])                           (implicit in the PI)
    f[n+1]  = f[n] + k_i·pd[n]                     (integrator)
    phase[n+1] = phase[n] + 2π(f[n] + k_p·pd[n])/fs

Gains follow from the requested loop bandwidth and damping via the
standard second-order PLL design equations.  Bench ABL5 races it
against both counters on the loop's own waveform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError, SignalError
from ..units import require_positive
from .signal import Signal


@dataclass(frozen=True)
class PLLReading:
    """Frequency-tracking result of one PLL run."""

    times: np.ndarray
    frequency: np.ndarray
    locked: bool
    settling_time: float

    def final_frequency(self, tail_fraction: float = 0.25) -> float:
        """Mean tracked frequency over the trailing fraction [Hz]."""
        n = len(self.frequency)
        return float(np.mean(self.frequency[int(n * (1.0 - tail_fraction)):]))

    def frequency_noise(self, tail_fraction: float = 0.25) -> float:
        """RMS wander of the tracked frequency once settled [Hz]."""
        n = len(self.frequency)
        return float(np.std(self.frequency[int(n * (1.0 - tail_fraction)):]))


def _run_tracking_loop(
    x: np.ndarray, k_p: float, k_i: float, freq0: float, dt: float
) -> np.ndarray:
    """The per-sample PLL recurrence, optimized but bit-exact.

    The recurrence is inherently serial (each phase depends on the last
    frequency), so it cannot vectorize; this scalar path instead strips
    the Python-level overhead — pure-float locals instead of numpy
    scalars (``tolist``), attribute lookups hoisted out of the loop, a
    list append instead of per-sample ndarray stores — while keeping
    every arithmetic expression in the original evaluation order, so
    the trajectory is bit-identical (``np.array_equal``) to the naive
    loop.  ``2.0 * math.pi`` is hoisted too: it is a deterministic
    product of two constants, so precomputing it changes no rounding.
    """
    two_pi = 2.0 * math.pi
    cos = math.cos
    phase = 0.0
    freq = float(freq0)
    log: list[float] = []
    append = log.append
    for sample in x.tolist():
        pd = sample * cos(phase)
        freq += k_i * pd * dt / two_pi
        instantaneous = freq + k_p * pd / two_pi
        phase += two_pi * instantaneous * dt
        if phase > math.pi:
            phase -= two_pi * round(phase / two_pi)
        # report the integrator branch: the proportional branch carries
        # the PD's 2f0 ripple, which is loop-internal, not measurement
        # output
        append(freq)
    return np.asarray(log, dtype=float)


class PhaseLockedLoop:
    """Second-order digital PLL frequency tracker.

    Parameters
    ----------
    center_frequency:
        Initial NCO frequency [Hz]; lock range is a few loop bandwidths
        around it.
    loop_bandwidth:
        Natural frequency of the tracking loop [Hz]; the resolution/
        response-time knob (noise bandwidth ~ 2x this).
    damping:
        Loop damping ratio; 0.707 is the standard choice.
    amplitude:
        Expected input amplitude [V]; normalizes the PD gain so the
        design equations hold for any signal level.
    """

    def __init__(
        self,
        center_frequency: float,
        loop_bandwidth: float,
        damping: float = 0.707,
        amplitude: float = 1.0,
    ) -> None:
        self.center_frequency = require_positive(
            "center_frequency", center_frequency
        )
        self.loop_bandwidth = require_positive("loop_bandwidth", loop_bandwidth)
        if loop_bandwidth >= center_frequency / 4.0:
            raise CircuitError(
                "loop bandwidth must sit well below the carrier"
            )
        self.damping = require_positive("damping", damping)
        self.amplitude = require_positive("amplitude", amplitude)

    def track(self, signal: Signal) -> PLLReading:
        """Lock to the waveform and return the frequency trajectory."""
        x = signal.samples
        fs = signal.sample_rate
        if self.center_frequency >= fs / 2.0:
            raise SignalError("carrier above Nyquist")

        # second-order PLL design: wn = 2*pi*B, Kp = 2*zeta*wn, Ki = wn^2,
        # PD gain = amplitude/2 (multiplier with unit NCO) absorbed below
        wn = 2.0 * math.pi * self.loop_bandwidth
        pd_gain = self.amplitude / 2.0
        k_p = 2.0 * self.damping * wn / pd_gain
        k_i = wn**2 / pd_gain

        dt = 1.0 / fs
        n = len(x)
        freq_log = _run_tracking_loop(x, k_p, k_i, self.center_frequency, dt)

        times = signal.times
        # settled when the frequency stays within 3x its final wander
        tail = freq_log[int(0.75 * n):]
        final = float(np.mean(tail))
        wander = max(float(np.std(tail)), 1e-9)
        outside = np.abs(freq_log - final) > 5.0 * wander
        settled_index = int(np.max(np.nonzero(outside)[0]) + 1) if np.any(outside) else 0
        locked = settled_index < 0.6 * n
        return PLLReading(
            times=times,
            frequency=freq_log,
            locked=locked,
            settling_time=float(times[min(settled_index, n - 1)]),
        )

    def measure(self, signal: Signal) -> float:
        """Convenience: settled frequency of a record [Hz]."""
        reading = self.track(signal)
        if not reading.locked:
            raise CircuitError("PLL failed to lock within the record")
        return reading.final_frequency()
