"""Noise waveform synthesis: white and 1/f generators.

Circuit blocks need sample-domain noise consistent with the PSDs of
:mod:`repro.transduction.noise`.  White noise of one-sided density
``S0`` [V^2/Hz] sampled at ``fs`` has per-sample variance ``S0 fs / 2``.
Flicker noise is synthesized by shaping a white spectrum with
``1/sqrt(f)`` in the frequency domain (exact 1/f PSD for the generated
record length).

All generators take an explicit :class:`numpy.random.Generator` so
simulations are reproducible and blocks sharing an RNG stay
uncorrelated.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SignalError
from ..units import require_nonnegative, require_positive
from .signal import Signal


def white_noise(
    density: float,
    n_samples: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """White noise samples with one-sided PSD ``density`` [V^2/Hz]."""
    require_nonnegative("density", density)
    require_positive("sample_rate", sample_rate)
    if n_samples < 1:
        raise SignalError("n_samples must be >= 1")
    sigma = math.sqrt(density * sample_rate / 2.0)
    return rng.normal(0.0, sigma, size=n_samples) if sigma > 0.0 else np.zeros(n_samples)


def pink_noise(
    density_at_1hz: float,
    n_samples: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """1/f noise with one-sided PSD ``density_at_1hz / f`` [V^2/Hz].

    Synthesized in the frequency domain: each positive-frequency bin gets
    a complex Gaussian amplitude scaled by ``1/sqrt(f)``; DC is zeroed
    (an infinite-power bin has no finite sample realization).
    """
    require_nonnegative("density_at_1hz", density_at_1hz)
    require_positive("sample_rate", sample_rate)
    if n_samples < 1:
        raise SignalError("n_samples must be >= 1")
    if density_at_1hz == 0.0 or n_samples == 1:
        return np.zeros(n_samples)

    freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate)
    spectrum = np.zeros(len(freqs), dtype=complex)
    # target one-sided PSD S(f) = density_at_1hz / f; bin spacing df = fs/N
    df = sample_rate / n_samples
    positive = freqs > 0.0
    psd = density_at_1hz / freqs[positive]
    # one-sided PSD -> rFFT amplitude: |X_k|^2 = S(f) * df * N^2 / 2
    amplitude = np.sqrt(psd * df / 2.0) * n_samples
    phases = rng.normal(size=amplitude.shape) + 1j * rng.normal(size=amplitude.shape)
    spectrum[positive] = amplitude * phases / math.sqrt(2.0)
    out = np.fft.irfft(spectrum, n=n_samples)
    return out


def amplifier_input_noise(
    white_density: float,
    corner_frequency: float,
    n_samples: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Standard amplifier input-referred noise: white + 1/f with a corner.

    ``S(f) = white_density * (1 + corner_frequency / f)`` — the canonical
    en-model of a CMOS amplifier datasheet.
    """
    require_nonnegative("corner_frequency", corner_frequency)
    noise = white_noise(white_density, n_samples, sample_rate, rng)
    if corner_frequency > 0.0:
        noise = noise + pink_noise(
            white_density * corner_frequency, n_samples, sample_rate, rng
        )
    return noise


def noise_signal(
    white_density: float,
    corner_frequency: float,
    duration: float,
    sample_rate: float,
    rng: np.random.Generator,
) -> Signal:
    """Convenience: an amplifier-noise waveform as a :class:`Signal`."""
    n = max(1, int(round(duration * sample_rate)))
    return Signal(
        amplifier_input_noise(white_density, corner_frequency, n, sample_rate, rng),
        sample_rate,
    )
