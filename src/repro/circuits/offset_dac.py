"""Programmable offset-compensation stage (Fig. 4).

After the chopper amplifier and low-pass filter, the static chain
subtracts a programmable DC level before the final gain stages.  Its job
is to absorb the *sensor* offset — bridge mismatch times first-stage
gain — so the remaining gain stages can amplify the biological signal
without clipping.  (The chopper already removed the *amplifier* offset;
the bridge's own mismatch rides through modulation untouched, because it
enters before the input modulator.)

Modeled as an N-bit bipolar DAC subtracted from the signal, plus the
one-shot auto-zero calibration routine a real chip would run at power-up.
"""

from __future__ import annotations


from ..errors import CircuitError
from ..units import require_positive
from .block import Block
from .signal import Signal


class OffsetCompensationDAC(Block):
    """N-bit bipolar offset-subtraction stage.

    Parameters
    ----------
    full_scale:
        Compensation range: codes span [-full_scale, +full_scale] [V].
    bits:
        DAC resolution; LSB = 2 * full_scale / (2^bits - 1).
    """

    def __init__(self, full_scale: float, bits: int = 8) -> None:
        self.full_scale = require_positive("full_scale", full_scale)
        if not 2 <= bits <= 24:
            raise CircuitError(f"bits must be in [2, 24], got {bits}")
        self.bits = int(bits)
        self._code = 0

    @property
    def lsb(self) -> float:
        """One code step [V]."""
        return 2.0 * self.full_scale / (2**self.bits - 1)

    @property
    def code(self) -> int:
        """Current signed code."""
        return self._code

    @property
    def compensation(self) -> float:
        """Voltage currently subtracted from the signal [V]."""
        return self._code * self.lsb

    @property
    def code_range(self) -> tuple[int, int]:
        """(min, max) signed codes."""
        half = (2**self.bits - 1) // 2
        return (-half, half)

    def set_code(self, code: int) -> None:
        """Program a signed DAC code; out-of-range codes raise."""
        lo, hi = self.code_range
        if not lo <= code <= hi:
            raise CircuitError(f"code {code} outside [{lo}, {hi}]")
        self._code = int(code)

    def set_voltage(self, voltage: float) -> float:
        """Program the nearest representable compensation [V]; returns it.

        Voltages beyond the range clamp to full scale (and the residual
        shows up in the output — exactly what happens on silicon).
        """
        code = int(round(voltage / self.lsb))
        lo, hi = self.code_range
        self._code = min(max(code, lo), hi)
        return self.compensation

    def calibrate(self, measured_offset: float) -> float:
        """Auto-zero: program the DAC to cancel a measured offset [V].

        Returns the residual offset after compensation (quantization plus
        any out-of-range remainder).
        """
        self.set_voltage(measured_offset)
        return measured_offset - self.compensation

    def process(self, signal: Signal) -> Signal:
        return Signal(signal.samples - self.compensation, signal.sample_rate)

    def step(self, x: float) -> float:
        return x - self.compensation
