"""Circuit-block abstraction and chain composition.

Every analog block in the readout chains implements the same small
interface: ``process(Signal) -> Signal`` for batch waveforms, an
optional per-sample ``step(x) -> y`` for blocks that must run inside the
sample-by-sample feedback loop of Fig. 5, and ``reset()`` to clear
internal state between runs.  :class:`Chain` composes blocks in order
and is itself a block, so whole readout paths nest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..errors import CircuitError
from .signal import Signal


class Block(ABC):
    """Base class for all behavioral circuit blocks."""

    @abstractmethod
    def process(self, signal: Signal) -> Signal:
        """Transform a whole waveform; must not mutate the input."""

    def step(self, x: float) -> float:
        """Process one sample (for feedback-loop use).

        Blocks that keep filter state must override this consistently
        with :meth:`process`.  The default raises: silently faking
        per-sample behaviour by batch-processing 1-sample signals would
        discard state and corrupt loop simulations.
        """
        raise CircuitError(
            f"{type(self).__name__} does not support per-sample stepping"
        )

    def reset(self) -> None:
        """Clear internal state (filters, saturation latches).  Default: none."""

    # Blocks that can run inside the fused loop kernel additionally
    # export ``lower_stage() -> repro.engine.kernel.KernelStage``, the
    # per-sample update as primitive ops.  The base class deliberately
    # does NOT define it: a subclass that overrides ``step`` without a
    # matching ``lower_stage`` must not inherit one that misrepresents
    # its semantics (``repro.engine.kernel.lower_block`` enforces this).

    # -- characterization helpers ------------------------------------------------

    def small_signal_gain(
        self,
        frequency: float,
        sample_rate: float,
        amplitude: float = 1e-6,
        cycles: int = 200,
    ) -> float:
        """Measured gain magnitude at a frequency, via a small test tone.

        Runs a tone through :meth:`process` and compares rms in/out after
        discarding the first half (settling).  Works for any block, even
        nonlinear ones, as long as the amplitude stays in the linear
        region.
        """
        self.reset()
        duration = cycles / frequency
        tone = Signal.sine(frequency, duration, sample_rate, amplitude=amplitude)
        out = self.process(tone).settle(0.5)
        self.reset()
        reference = tone.settle(0.5)
        ref_rms = reference.std()
        if ref_rms == 0.0:
            raise CircuitError("test tone has zero amplitude")
        return out.std() / ref_rms


class Chain(Block):
    """Blocks composed in series.

    >>> chain = Chain([amp, lowpass, gain2])   # doctest: +SKIP
    >>> out = chain.process(signal)            # doctest: +SKIP
    """

    def __init__(self, blocks: Sequence[Block] | Iterable[Block]) -> None:
        self.blocks: list[Block] = list(blocks)
        if not self.blocks:
            raise CircuitError("a chain needs at least one block")

    def process(self, signal: Signal) -> Signal:
        return self.process_stagewise(signal)[-1]

    def step(self, x: float) -> float:
        for block in self.blocks:
            x = block.step(x)
        return x

    def reset(self) -> None:
        for block in self.blocks:
            block.reset()

    def lower_stage(self):
        """The chain as one fused stage (sub-blocks lowered in order)."""
        from ..engine.kernel import compose_stages, lower_block

        return compose_stages("Chain", [lower_block(b) for b in self.blocks])

    def process_stagewise(self, signal: Signal) -> list[Signal]:
        """Outputs after each stage; :meth:`process` returns the last."""
        outputs = []
        for block in self.blocks:
            signal = block.process(signal)
            outputs.append(signal)
        return outputs

    def __len__(self) -> int:
        return len(self.blocks)


class Gain(Block):
    """Ideal memoryless gain (useful as a chain spacer and in tests)."""

    def __init__(self, gain: float) -> None:
        self.gain = float(gain)

    def process(self, signal: Signal) -> Signal:
        return Signal(signal.samples * self.gain, signal.sample_rate)

    def step(self, x: float) -> float:
        return x * self.gain

    def lower_stage(self):
        from ..engine.kernel import OP_GAIN, KernelOp, KernelStage

        return KernelStage("Gain", [KernelOp(OP_GAIN, (self.gain,))])


class Passthrough(Block):
    """Identity block (placeholder for ablations: 'remove this stage')."""

    def process(self, signal: Signal) -> Signal:
        return Signal(signal.samples.copy(), signal.sample_rate)

    def step(self, x: float) -> float:
        return x

    def lower_stage(self):
        from ..engine.kernel import KernelStage

        return KernelStage("Passthrough", [])


class Saturation(Block):
    """Hard supply-rail clipping."""

    def __init__(self, low: float, high: float) -> None:
        if high <= low:
            raise CircuitError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def process(self, signal: Signal) -> Signal:
        return Signal(
            np.clip(signal.samples, self.low, self.high), signal.sample_rate
        )

    def step(self, x: float) -> float:
        return min(max(x, self.low), self.high)

    def lower_stage(self):
        from ..engine.kernel import OP_CLIP, KernelOp, KernelStage

        return KernelStage(
            "Saturation", [KernelOp(OP_CLIP, (self.low, self.high))]
        )
