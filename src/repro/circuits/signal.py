"""Uniformly sampled signal container used by all circuit blocks.

A :class:`Signal` is an immutable-by-convention pair of (samples, rate).
Circuit blocks consume and produce Signals, which keeps sampling-rate
bookkeeping honest across a chain: mixing rates raises instead of
silently mis-filtering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..units import require_positive


@dataclass(frozen=True)
class Signal:
    """A real-valued, uniformly sampled waveform.

    Parameters
    ----------
    samples:
        Sample values [V unless stated otherwise].
    sample_rate:
        Sampling rate [Hz].
    """

    samples: np.ndarray
    sample_rate: float

    def __post_init__(self) -> None:
        require_positive("sample_rate", self.sample_rate)
        arr = np.asarray(self.samples, dtype=float)
        if arr.ndim != 1:
            raise SignalError(f"samples must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise SignalError("a signal needs at least one sample")
        if not np.all(np.isfinite(arr)):
            raise SignalError("samples contain NaN or infinity")
        object.__setattr__(self, "samples", arr)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_function(
        cls, func, duration: float, sample_rate: float
    ) -> "Signal":
        """Sample ``func(t)`` on ``[0, duration)`` at the given rate."""
        n = max(1, int(round(duration * sample_rate)))
        t = np.arange(n) / sample_rate
        return cls(samples=np.asarray(func(t), dtype=float), sample_rate=sample_rate)

    @classmethod
    def sine(
        cls,
        frequency: float,
        duration: float,
        sample_rate: float,
        amplitude: float = 1.0,
        phase: float = 0.0,
        offset: float = 0.0,
    ) -> "Signal":
        """A sine tone — the workhorse test input."""
        require_positive("frequency", frequency)
        if frequency >= sample_rate / 2.0:
            raise SignalError(
                f"tone at {frequency} Hz is above Nyquist ({sample_rate / 2} Hz)"
            )
        return cls.from_function(
            lambda t: offset + amplitude * np.sin(2.0 * math.pi * frequency * t + phase),
            duration,
            sample_rate,
        )

    @classmethod
    def constant(
        cls, value: float, duration: float, sample_rate: float
    ) -> "Signal":
        """A DC level."""
        n = max(1, int(round(duration * sample_rate)))
        return cls(samples=np.full(n, float(value)), sample_rate=sample_rate)

    # -- basic properties ---------------------------------------------------------

    @property
    def duration(self) -> float:
        """Signal length [s]."""
        return len(self.samples) / self.sample_rate

    @property
    def times(self) -> np.ndarray:
        """Sample instants [s]."""
        return np.arange(len(self.samples)) / self.sample_rate

    def rms(self) -> float:
        """Root-mean-square value."""
        return float(np.sqrt(np.mean(self.samples**2)))

    def mean(self) -> float:
        """Mean (DC) value."""
        return float(np.mean(self.samples))

    def std(self) -> float:
        """Standard deviation (AC rms)."""
        return float(np.std(self.samples))

    def peak(self) -> float:
        """Maximum absolute value."""
        return float(np.max(np.abs(self.samples)))

    def amplitude_envelope(self, window_cycles: float, frequency: float) -> np.ndarray:
        """Sliding-window amplitude estimate (peak of |x| per window)."""
        window = max(1, int(round(window_cycles * self.sample_rate / frequency)))
        n_windows = len(self.samples) // window
        if n_windows == 0:
            return np.asarray([self.peak()])
        trimmed = self.samples[: n_windows * window]
        return np.abs(trimmed).reshape(n_windows, window).max(axis=1)

    # -- arithmetic -----------------------------------------------------------------

    def _check_compatible(self, other: "Signal") -> None:
        if not math.isclose(self.sample_rate, other.sample_rate, rel_tol=1e-12):
            raise SignalError(
                f"sample rates differ: {self.sample_rate} vs {other.sample_rate}"
            )
        if len(self.samples) != len(other.samples):
            raise SignalError(
                f"lengths differ: {len(self.samples)} vs {len(other.samples)}"
            )

    def __add__(self, other: "Signal | float") -> "Signal":
        if isinstance(other, Signal):
            self._check_compatible(other)
            return Signal(self.samples + other.samples, self.sample_rate)
        return Signal(self.samples + float(other), self.sample_rate)

    def __sub__(self, other: "Signal | float") -> "Signal":
        if isinstance(other, Signal):
            self._check_compatible(other)
            return Signal(self.samples - other.samples, self.sample_rate)
        return Signal(self.samples - float(other), self.sample_rate)

    def __mul__(self, factor: float) -> "Signal":
        return Signal(self.samples * float(factor), self.sample_rate)

    __rmul__ = __mul__

    def __len__(self) -> int:
        return len(self.samples)

    # -- segments ---------------------------------------------------------------------

    def slice_time(self, start: float, end: float) -> "Signal":
        """Sub-signal on the time window [start, end) seconds."""
        if not 0.0 <= start < end:
            raise SignalError(f"need 0 <= start < end, got [{start}, {end})")
        i0 = int(round(start * self.sample_rate))
        i1 = min(len(self.samples), int(round(end * self.sample_rate)))
        if i1 <= i0:
            raise SignalError("time slice contains no samples")
        return Signal(self.samples[i0:i1].copy(), self.sample_rate)

    def settle(self, fraction: float = 0.5) -> "Signal":
        """Drop the first ``fraction`` of the signal (transient removal)."""
        if not 0.0 <= fraction < 1.0:
            raise SignalError("settle fraction must be in [0, 1)")
        i0 = int(len(self.samples) * fraction)
        return Signal(self.samples[i0:].copy(), self.sample_rate)
