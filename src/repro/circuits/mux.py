"""Analog multiplexer for the 4-cantilever array (Fig. 4).

"An array of four cantilevers is connected to the readout amplifiers by
an analog multiplexer."  One readout chain is shared across the array:
the mux scans channels so each beam (including reference beams) is
sampled in turn.  Modeled behaviors: channel selection, switching
transient (RC settling of the switch on-resistance into the chain input
capacitance), and inter-channel crosstalk through parasitic coupling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError
from ..units import require_nonnegative, require_positive
from .signal import Signal


@dataclass(frozen=True)
class MuxTimeslot:
    """One dwell of the scan schedule: which channel, from when to when."""

    channel: int
    start_time: float
    end_time: float


class AnalogMultiplexer:
    """N:1 analog multiplexer with settling and crosstalk.

    Parameters
    ----------
    channel_count:
        Number of inputs (4 in the paper).
    settling_time_constant:
        RC constant of the switch + input capacitance [s]; the output
        exponentially approaches the new channel after a switch.
    crosstalk_db:
        Attenuation of the *sum of unselected channels* leaking into the
        output [dB]; ``math.inf`` for ideal isolation.
    """

    def __init__(
        self,
        channel_count: int = 4,
        settling_time_constant: float = 1e-6,
        crosstalk_db: float = 80.0,
    ) -> None:
        if channel_count < 2:
            raise CircuitError("a multiplexer needs at least 2 channels")
        self.channel_count = int(channel_count)
        self.settling_time_constant = require_nonnegative(
            "settling_time_constant", settling_time_constant
        )
        if crosstalk_db <= 0.0:
            raise CircuitError("crosstalk_db must be positive (attenuation)")
        self.crosstalk_db = float(crosstalk_db)

    @property
    def crosstalk_gain(self) -> float:
        """Linear leak gain from unselected channels."""
        if math.isinf(self.crosstalk_db):
            return 0.0
        return 10.0 ** (-self.crosstalk_db / 20.0)

    def _check_channels(self, channels: list[Signal]) -> None:
        if len(channels) != self.channel_count:
            raise CircuitError(
                f"expected {self.channel_count} channel signals, "
                f"got {len(channels)}"
            )
        first = channels[0]
        for ch in channels[1:]:
            first._check_compatible(ch)

    def select(self, channels: list[Signal], channel: int) -> Signal:
        """Static selection of one channel (with crosstalk, no transient)."""
        self._check_channels(channels)
        if not 0 <= channel < self.channel_count:
            raise CircuitError(
                f"channel {channel} outside [0, {self.channel_count - 1}]"
            )
        out = channels[channel].samples.copy()
        leak = self.crosstalk_gain
        if leak > 0.0:
            for i, ch in enumerate(channels):
                if i != channel:
                    out += leak * ch.samples
        return Signal(out, channels[0].sample_rate)

    def scan(
        self, channels: list[Signal], dwell_time: float
    ) -> tuple[Signal, list[MuxTimeslot]]:
        """Time-multiplex all channels round-robin over the signal length.

        Returns the muxed waveform plus the schedule, including the
        exponential settling transient at each channel switch.
        """
        self._check_channels(channels)
        require_positive("dwell_time", dwell_time)
        rate = channels[0].sample_rate
        n = len(channels[0])
        dwell_samples = max(1, int(round(dwell_time * rate)))

        out = np.empty(n)
        slots: list[MuxTimeslot] = []
        previous_value = 0.0
        tau = self.settling_time_constant
        leak = self.crosstalk_gain

        index = 0
        slot = 0
        while index < n:
            channel = slot % self.channel_count
            end = min(n, index + dwell_samples)
            selected = channels[channel].samples[index:end].copy()
            if leak > 0.0:
                for i, ch in enumerate(channels):
                    if i != channel:
                        selected += leak * ch.samples[index:end]
            if tau > 0.0:
                t_local = np.arange(end - index) / rate
                settle = np.exp(-t_local / tau)
                selected = selected + (previous_value - selected[0]) * settle
            out[index:end] = selected
            previous_value = float(out[end - 1])
            slots.append(
                MuxTimeslot(
                    channel=channel, start_time=index / rate, end_time=end / rate
                )
            )
            index = end
            slot += 1

        return Signal(out, rate), slots

    def demultiplex_means(
        self, muxed: Signal, slots: list[MuxTimeslot], settle_fraction: float = 0.2
    ) -> dict[int, list[float]]:
        """Per-channel dwell means, skipping the settling head of each slot.

        This is what the digital backend of a scanned array reports: one
        value per channel per scan cycle.
        """
        if not 0.0 <= settle_fraction < 1.0:
            raise CircuitError("settle_fraction must be in [0, 1)")
        rate = muxed.sample_rate
        results: dict[int, list[float]] = {}
        for slot in slots:
            i0 = int(round(slot.start_time * rate))
            i1 = int(round(slot.end_time * rate))
            skip = int((i1 - i0) * settle_fraction)
            window = muxed.samples[i0 + skip : i1]
            if len(window) == 0:
                continue
            results.setdefault(slot.channel, []).append(float(np.mean(window)))
        return results
