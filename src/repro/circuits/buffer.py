"""Class-AB output buffer driving the actuation coil (Fig. 5).

"...and drives the low-resistance coil via a class AB output buffer."
The on-cantilever coil is a few tens of ohms of thin aluminium, so the
loop's last stage must source real current.  The model is a unity-gain
voltage buffer with:

* output current limit (the class-AB bias sets how much it can source/
  sink) — voltage into the coil clips at ``i_max * R_coil``;
* slew-rate limit;
* crossover distortion residue, the classic class-AB imperfection,
  modeled as a small dead zone around zero crossing.

The buffer also reports the coil current, which is what the Lorentz
actuator converts to force.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..units import require_nonnegative, require_positive
from .block import Block
from .signal import Signal


class ClassABBuffer(Block):
    """Current-limited unity-gain buffer into a resistive load.

    Parameters
    ----------
    load_resistance:
        Coil resistance [Ohm].
    max_current:
        Source/sink current limit [A].
    slew_rate:
        Output slew-rate limit [V/s]; ``None`` disables.
    crossover_deadzone:
        Dead-zone half-width around zero [V] (class-AB crossover
        residue); 0 for an ideally biased stage.
    """

    def __init__(
        self,
        load_resistance: float,
        max_current: float,
        slew_rate: float | None = None,
        crossover_deadzone: float = 0.0,
    ) -> None:
        self.load_resistance = require_positive("load_resistance", load_resistance)
        self.max_current = require_positive("max_current", max_current)
        if slew_rate is not None:
            require_positive("slew_rate", slew_rate)
        self.slew_rate = slew_rate
        self.crossover_deadzone = require_nonnegative(
            "crossover_deadzone", crossover_deadzone
        )
        self._last_output = 0.0
        self._step_rate: float | None = None

    @property
    def max_output_voltage(self) -> float:
        """Voltage clip at the current limit [V]."""
        return self.max_current * self.load_resistance

    def prepare(self, sample_rate: float) -> None:
        """Fix the sample rate before per-sample stepping."""
        self._step_rate = sample_rate

    def _shape(self, x: float, dt: float) -> float:
        # crossover dead zone
        if self.crossover_deadzone > 0.0:
            if abs(x) <= self.crossover_deadzone:
                x = 0.0
            else:
                x = x - np.sign(x) * self.crossover_deadzone
        # current limit
        vmax = self.max_output_voltage
        x = min(max(x, -vmax), vmax)
        # slew limit
        if self.slew_rate is not None:
            max_step = self.slew_rate * dt
            delta = x - self._last_output
            if abs(delta) > max_step:
                x = self._last_output + np.sign(delta) * max_step
        self._last_output = x
        return x

    def process(self, signal: Signal) -> Signal:
        dt = 1.0 / signal.sample_rate
        out = np.empty_like(signal.samples)
        for i, x in enumerate(signal.samples):
            out[i] = self._shape(float(x), dt)
        return Signal(out, signal.sample_rate)

    def step(self, x: float) -> float:
        if self._step_rate is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        return self._shape(x, 1.0 / self._step_rate)

    def reset(self) -> None:
        self._last_output = 0.0

    def lower_stage(self):
        from ..engine.kernel import (
            OP_CLIP,
            OP_DEADZONE,
            OP_LATCH,
            OP_SLEW,
            KernelOp,
            KernelStage,
        )

        if self._step_rate is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        ops = []
        dz = self.crossover_deadzone
        if dz > 0.0:
            ops.append(KernelOp(OP_DEADZONE, (dz, -dz)))
        vmax = self.max_output_voltage
        ops.append(KernelOp(OP_CLIP, (-vmax, vmax)))
        if self.slew_rate is not None:
            max_step = self.slew_rate * (1.0 / self._step_rate)
            ops.append(
                KernelOp(OP_SLEW, (max_step, -max_step), (self._last_output,))
            )
        else:
            ops.append(KernelOp(OP_LATCH, (), (self._last_output,)))

        def sync(final) -> None:
            self._last_output = float(final[0])

        return KernelStage("ClassABBuffer", ops, sync)

    def coil_current(self, output_voltage: float | np.ndarray):
        """Current delivered into the coil [A] for a buffer output voltage."""
        return np.asarray(output_voltage) / self.load_resistance
