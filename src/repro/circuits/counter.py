"""Digital frequency counter — the resonant system's readout (Fig. 5).

"The readout block mainly consists of a digital counter to monitor the
resonant frequency of the sensor system."  The loop's oscillation is
squared up by a comparator and its rising edges counted over a gate
window: ``f_hat = N / T_gate``.  The fundamental trade-off is the
+/-1-count quantization — resolution ``1 / T_gate`` — against
measurement latency; the reciprocal-counting variant timestamps edges
instead and wins at low frequencies.  Both are modeled, since the gate
time is the knob that sets the sensor's mass resolution
(:func:`repro.mechanics.resonance.minimum_detectable_mass`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..units import require_positive
from .signal import Signal


@dataclass(frozen=True)
class FrequencyMeasurement:
    """One gated frequency reading."""

    frequency: float
    gate_start: float
    gate_time: float
    edge_count: int


def comparator_edges(signal: Signal, threshold: float = 0.0, hysteresis: float = 0.0) -> np.ndarray:
    """Rising-edge times [s] of the comparator watching the waveform.

    Hysteresis (symmetric around the threshold) suppresses noise-induced
    double counting — a real counter front-end always has some.
    Edge times are refined by linear interpolation between samples, the
    equivalent of the comparator's continuous-time behaviour.

    Implemented as a vectorized hysteresis scan: the armed/disarmed
    state after each sample is a pure function of the *last* crossing
    event before it, so a forward-fill (``np.maximum.accumulate``) plus
    a toggle-parity cumsum reconstructs the whole state sequence without
    a Python loop.  ``_comparator_edges_reference`` keeps the original
    per-sample scan as the oracle for the equivalence test.
    """
    x = signal.samples
    hi = threshold + hysteresis / 2.0
    lo = threshold - hysteresis / 2.0
    n = len(x)
    if n < 2:
        return np.asarray([], dtype=float)

    xi = x[1:]
    up = xi >= hi       # would fire (or disarm) an armed comparator
    down = xi <= lo     # would re-arm a disarmed comparator
    # per-sample state transition: armed' = ¬up if armed else down.
    # Classify: both up & down toggles the state (possible only when
    # hi == lo), down-only forces armed, up-only forces disarmed,
    # neither holds.  The state after sample i is then the forced value
    # at the last set/reset before i, flipped once per toggle since.
    toggle = up & down
    set_ = down & ~up
    reset = up & ~down
    armed0 = bool(x[0] < lo)

    pos = np.arange(n - 1)
    last_forced = np.maximum.accumulate(np.where(set_ | reset, pos, -1))
    tog_cum = np.cumsum(toggle)
    forced_val = set_.astype(np.int64)
    base = np.where(last_forced >= 0, forced_val[last_forced], int(armed0))
    tog_ref = np.where(last_forced >= 0, tog_cum[last_forced], 0)
    armed_after = base ^ ((tog_cum - tog_ref) & 1)
    armed_before = np.concatenate(([int(armed0)], armed_after[:-1]))

    fire = armed_before.astype(bool) & up
    i = np.nonzero(fire)[0] + 1
    x0 = x[i - 1]
    x1 = x[i]
    delta = x1 - x0
    frac = np.where(delta == 0.0, 0.0,
                    (hi - x0) / np.where(delta == 0.0, 1.0, delta))
    return (i - 1 + frac) / signal.sample_rate


def _comparator_edges_reference(
    signal: Signal, threshold: float = 0.0, hysteresis: float = 0.0
) -> np.ndarray:
    """Original per-sample scan (the oracle :func:`comparator_edges`
    is tested against)."""
    x = signal.samples
    hi = threshold + hysteresis / 2.0
    lo = threshold - hysteresis / 2.0

    edges = []
    armed = x[0] < lo
    for i in range(1, len(x)):
        if armed and x[i] >= hi:
            # interpolate crossing of `hi` between samples i-1 and i
            x0, x1 = x[i - 1], x[i]
            frac = 0.0 if x1 == x0 else (hi - x0) / (x1 - x0)
            edges.append((i - 1 + frac) / signal.sample_rate)
            armed = False
        elif not armed and x[i] <= lo:
            armed = True
    return np.asarray(edges)


class FrequencyCounter:
    """Gated +/-1-count frequency counter.

    Parameters
    ----------
    gate_time:
        Counting window [s]; resolution is ``1 / gate_time``.
    threshold / hysteresis:
        Comparator settings [V].
    """

    def __init__(
        self, gate_time: float, threshold: float = 0.0, hysteresis: float = 0.0
    ) -> None:
        self.gate_time = require_positive("gate_time", gate_time)
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)

    @property
    def resolution(self) -> float:
        """Quantization step of the reading [Hz]."""
        return 1.0 / self.gate_time

    def measure(self, signal: Signal) -> list[FrequencyMeasurement]:
        """All complete gate windows over the waveform."""
        if signal.duration < self.gate_time:
            raise SignalError(
                f"signal ({signal.duration:.3g} s) shorter than one gate "
                f"({self.gate_time:.3g} s)"
            )
        edges = comparator_edges(signal, self.threshold, self.hysteresis)
        measurements = []
        n_gates = int(signal.duration / self.gate_time)
        for g in range(n_gates):
            start = g * self.gate_time
            end = start + self.gate_time
            count = int(np.sum((edges >= start) & (edges < end)))
            measurements.append(
                FrequencyMeasurement(
                    frequency=count / self.gate_time,
                    gate_start=start,
                    gate_time=self.gate_time,
                    edge_count=count,
                )
            )
        return measurements

    def measure_single(self, signal: Signal) -> float:
        """Frequency of the first complete gate [Hz]."""
        return self.measure(signal)[0].frequency

    def frequency_series(self, signal: Signal) -> tuple[np.ndarray, np.ndarray]:
        """(gate centre times, frequency readings) for tracking plots."""
        ms = self.measure(signal)
        t = np.asarray([m.gate_start + m.gate_time / 2.0 for m in ms])
        f = np.asarray([m.frequency for m in ms])
        return t, f


class ReciprocalCounter:
    """Reciprocal (period-timestamping) counter.

    Measures the average period between the first and last rising edge
    inside the gate: ``f_hat = (N_periods) / (t_last - t_first)``.  Its
    resolution is set by the edge-interpolation precision rather than
    +/-1 count, so it dramatically outperforms the gated counter at
    frequencies comparable to ``1 / gate_time`` — an ablation bench
    (ABL2) quantifies when the extra hardware pays.
    """

    def __init__(
        self, gate_time: float, threshold: float = 0.0, hysteresis: float = 0.0
    ) -> None:
        self.gate_time = require_positive("gate_time", gate_time)
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)

    def measure(self, signal: Signal) -> list[FrequencyMeasurement]:
        """All complete gate windows over the waveform."""
        if signal.duration < self.gate_time:
            raise SignalError(
                f"signal ({signal.duration:.3g} s) shorter than one gate "
                f"({self.gate_time:.3g} s)"
            )
        edges = comparator_edges(signal, self.threshold, self.hysteresis)
        measurements = []
        n_gates = int(signal.duration / self.gate_time)
        for g in range(n_gates):
            start = g * self.gate_time
            end = start + self.gate_time
            inside = edges[(edges >= start) & (edges < end)]
            if len(inside) >= 2:
                span = inside[-1] - inside[0]
                freq = (len(inside) - 1) / span if span > 0.0 else 0.0
            else:
                freq = 0.0
            measurements.append(
                FrequencyMeasurement(
                    frequency=freq,
                    gate_start=start,
                    gate_time=self.gate_time,
                    edge_count=len(inside),
                )
            )
        return measurements

    def measure_single(self, signal: Signal) -> float:
        """Frequency of the first complete gate [Hz]."""
        return self.measure(signal)[0].frequency
