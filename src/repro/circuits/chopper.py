"""Chopper-stabilized amplifier — the first stage of the static chain.

"A chopper-stabilized amplifier as first stage performs a low-noise,
low-offset amplification of the weak sensor signal" (paper, Sec. 3.1).

Principle: the input is modulated by a square carrier at ``f_chop``
*before* the amplifier, so the signal passes through the amplifier
translated to ``f_chop`` — above the amplifier's 1/f corner.  The
amplifier's own offset and low-frequency noise enter *after* the input
modulator, so the output demodulator translates *them* up to ``f_chop``
(as ripple) while bringing the signal back to baseband.  A following
low-pass filter (the separate LP stage of Fig. 4) removes the ripple.

The block deliberately does **not** include the ripple filter: Fig. 4
draws it as its own stage, and keeping it separate lets the benches
show the raw chopper output ripple.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..units import require_positive
from .amplifier import Amplifier
from .block import Block
from .signal import Signal


def square_carrier(
    frequency: float, n_samples: int, sample_rate: float
) -> np.ndarray:
    """A +/-1 square wave sampled at the signal rate.

    On a real chip the chopper clock is an integer division of the
    master clock, so when ``sample_rate / (2 * frequency)`` is close to
    an integer the carrier is built from exact integer half-periods.
    (Naively thresholding ``(t * f) % 1`` flips isolated samples through
    float rounding at the edges, which aliases spurious noise into the
    baseband — a purely numerical artifact a real chopper cannot have.)
    """
    require_positive("frequency", frequency)
    if frequency >= sample_rate / 2.0:
        raise CircuitError(
            f"chop frequency {frequency} Hz is above Nyquist "
            f"({sample_rate / 2} Hz)"
        )
    half_period = sample_rate / (2.0 * frequency)
    m = int(round(half_period))
    if m >= 1 and abs(half_period - m) < 1e-9 * half_period:
        pattern = np.concatenate([np.ones(m), -np.ones(m)])
        reps = n_samples // (2 * m) + 1
        return np.tile(pattern, reps)[:n_samples]
    # incommensurate clock: integer half-period indexing avoids the
    # modulo-threshold float flips
    k = np.floor(np.arange(n_samples) * (2.0 * frequency / sample_rate))
    return np.where(k.astype(np.int64) % 2 == 0, 1.0, -1.0)


class ChopperAmplifier(Block):
    """Input-modulated, output-demodulated amplifier.

    Parameters
    ----------
    amplifier:
        The core amplifier whose offset and 1/f noise are to be chopped
        out.  Its offset/noise settings are the *unchopped* values, so a
        bench can run the identical core with and without chopping.
    chop_frequency:
        Carrier frequency [Hz]; must exceed the signal band and ideally
        the amplifier's 1/f corner.
    """

    def __init__(self, amplifier: Amplifier, chop_frequency: float) -> None:
        self.amplifier = amplifier
        self.chop_frequency = require_positive("chop_frequency", chop_frequency)

    def process(self, signal: Signal) -> Signal:
        carrier = square_carrier(
            self.chop_frequency, len(signal), signal.sample_rate
        )
        modulated = Signal(signal.samples * carrier, signal.sample_rate)
        amplified = self.amplifier.process(modulated)
        demodulated = Signal(amplified.samples * carrier, signal.sample_rate)
        return demodulated

    def reset(self) -> None:
        self.amplifier.reset()

    def residual_offset(
        self, sample_rate: float, duration: float = 0.5
    ) -> float:
        """Measured output DC with zero input [V].

        With ideal switches the only residue is the demodulated ripple
        that survives averaging; real chopper residues (charge injection)
        are not modeled, so this quantifies the architecture's ceiling.
        """
        zero = Signal.constant(0.0, duration, sample_rate)
        out = self.process(zero)
        self.reset()
        return out.mean()
