"""Analog-to-digital converter closing the static channel.

Fig. 4 ends in gain stages; a practical autonomous chip (the paper's
"autonomous device operation") digitizes the result.  A simple uniform
mid-tread quantizer with saturation models the on-chip SAR: enough to
budget quantization noise against the analog chain's residual noise and
to exercise full-digital assay pipelines in the examples.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..units import require_positive
from .block import Block
from .signal import Signal


class ADC(Block):
    """Uniform mid-tread quantizer with saturation.

    Parameters
    ----------
    full_scale:
        Input range is [-full_scale, +full_scale] [V].
    bits:
        Resolution; LSB = 2 * full_scale / 2^bits.
    """

    def __init__(self, full_scale: float, bits: int = 12) -> None:
        self.full_scale = require_positive("full_scale", full_scale)
        if not 2 <= bits <= 24:
            raise CircuitError(f"bits must be in [2, 24], got {bits}")
        self.bits = int(bits)

    @property
    def lsb(self) -> float:
        """One code step [V]."""
        return 2.0 * self.full_scale / (2**self.bits)

    @property
    def quantization_noise_rms(self) -> float:
        """Theoretical quantization noise ``LSB / sqrt(12)`` [V rms]."""
        return self.lsb / (12.0**0.5)

    def codes(self, signal: Signal) -> np.ndarray:
        """Integer output codes (saturating)."""
        max_code = 2 ** (self.bits - 1) - 1
        min_code = -(2 ** (self.bits - 1))
        raw = np.round(signal.samples / self.lsb).astype(int)
        return np.clip(raw, min_code, max_code)

    def process(self, signal: Signal) -> Signal:
        """Quantized waveform (codes scaled back to volts)."""
        return Signal(self.codes(signal) * self.lsb, signal.sample_rate)

    def step(self, x: float) -> float:
        max_code = 2 ** (self.bits - 1) - 1
        min_code = -(2 ** (self.bits - 1))
        code = int(round(x / self.lsb))
        return min(max(code, min_code), max_code) * self.lsb
