"""Low-pass and high-pass filter blocks.

Fig. 4 places a low-pass filter after the chopper amplifier "to improve
the signal-to-noise ratio"; Fig. 5 places high-pass filters in the
feedback loop to damp the MOS bridge's low-frequency noise.  Both are
modeled as Butterworth sections discretized with the bilinear transform,
with per-sample stepping (transposed direct-form II state) so they can
run inside the closed loop.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import signal as sps

from ..errors import CircuitError
from ..units import require_positive
from .block import Block
from .signal import Signal


class _SOSFilter(Block):
    """Shared machinery: an SOS-cascade IIR filter with stepping state.

    The design is kept twice: the scipy ``sos`` array for batch
    :meth:`process` / :meth:`response`, and a flattened list of per
    section ``(b0, b1, b2, a1, a2)`` Python-float tuples plus a flat
    state list for :meth:`step`, so the per-sample path pays no numpy
    row indexing.  Both views update the same state.
    """

    def __init__(self, cutoff: float, order: int, kind: str) -> None:
        self.cutoff = require_positive("cutoff", cutoff)
        if order < 1:
            raise CircuitError(f"filter order must be >= 1, got {order}")
        self.order = int(order)
        self._kind = kind
        self._sos: np.ndarray | None = None
        self._coeffs: list[tuple[float, float, float, float, float]] = []
        self._state: list[float] = []
        self._design_rate: float | None = None

    def _ensure_designed(self, sample_rate: float) -> None:
        if self._sos is not None and self._design_rate == sample_rate:
            return
        nyquist = sample_rate / 2.0
        if self.cutoff >= nyquist:
            raise CircuitError(
                f"cutoff {self.cutoff} Hz is at/above Nyquist ({nyquist} Hz)"
            )
        self._sos = sps.butter(
            self.order, self.cutoff, btype=self._kind, fs=sample_rate, output="sos"
        )
        self._coeffs = [
            (float(b0), float(b1), float(b2), float(a1), float(a2))
            for b0, b1, b2, _, a1, a2 in self._sos
        ]
        self._state = [0.0] * (2 * self._sos.shape[0])
        self._design_rate = sample_rate

    def process(self, signal: Signal) -> Signal:
        self._ensure_designed(signal.sample_rate)
        zi = np.asarray(self._state, dtype=float).reshape(-1, 2)
        out, zi = sps.sosfilt(self._sos, signal.samples, zi=zi)
        self._state = [float(z) for z in zi.ravel()]
        return Signal(out, signal.sample_rate)

    def step(self, x: float) -> float:
        if self._sos is None:
            raise CircuitError(
                "call prepare(sample_rate) or process() once before stepping"
            )
        # transposed direct-form II per SOS section, flat state
        st = self._state
        p = 0
        for b0, b1, b2, a1, a2 in self._coeffs:
            y = b0 * x + st[p]
            st[p] = b1 * x - a1 * y + st[p + 1]
            st[p + 1] = b2 * x - a2 * y
            x = y
            p += 2
        return x

    def prepare(self, sample_rate: float) -> None:
        """Design the filter for a sample rate before per-sample stepping."""
        self._ensure_designed(sample_rate)

    def reset(self) -> None:
        self._state = [0.0] * len(self._state)

    def lower_stage(self):
        from ..engine.kernel import OP_SOS, KernelOp, KernelStage

        if self._sos is None:
            raise CircuitError(
                "call prepare(sample_rate) or process() once before stepping"
            )
        ops = [
            KernelOp(OP_SOS, coeffs, tuple(self._state[2 * i:2 * i + 2]))
            for i, coeffs in enumerate(self._coeffs)
        ]

        def sync(final) -> None:
            self._state = [float(z) for z in final]

        return KernelStage(type(self).__name__, ops, sync)

    def response(self, frequency: np.ndarray, sample_rate: float) -> np.ndarray:
        """Complex frequency response at the given sample rate."""
        self._ensure_designed(sample_rate)
        _, h = sps.sosfreqz(
            self._sos, worN=np.asarray(frequency, dtype=float), fs=sample_rate
        )
        return h


class LowPassFilter(_SOSFilter):
    """Butterworth low-pass (Fig. 4's post-chopper SNR filter).

    Parameters
    ----------
    cutoff:
        -3 dB frequency [Hz].
    order:
        Butterworth order (default 2: one biquad, what a compact on-chip
        gm-C filter realizes).
    """

    def __init__(self, cutoff: float, order: int = 2) -> None:
        super().__init__(cutoff, order, "lowpass")


class HighPassFilter(_SOSFilter):
    """Butterworth high-pass (Fig. 5's loop LF-noise dampers)."""

    def __init__(self, cutoff: float, order: int = 2) -> None:
        super().__init__(cutoff, order, "highpass")


class RCLowPass(Block):
    """Single-pole RC low-pass with exact per-sample recursion.

    ``y[n] = y[n-1] + (1 - exp(-2 pi fc / fs)) (x[n] - y[n-1])`` — the
    lightest-weight anti-alias/settling model, used for pole roll-offs
    inside other blocks.
    """

    def __init__(self, cutoff: float) -> None:
        self.cutoff = require_positive("cutoff", cutoff)
        self._y = 0.0
        self._alpha: float | None = None
        self._design_rate: float | None = None

    def _ensure(self, sample_rate: float) -> None:
        if self._alpha is None or self._design_rate != sample_rate:
            self._alpha = 1.0 - math.exp(-2.0 * math.pi * self.cutoff / sample_rate)
            self._design_rate = sample_rate

    def prepare(self, sample_rate: float) -> None:
        """Fix the sample rate before per-sample stepping."""
        self._ensure(sample_rate)

    def process(self, signal: Signal) -> Signal:
        self._ensure(signal.sample_rate)
        out = np.empty_like(signal.samples)
        y = self._y
        a = self._alpha
        for i, x in enumerate(signal.samples):
            y += a * (x - y)
            out[i] = y
        self._y = y
        return Signal(out, signal.sample_rate)

    def step(self, x: float) -> float:
        if self._alpha is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        self._y += self._alpha * (x - self._y)
        return self._y

    def reset(self) -> None:
        self._y = 0.0

    def lower_stage(self):
        from ..engine.kernel import OP_RC, KernelOp, KernelStage

        if self._alpha is None:
            raise CircuitError("call prepare(sample_rate) before stepping")
        op = KernelOp(OP_RC, (self._alpha,), (self._y,))

        def sync(final) -> None:
            self._y = float(final[0])

        return KernelStage("RCLowPass", [op], sync)
