"""Hydrodynamic loading of a vibrating rectangular cantilever (Sader model).

A biosensor cantilever resonates *in liquid*, where the surrounding fluid
adds inertia (lowering the frequency by tens of percent) and viscous
dissipation (dropping Q from thousands to single digits).  The paper's
variable-gain amplifier exists exactly because of this Q collapse.

This module implements the analytical model of J. E. Sader,
J. Appl. Phys. 84, 64 (1998): the complex hydrodynamic function of an
oscillating circular cylinder (exact, via modified Bessel functions)
multiplied by a rational-function correction ``Omega(Re)`` fitted for the
rectangular cross-section.  Validity: Reynolds number 1e-6 .. 1e4,
beam aspect ratio L/w >> 1.
"""

from __future__ import annotations

import cmath
import math

from scipy.special import kv

from ..errors import UnitError
from ..materials.liquids import Liquid
from ..units import require_positive

#: Validity range of the rectangular correction (Sader 1998).
REYNOLDS_VALID_RANGE: tuple[float, float] = (1e-6, 1e4)

# Rational-function coefficients of the rectangular correction, from
# Sader (1998) Eq. (21a/b), in tau = log10(Re).
_OMEGA_REAL_NUM = (
    0.91324, -0.48274, 0.46842, -0.12886, 0.044055, -0.0035117, 0.00069085,
)
_OMEGA_REAL_DEN = (
    1.0, -0.56964, 0.48690, -0.13444, 0.045155, -0.0035862, 0.00069085,
)
_OMEGA_IMAG_NUM = (
    -0.024134, -0.029256, 0.016294, -0.00010961, 0.000064577, -0.000044510, 0.0,
)
_OMEGA_IMAG_DEN = (
    1.0, -0.59702, 0.55182, -0.18357, 0.079156, -0.014369, 0.0028361,
)


def reynolds_number(frequency: float, width: float, liquid: Liquid) -> float:
    """Oscillatory Reynolds number ``Re = rho w^2 omega / (4 mu)``.

    Parameters
    ----------
    frequency:
        Oscillation frequency [Hz].
    width:
        Beam width [m] (the hydrodynamically dominant dimension).
    liquid:
        Surrounding fluid.
    """
    require_positive("frequency", frequency)
    require_positive("width", width)
    omega = 2.0 * math.pi * frequency
    return liquid.density * width**2 * omega / (4.0 * liquid.viscosity)


def circular_hydrodynamic_function(reynolds: float) -> complex:
    """Exact hydrodynamic function of an oscillating circular cylinder.

    ``Gamma_circ = 1 + 4 i K1(-i sqrt(i Re)) / (sqrt(i Re) K0(-i sqrt(i Re)))``
    with ``K0``, ``K1`` modified Bessel functions of the second kind.
    """
    require_positive("reynolds", reynolds)
    root = cmath.sqrt(1j * reynolds)
    arg = -1j * root
    if abs(arg) > 200.0:
        # kv underflows for large |arg|; use the asymptotic ratio
        # K1(z)/K0(z) ~ 1 + 1/(2z) (relative error < 1e-5 here)
        ratio = 1.0 + 1.0 / (2.0 * arg)
        return 1.0 + 4.0 * 1j * ratio / root
    k0 = kv(0, arg)
    k1 = kv(1, arg)
    return 1.0 + 4.0 * 1j * k1 / (root * k0)


def _rational(coeffs_num: tuple, coeffs_den: tuple, tau: float) -> float:
    num = sum(c * tau**i for i, c in enumerate(coeffs_num))
    den = sum(c * tau**i for i, c in enumerate(coeffs_den))
    return num / den


def rectangular_correction(reynolds: float) -> complex:
    """Sader's rectangular correction ``Omega(Re)`` (dimensionless).

    Rational-function fit in ``tau = log10(Re)``; accurate to ~0.1 % over
    the stated validity range.  Out-of-range Reynolds numbers raise, since
    silently extrapolating a rational fit produces garbage.
    """
    lo, hi = REYNOLDS_VALID_RANGE
    if not lo <= reynolds <= hi:
        raise UnitError(
            f"Reynolds number {reynolds:.3g} outside rectangular-correction "
            f"validity range [{lo:.0e}, {hi:.0e}]"
        )
    tau = math.log10(reynolds)
    return complex(
        _rational(_OMEGA_REAL_NUM, _OMEGA_REAL_DEN, tau),
        _rational(_OMEGA_IMAG_NUM, _OMEGA_IMAG_DEN, tau),
    )


def hydrodynamic_function(frequency: float, width: float, liquid: Liquid) -> complex:
    """Complex hydrodynamic function ``Gamma(omega)`` of the rectangular beam.

    ``Gamma = Omega(Re) * Gamma_circ(Re)``.  The real part is the fluid's
    added-mass loading (in units of the displaced-cylinder mass
    ``pi rho_f w^2 / 4`` per unit length); the imaginary part is the
    viscous dissipation.
    """
    re = reynolds_number(frequency, width, liquid)
    return rectangular_correction(re) * circular_hydrodynamic_function(re)


def added_mass_per_length(frequency: float, width: float, liquid: Liquid) -> float:
    """Fluid added mass per unit beam length [kg/m].

    ``mu_added = (pi rho_f w^2 / 4) Re{Gamma}``.
    """
    gamma = hydrodynamic_function(frequency, width, liquid)
    return math.pi * liquid.density * width**2 / 4.0 * gamma.real


def mass_loading_ratio(
    frequency: float, width: float, liquid: Liquid, mass_per_length: float
) -> complex:
    """Complex fluid-to-beam mass ratio ``T(omega)``.

    ``T = (pi rho_f w^2 / 4 mu_beam) Gamma(omega)``; the fluid-loaded
    resonance and Q follow directly from it.
    """
    require_positive("mass_per_length", mass_per_length)
    gamma = hydrodynamic_function(frequency, width, liquid)
    return math.pi * liquid.density * width**2 / (4.0 * mass_per_length) * gamma
