"""Hydrodynamic loading of cantilevers operating in liquid."""

from .hydrodynamics import (
    REYNOLDS_VALID_RANGE,
    added_mass_per_length,
    circular_hydrodynamic_function,
    hydrodynamic_function,
    mass_loading_ratio,
    rectangular_correction,
    reynolds_number,
)
from .immersion import (
    FluidLoadedMode,
    frequency_in_liquid,
    immersed_mode,
    quality_factor_in_liquid,
)

__all__ = [
    "FluidLoadedMode",
    "REYNOLDS_VALID_RANGE",
    "added_mass_per_length",
    "circular_hydrodynamic_function",
    "frequency_in_liquid",
    "hydrodynamic_function",
    "immersed_mode",
    "mass_loading_ratio",
    "quality_factor_in_liquid",
    "rectangular_correction",
    "reynolds_number",
]
