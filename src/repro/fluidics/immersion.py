"""Fluid-loaded resonance: frequency and quality factor in liquid.

Combines the cantilever's vacuum mode with the Sader hydrodynamic
function to predict the immersed resonant frequency and Q:

    omega_fluid = omega_vac / sqrt(1 + T_r(omega_fluid))
    Q_fluid     = (1 / T_r_coeff + Gamma_r) / Gamma_i   (Sader Eq. 33)

where ``T_r`` is the real mass-loading ratio.  The frequency equation is
implicit (Gamma depends on omega) and is solved by damped fixed-point
iteration; convergence is fast because Gamma varies slowly with omega.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConvergenceError
from ..materials.liquids import Liquid
from ..mechanics.geometry import CantileverGeometry
from ..mechanics.modal import effective_mass_fraction, natural_frequency
from .hydrodynamics import hydrodynamic_function, reynolds_number


@dataclass(frozen=True)
class FluidLoadedMode:
    """Resonant properties of one cantilever mode immersed in a liquid.

    Attributes
    ----------
    mode:
        Mode number (1 = fundamental).
    vacuum_frequency:
        Unloaded natural frequency [Hz].
    frequency:
        Fluid-loaded resonant frequency [Hz].
    quality_factor:
        Fluid-limited quality factor.
    added_mass_ratio:
        Fluid added modal mass / beam modal mass (real part of T).
    reynolds:
        Oscillatory Reynolds number at the loaded frequency.
    effective_mass:
        Total (beam + fluid) tip-referenced modal mass [kg].
    """

    mode: int
    vacuum_frequency: float
    frequency: float
    quality_factor: float
    added_mass_ratio: float
    reynolds: float
    effective_mass: float


def immersed_mode(
    geometry: CantileverGeometry,
    liquid: Liquid,
    mode: int = 1,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
) -> FluidLoadedMode:
    """Solve for the fluid-loaded frequency and Q of one mode.

    Raises
    ------
    ConvergenceError
        If the fixed-point iteration does not converge (it always does for
        physically meaningful inputs; this guards solver misuse).
    """
    f_vac = natural_frequency(geometry, mode)
    mu_beam = geometry.mass_per_length
    t_coeff = math.pi * liquid.density * geometry.width**2 / (4.0 * mu_beam)

    f = f_vac
    for _ in range(max_iterations):
        gamma = hydrodynamic_function(f, geometry.width, liquid)
        f_next = f_vac / math.sqrt(1.0 + t_coeff * gamma.real)
        if abs(f_next - f) <= tolerance * f_vac:
            f = f_next
            break
        f = 0.5 * (f + f_next)  # damped update for robustness
    else:
        raise ConvergenceError(
            f"immersed-mode iteration did not converge in {max_iterations} steps"
        )

    gamma = hydrodynamic_function(f, geometry.width, liquid)
    q = (1.0 / t_coeff + gamma.real) / gamma.imag
    m_eff_beam = effective_mass_fraction(mode) * geometry.mass
    added_ratio = t_coeff * gamma.real
    return FluidLoadedMode(
        mode=mode,
        vacuum_frequency=f_vac,
        frequency=f,
        quality_factor=q,
        added_mass_ratio=added_ratio,
        reynolds=reynolds_number(f, geometry.width, liquid),
        effective_mass=m_eff_beam * (1.0 + added_ratio),
    )


def frequency_in_liquid(
    geometry: CantileverGeometry, liquid: Liquid, mode: int = 1
) -> float:
    """Convenience: fluid-loaded resonant frequency [Hz]."""
    return immersed_mode(geometry, liquid, mode).frequency


def quality_factor_in_liquid(
    geometry: CantileverGeometry, liquid: Liquid, mode: int = 1
) -> float:
    """Convenience: fluid-limited quality factor."""
    return immersed_mode(geometry, liquid, mode).quality_factor
