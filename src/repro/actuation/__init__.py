"""Electromagnetic actuation: coil, magnet, and drive synthesis."""

from .drive import burst, instantaneous_frequency, linear_chirp, tone
from .lorentz import ActuationCoil, LorentzActuator, PermanentMagnet

__all__ = [
    "ActuationCoil",
    "LorentzActuator",
    "PermanentMagnet",
    "burst",
    "instantaneous_frequency",
    "linear_chirp",
    "tone",
]
