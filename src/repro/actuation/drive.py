"""Drive-waveform synthesis for open-loop actuation experiments.

The closed loop of Fig. 5 generates its own drive, but characterization
(finding the resonance before closing the loop, measuring the response
curve) uses open-loop drives: single tones, frequency sweeps (chirps),
and bursts for ring-down Q measurement.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SignalError
from ..circuits.signal import Signal
from ..units import require_positive


def tone(
    frequency: float, amplitude: float, duration: float, sample_rate: float
) -> Signal:
    """Constant-frequency sinusoidal drive [V]."""
    return Signal.sine(frequency, duration, sample_rate, amplitude=amplitude)


def linear_chirp(
    f_start: float,
    f_end: float,
    amplitude: float,
    duration: float,
    sample_rate: float,
) -> Signal:
    """Linear frequency sweep for response-curve measurement."""
    require_positive("f_start", f_start)
    require_positive("f_end", f_end)
    require_positive("duration", duration)
    nyquist = sample_rate / 2.0
    if max(f_start, f_end) >= nyquist:
        raise SignalError("chirp endpoint above Nyquist")
    n = max(2, int(round(duration * sample_rate)))
    t = np.arange(n) / sample_rate
    k = (f_end - f_start) / duration
    phase = 2.0 * math.pi * (f_start * t + 0.5 * k * t**2)
    return Signal(amplitude * np.sin(phase), sample_rate)


def burst(
    frequency: float,
    amplitude: float,
    on_time: float,
    total_time: float,
    sample_rate: float,
) -> Signal:
    """Tone burst followed by silence — the ring-down Q measurement drive."""
    require_positive("on_time", on_time)
    if total_time <= on_time:
        raise SignalError("total_time must exceed on_time")
    n = max(2, int(round(total_time * sample_rate)))
    t = np.arange(n) / sample_rate
    wave = amplitude * np.sin(2.0 * math.pi * frequency * t)
    wave[t >= on_time] = 0.0
    return Signal(wave, sample_rate)


def instantaneous_frequency(signal: Signal) -> np.ndarray:
    """Zero-crossing-based instantaneous frequency estimate [Hz].

    One value per detected full period; rough but model-free, used to
    verify chirp synthesis and loop startup behaviour.
    """
    x = signal.samples
    crossings = np.where((x[:-1] < 0.0) & (x[1:] >= 0.0))[0]
    if len(crossings) < 2:
        return np.asarray([])
    periods = np.diff(crossings) / signal.sample_rate
    return 1.0 / periods
