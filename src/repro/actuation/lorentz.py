"""Electromagnetic (Lorentz-force) cantilever actuation (Fig. 5, ref [3]).

"The actuation of the cantilever is performed by a coil along the
cantilever edges, driven by a periodic electric current ... Together
with a permanent magnet, integrated in the package of the sensor chip,
the acting Lorentz force leads to a bending of the cantilever."

Geometry: the metal loop runs out along one cantilever edge, across near
the tip, and back along the other edge.  With the magnetic field ``B``
in-plane and parallel to the beam axis, the force on the *transverse*
segment (length = beam width, at the tip) is out-of-plane:
``F = n B I w`` for ``n`` turns — a tip point force, which is exactly
what drives mode 1 efficiently.  The edge segments feel in-plane forces
that cancel.

The model also owns the coil's electrical reality: resistance of the
thin aluminium trace (what makes the class-AB buffer necessary),
current limits from electromigration, and drive power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError
from ..materials import get_material
from ..mechanics.geometry import CantileverGeometry
from ..units import require_positive


@dataclass(frozen=True)
class PermanentMagnet:
    """The package-integrated magnet providing the static field.

    Parameters
    ----------
    field:
        Flux density at the cantilever [T]; a small NdFeB block in the
        package delivers 0.1-0.5 T at millimetre range.
    """

    field: float = 0.25

    def __post_init__(self) -> None:
        require_positive("field", self.field)


@dataclass(frozen=True)
class ActuationCoil:
    """Planar metal coil along the cantilever edges.

    Parameters
    ----------
    turns:
        Number of loop turns (limited by the two metal layers and the
        edge real estate; 1-4 typical).
    trace_width / trace_thickness:
        Metal cross-section [m]; 0.8 um CMOS metal-2 is ~1 um thick.
    geometry:
        Host cantilever (sets trace length and force arm).
    max_current_density:
        Electromigration limit [A/m^2]; ~2e9 A/m^2 (0.2 mA/um^2) for Al.
    """

    geometry: CantileverGeometry
    turns: int = 2
    trace_width: float = 4e-6
    trace_thickness: float = 1.0e-6
    max_current_density: float = 2e9

    def __post_init__(self) -> None:
        if self.turns < 1:
            raise CircuitError("the coil needs at least one turn")
        require_positive("trace_width", self.trace_width)
        require_positive("trace_thickness", self.trace_thickness)
        require_positive("max_current_density", self.max_current_density)

    @property
    def trace_length(self) -> float:
        """Total wire length [m]: up one edge, across, back — per turn."""
        per_turn = 2.0 * self.geometry.length + self.geometry.width
        return self.turns * per_turn

    @property
    def resistance(self) -> float:
        """Coil resistance [Ohm] (aluminium trace)."""
        rho = get_material("aluminum").resistivity
        area = self.trace_width * self.trace_thickness
        return rho * self.trace_length / area

    @property
    def max_current(self) -> float:
        """Electromigration-limited current [A]."""
        return self.max_current_density * self.trace_width * self.trace_thickness

    def force_per_current(self, magnet: PermanentMagnet) -> float:
        """Tip force per ampere ``n B w`` [N/A]."""
        return self.turns * magnet.field * self.geometry.width

    def tip_force(self, current: float | np.ndarray, magnet: PermanentMagnet):
        """Lorentz tip force [N] for a coil current [A] (clipped at limit)."""
        i = np.clip(np.asarray(current, dtype=float), -self.max_current, self.max_current)
        result = self.force_per_current(magnet) * i
        return float(result) if result.ndim == 0 else result

    def drive_power(self, current_rms: float) -> float:
        """Ohmic power in the coil [W] at an rms current."""
        return current_rms**2 * self.resistance


@dataclass(frozen=True)
class LorentzActuator:
    """Coil + magnet pair: voltage in, tip force out.

    The complete electromechanical front of the feedback loop: the
    class-AB buffer's output voltage divides by the coil resistance to a
    current, which the magnet converts to tip force.
    """

    coil: ActuationCoil
    magnet: PermanentMagnet

    @property
    def force_per_volt(self) -> float:
        """Tip force per volt of drive [N/V]."""
        return self.coil.force_per_current(self.magnet) / self.coil.resistance

    def tip_force_from_voltage(self, voltage: float | np.ndarray):
        """Tip force [N] from drive voltage [V], honouring the current limit."""
        current = np.asarray(voltage, dtype=float) / self.coil.resistance
        return self.coil.tip_force(current, self.magnet)

    @property
    def max_force(self) -> float:
        """Largest achievable tip force [N]."""
        return self.coil.force_per_current(self.magnet) * self.coil.max_current
