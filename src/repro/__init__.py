"""repro — Cantilever-Based Biosensors in CMOS Technology, reproduced.

A simulation library reproducing Kirstein et al., *Cantilever-Based
Biosensors in CMOS Technology* (DATE 2005): single-chip CMOS biosensors
using micromachined cantilevers as transducers, with monolithically
integrated piezoresistive readout.

The package mirrors the chip's architecture:

* :mod:`repro.materials` — solids, anisotropic silicon, liquids
* :mod:`repro.mechanics` — beam statics, modes, surface stress, dynamics
* :mod:`repro.fluidics` — hydrodynamic loading in liquid (Sader model)
* :mod:`repro.biochem` — analytes, Langmuir binding, assay protocols
* :mod:`repro.transduction` — piezoresistors, Wheatstone bridges
* :mod:`repro.circuits` — the behavioral analog/mixed-signal blocks
* :mod:`repro.actuation` — Lorentz-force coil + magnet
* :mod:`repro.fabrication` — 0.8 um CMOS stack, post-CMOS etch, DRC
* :mod:`repro.feedback` — the Fig. 5 closed oscillation loop
* :mod:`repro.analysis` — frequency estimation, Allan deviation, LOD
* :mod:`repro.engine` — parallel batch executor, result cache, timing
* :mod:`repro.config` — typed device specs, overrides, builder registry
* :mod:`repro.core` — the assembled static/resonant sensors and chip

Quickstart::

    from repro.biochem import AssayProtocol
    from repro.config import REFERENCE_STATIC_SENSOR, build
    from repro.units import nM

    sensor = build(REFERENCE_STATIC_SENSOR.with_overrides(
        {"cantilever.length_um": 350}
    ))
    sensor.calibrate_offset()
    result = sensor.run_assay(AssayProtocol.injection(nM(10)))
    print(result.output_step())
"""

from __future__ import annotations

from . import (
    actuation,
    analysis,
    biochem,
    circuits,
    config,
    constants,
    core,
    engine,
    environment,
    errors,
    fabrication,
    feedback,
    fluidics,
    materials,
    mechanics,
    transduction,
    units,
)
from .biochem import Analyte, AssayProtocol, FunctionalizedSurface, get_analyte
from .core import (
    BiosensorChip,
    ChannelConfig,
    ResonantCantileverSensor,
    StaticCantileverSensor,
)
from .errors import ReproError
from .fabrication import PostCMOSFlow, fabricate_cantilever
from .materials import get_liquid, get_material
from .mechanics import CantileverGeometry

__version__ = "1.1.0"

__all__ = [
    "Analyte",
    "AssayProtocol",
    "BiosensorChip",
    "CantileverGeometry",
    "ChannelConfig",
    "FunctionalizedSurface",
    "PostCMOSFlow",
    "ReproError",
    "ResonantCantileverSensor",
    "StaticCantileverSensor",
    "__version__",
    "actuation",
    "analysis",
    "biochem",
    "circuits",
    "config",
    "constants",
    "core",
    "engine",
    "environment",
    "errors",
    "fabricate_cantilever",
    "fabrication",
    "feedback",
    "fluidics",
    "get_analyte",
    "get_liquid",
    "get_material",
    "materials",
    "mechanics",
    "transduction",
    "units",
]
