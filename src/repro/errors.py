"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError, ValueError):
    """A quantity was outside its physically meaningful range."""


class MaterialError(ReproError, KeyError):
    """An unknown material or liquid was requested from the database."""


class GeometryError(ReproError, ValueError):
    """A cantilever or layout geometry is invalid or inconsistent."""


class FabricationError(ReproError, RuntimeError):
    """A process step cannot be applied to the current wafer state."""


class DesignRuleViolation(ReproError):
    """Raised by the DRC engine when `raise_on_error` is requested."""

    def __init__(self, violations: list) -> None:
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations)
        super().__init__(f"{len(self.violations)} design-rule violation(s): {lines}")


class CircuitError(ReproError, ValueError):
    """A circuit block was configured or driven inconsistently."""


class SignalError(ReproError, ValueError):
    """Two signals are incompatible (sampling rate, length) or malformed."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge."""


class OscillationError(ReproError, RuntimeError):
    """The closed feedback loop failed to start or sustain oscillation."""


class AssayError(ReproError, ValueError):
    """An assay protocol is malformed (bad step ordering or parameters)."""


class ExecutorError(ReproError, ValueError):
    """A batch executor was misconfigured or its task is unusable."""


class CacheError(ReproError, RuntimeError):
    """The result cache cannot hash a key or persist an entry."""


class KernelError(ReproError, RuntimeError):
    """The fused loop kernel was asked for an unavailable backend."""


class LoweringError(KernelError):
    """A loop block cannot be lowered to a fused kernel stage.

    Raised during kernel construction; the closed-loop simulators catch
    it and fall back to the per-sample reference path, so it is a
    performance event, never a correctness failure.
    """


class FaultInjectionError(ReproError, RuntimeError):
    """A deliberately injected fault fired (see :mod:`repro.engine.resilience`).

    Never raised in normal operation — only when a
    :class:`~repro.engine.resilience.FaultPlan` is active.  Recovery
    machinery (retries, fallbacks, channel health) treats it like any
    other task failure, which is the point: the fault-injection suite
    proves the recovery paths with a distinguishable error type.
    """


class WatchdogTimeout(ExecutorError):
    """A task exceeded its per-task watchdog timeout.

    The executor kills (process backend) or abandons (thread backend)
    the hung worker and captures this error as the task's outcome; with
    a retry policy the task is re-dispatched.  A sweep never stalls
    past its watchdog.
    """


class TaskCancelled(ExecutorError):
    """A task was cancelled before (or while) it ran.

    Captured as the task's outcome when a ``cancel`` callback handed to
    :meth:`repro.engine.BatchExecutor.map` fires mid-batch: tasks not
    yet dispatched are skipped, in-flight process tasks are terminated
    with the pool.  Never retried — cancellation is a decision, not a
    failure.
    """


class ServiceError(ReproError, RuntimeError):
    """The simulation service refused or could not complete a request.

    Raised by the job store, scheduler, HTTP front end, and client for
    malformed job specs, unknown job ids, transport failures, and
    illegal job-state transitions (see :mod:`repro.service`).
    """


class JobError(ServiceError):
    """A submitted job spec is invalid or references an unknown job.

    Messages carry the offending dotted field path (the
    :class:`ConfigError` convention), so a bad submission points at
    itself.
    """


class FabricError(ServiceError):
    """The distributed sweep fabric could not complete a grid.

    Raised by the fabric coordinator when chunks are parked as failed
    past their attempt budget, every worker dies with work remaining,
    or the completion wait times out (see :mod:`repro.engine.fabric`).
    """


class ConfigError(ReproError, ValueError):
    """A device spec is invalid, or an override path does not resolve.

    Messages carry the dotted field path of the offending value
    (e.g. ``cantilever.length_um: must be a positive finite number``)
    so a failing sweep grid or ``--set`` flag points at itself.
    """
