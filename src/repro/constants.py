"""Physical constants used throughout the library.

All values are CODATA-2018 in SI units.  The library uses strict SI
everywhere (metres, kilograms, seconds, kelvin, pascal, newton per metre
for surface stress); helpers for common non-SI laboratory units live in
:mod:`repro.units`.
"""

from __future__ import annotations

#: Boltzmann constant [J/K].
BOLTZMANN: float = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE: float = 1.602176634e-19

#: Avogadro constant [1/mol].
AVOGADRO: float = 6.02214076e23

#: Vacuum permeability [H/m].
MU_0: float = 1.25663706212e-6

#: Vacuum permittivity [F/m].
EPSILON_0: float = 8.8541878128e-12

#: Standard gravity [m/s^2].
STANDARD_GRAVITY: float = 9.80665

#: Room temperature used as default for noise calculations [K].
ROOM_TEMPERATURE: float = 300.0

#: Atomic mass unit (dalton) [kg].
DALTON: float = 1.66053906660e-27

#: Clamped-free (cantilever) Euler-Bernoulli eigenvalue coefficients
#: ``lambda_n`` solving ``cos(l) * cosh(l) = -1``; the resonant frequency of
#: mode *n* is ``f_n = (lambda_n^2 / 2 pi) * sqrt(E I / (rho A)) / L^2``.
CLAMPED_FREE_EIGENVALUES: tuple[float, ...] = (
    1.8751040687119611,
    4.694091132974175,
    7.854757438237613,
    10.995540734875467,
    14.13716839104647,
)

#: KOH anisotropic etching exposes (111) planes at this angle from the
#: (100) wafer surface [degrees].
KOH_SIDEWALL_ANGLE_DEG: float = 54.7356103172
