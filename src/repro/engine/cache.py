"""Deterministic on-disk result cache for sweep and Monte-Carlo points.

Every simulation in this library is a pure function of its explicit
parameters (geometry, process knobs, seeds) — which makes results
memoizable *if* the key is stable.  The cache keys an entry by a SHA-256
content hash of

* the task function's module-qualified name,
* a canonical encoding of its parameters (dataclasses, dicts, numpy
  arrays, partials — see :func:`stable_hash`),
* the caller-supplied ``extra`` context (e.g. config dataclasses the
  function closes over), and
* the cache schema version, so bumping :data:`CACHE_VERSION` invalidates
  every old entry at once.

Entries are pickle files written atomically (temp file + ``os.replace``)
so a killed run never leaves a half-written entry.  The value itself is
stored as an inner pickle blob with a SHA-256 integrity checksum, so a
bit-flipped or truncated file — whether it breaks the outer pickle or
silently damages the payload — is *detected*, counted, evicted, and
treated as a miss, never returned as data and never raised.  Hit/miss/
corruption counters are exposed through :meth:`ResultCache.cache_info`
so benches can *prove* a warm re-run skipped recomputation and fault
tests can prove a corrupt entry was recomputed.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import CacheError
from .resilience import active_injector, corruption_offsets, poll_fault

logger = logging.getLogger(__name__)

#: Bump to invalidate every previously written cache entry.
#: 2: checksummed inner-blob payload layout (integrity verification).
CACHE_VERSION = 2

_MISSING = object()


@dataclass(frozen=True)
class CacheInfo:
    """Counters of one :class:`ResultCache` instance's activity."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found damaged (checksum or format) and evicted; every
    #: corruption is also counted as a miss, so hits+misses still totals
    #: the requests.
    corruptions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"CacheInfo(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corruptions={self.corruptions})"
        )


def _encode(obj, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    The encoding is type-tagged so ``1`` and ``1.0`` and ``"1"`` hash
    differently, and recursive so nested containers, dataclasses, and
    partials all reduce to stable bytes.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        # repr round-trips doubles exactly; hex would too but is less greppable
        out.append(f"float:{obj!r};".encode())
    elif isinstance(obj, complex):
        out.append(f"complex:{obj!r};".encode())
    elif isinstance(obj, np.ndarray):
        out.append(f"ndarray:{obj.dtype.str}:{obj.shape};".encode())
        out.append(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, (list, tuple)):
        out.append(f"{type(obj).__name__}[{len(obj)}]:".encode())
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, (set, frozenset)):
        out.append(f"set[{len(obj)}]:".encode())
        for item in sorted(obj, key=repr):
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(f"dict[{len(obj)}]:".encode())
        for key in sorted(obj, key=repr):
            _encode(key, out)
            _encode(obj[key], out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"dataclass:{cls.__module__}.{cls.__qualname__};".encode())
        for field in dataclasses.fields(obj):
            out.append(f"field:{field.name};".encode())
            _encode(getattr(obj, field.name), out)
    elif isinstance(obj, functools.partial):
        out.append(b"partial:")
        _encode(obj.func, out)
        _encode(obj.args, out)
        _encode(obj.keywords, out)
    elif callable(obj):
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", None))
        module = getattr(obj, "__module__", None)
        if name is None:
            raise CacheError(f"cannot stably hash callable {obj!r}")
        if "<locals>" in name or "<lambda>" in name:
            raise CacheError(
                f"cannot stably hash {module}.{name}: closures and lambdas "
                "have no stable identity across runs — use a module-level "
                "function or functools.partial of one"
            )
        out.append(f"callable:{module}.{name};".encode())
    else:
        # plain value objects (e.g. LayerStack): type identity + state.
        # Deterministic as long as the state itself is encodable; objects
        # carrying handles or memo caches will (correctly) raise below.
        cls = type(obj)
        state = getattr(obj, "__dict__", None)
        if state is None and hasattr(cls, "__slots__"):
            state = {
                slot: getattr(obj, slot)
                for slot in cls.__slots__
                if hasattr(obj, slot)
            }
        if state is None:
            raise CacheError(
                f"cannot stably hash {type(obj).__name__!r} value {obj!r}; "
                "supported: scalars, str/bytes, containers, numpy arrays, "
                "dataclasses, plain value objects, module-level callables, "
                "partials"
            )
        out.append(f"object:{cls.__module__}.{cls.__qualname__};".encode())
        _encode(state, out)


def stable_hash(*parts) -> str:
    """Deterministic SHA-256 hex digest of the canonical part encoding.

    Stable across processes and sessions (unlike ``hash()``, which is
    salted per-interpreter for strings).
    """
    chunks: list[bytes] = []
    for part in parts:
        _encode(part, chunks)
    return hashlib.sha256(b"".join(chunks)).hexdigest()


def _damage_file(path: Path, fault) -> None:
    """Apply one injected ``cache.entry`` fault to the on-disk entry.

    ``"corrupt"`` XOR-flips a handful of deterministically chosen bytes
    (plan-seeded, so the same plan always injures the same bytes);
    anything else truncates the file to half — the killed-mid-write
    shape.  Both damages must be caught by the read path's checksum or
    unpickling, never surfaced to the caller.
    """
    raw = path.read_bytes()
    if not raw:
        return
    if fault.kind == "corrupt":
        injector = active_injector()
        seed = injector.plan.seed if injector is not None else 0
        n = max(1, int(fault.payload)) if fault.payload else 8
        damaged = bytearray(raw)
        for offset in corruption_offsets(seed, len(raw), n, path.name):
            damaged[offset] ^= 0xFF
        path.write_bytes(bytes(damaged))
    else:
        path.write_bytes(raw[: len(raw) // 2])


class ResultCache:
    """On-disk memo table keyed by stable content hashes.

    Parameters
    ----------
    directory:
        Cache directory (created on first store).  Defaults to the
        ``REPRO_CACHE_DIR`` environment variable, else ``.repro_cache``
        under the current working directory.
    version:
        Cache schema version folded into every key; defaults to
        :data:`CACHE_VERSION`.  Bump to orphan all existing entries.
    """

    def __init__(
        self, directory: str | os.PathLike | None = None,
        version: int = CACHE_VERSION,
    ) -> None:
        root = directory or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        self.directory = Path(root)
        self.version = int(version)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corruptions = 0

    # -- keys ----------------------------------------------------------------

    def key_for(self, fn: Callable, parameter, extra=None) -> str:
        """Cache key of one (function, parameter, context) evaluation."""
        return stable_hash("repro-cache", self.version, fn, parameter, extra)

    def _path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- storage -------------------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key``, or the ``MISS`` sentinel.

        A missing, corrupted, or version-mismatched entry counts as a
        miss; damaged files (broken pickle, wrong key, failed checksum)
        additionally count as corruptions and are evicted so the next
        store is clean.  The ``cache.entry`` fault site damages the
        on-disk file *before* the read, so injection exercises exactly
        this recovery path.
        """
        path = self._path_for(key)
        fault = poll_fault("cache.entry")
        if fault is not None and path.is_file():
            _damage_file(path, fault)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            value = self._decode_payload(payload, key, path)
        except FileNotFoundError:
            self._misses += 1
            return self.MISS
        except Exception as err:
            # corrupted / truncated / incompatible entry: evict + recompute
            self._misses += 1
            self._corruptions += 1
            logger.warning("evicting corrupt cache entry %s: %s", path.name, err)
            try:
                path.unlink()
            except OSError:
                pass
            return self.MISS
        self._hits += 1
        return value

    def _decode_payload(self, payload, key: str, path: Path):
        """Validate one loaded payload dict; raises CacheError on damage."""
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
        ):
            raise CacheError(f"stale or foreign cache entry {path.name}")
        blob = payload.get("blob")
        if not isinstance(blob, bytes):
            raise CacheError(f"malformed cache entry {path.name}")
        if hashlib.sha256(blob).hexdigest() != payload.get("sha256"):
            raise CacheError(f"checksum mismatch in cache entry {path.name}")
        return pickle.loads(blob)

    def put(self, key: str, value) -> None:
        """Atomically persist ``value`` under ``key`` (checksummed)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": self.version,
            "key": key,
            "blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stores += 1

    #: Sentinel returned by :meth:`get` for absent entries (never a value).
    MISS = _MISSING

    def get_or_compute(self, fn: Callable, parameter, extra=None):
        """Memoized ``fn(parameter)``: load on hit, compute + store on miss."""
        key = self.key_for(fn, parameter, extra)
        value = self.get(key)
        if value is not self.MISS:
            return value
        value = fn(parameter)
        self.put(key, value)
        return value

    # -- introspection -------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hit/miss/store counters since this instance was created."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corruptions=self._corruptions,
        )

    def verify(self, evict: bool = True) -> tuple[int, int]:
        """Integrity-scan every entry: ``(intact, damaged)`` counts.

        Damaged entries (unreadable pickle, checksum mismatch, wrong
        schema version) are evicted when ``evict`` is true, so the next
        lookup recomputes them.  Does not touch the hit/miss counters —
        this is an audit, not a lookup.
        """
        intact = damaged = 0
        if not self.directory.is_dir():
            return (0, 0)
        for path in sorted(self.directory.glob("*.pkl")):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                self._decode_payload(payload, path.stem, path)
                intact += 1
            except Exception as err:
                damaged += 1
                logger.warning("cache entry %s is damaged: %s", path.name, err)
                if evict:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return (intact, damaged)

    def clear(self) -> int:
        """Delete every entry in the cache directory; returns the count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
