"""Deterministic on-disk result cache for sweep and Monte-Carlo points.

Every simulation in this library is a pure function of its explicit
parameters (geometry, process knobs, seeds) — which makes results
memoizable *if* the key is stable.  The cache keys an entry by a SHA-256
content hash of

* the task function's module-qualified name,
* a canonical encoding of its parameters (dataclasses, dicts, numpy
  arrays, partials — see :func:`stable_hash`),
* the caller-supplied ``extra`` context (e.g. config dataclasses the
  function closes over), and
* the cache schema version, so bumping :data:`CACHE_VERSION` invalidates
  every old entry at once.

Entries are pickle files written atomically (temp file + ``os.replace``)
so a killed run never leaves a half-written entry.  The value itself is
stored as an inner pickle blob with a SHA-256 integrity checksum, so a
bit-flipped or truncated file — whether it breaks the outer pickle or
silently damages the payload — is *detected*, counted, evicted, and
treated as a miss, never returned as data and never raised.  Hit/miss/
corruption counters are exposed through :meth:`ResultCache.cache_info`
so benches can *prove* a warm re-run skipped recomputation and fault
tests can prove a corrupt entry was recomputed.

:class:`TieredCache` extends the flat cache into a three-tier
hierarchy for distributed sweeps: an in-process LRU of decoded blobs,
a local disk tier sharded by hash prefix (so a million-entry grid does
not put a million files in one directory), and an optional *shared*
remote store — filesystem-backed (:class:`FilesystemRemoteStore`, e.g.
an NFS mount) or HTTP-backed against a running ``repro serve``
(:class:`HTTPRemoteStore`).  Entries flow downward on miss and are
*promoted* upward on hit; every tier keeps its own hit/miss/store/
promotion/eviction counters (:class:`TierInfo`) surfaced through
:meth:`TieredCache.cache_info` and ``repro health``.  The remote tier
transports the *outer checksummed payload* verbatim, so a damaged blob
is detected at the receiving end exactly like a damaged local file.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import logging
import os
import pickle
import tempfile
import threading
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import CacheError
from .resilience import active_injector, corruption_offsets, poll_fault

logger = logging.getLogger(__name__)

#: Bump to invalidate every previously written cache entry.
#: 2: checksummed inner-blob payload layout (integrity verification).
CACHE_VERSION = 2

_MISSING = object()


@dataclass(frozen=True)
class CacheInfo:
    """Counters of one :class:`ResultCache` instance's activity."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found damaged (checksum or format) and evicted; every
    #: corruption is also counted as a miss, so hits+misses still totals
    #: the requests.
    corruptions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"CacheInfo(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corruptions={self.corruptions})"
        )


def _encode(obj, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    The encoding is type-tagged so ``1`` and ``1.0`` and ``"1"`` hash
    differently, and recursive so nested containers, dataclasses, and
    partials all reduce to stable bytes.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        # repr round-trips doubles exactly; hex would too but is less greppable
        out.append(f"float:{obj!r};".encode())
    elif isinstance(obj, complex):
        out.append(f"complex:{obj!r};".encode())
    elif isinstance(obj, np.ndarray):
        out.append(f"ndarray:{obj.dtype.str}:{obj.shape};".encode())
        out.append(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, (list, tuple)):
        out.append(f"{type(obj).__name__}[{len(obj)}]:".encode())
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, (set, frozenset)):
        out.append(f"set[{len(obj)}]:".encode())
        for item in sorted(obj, key=repr):
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(f"dict[{len(obj)}]:".encode())
        for key in sorted(obj, key=repr):
            _encode(key, out)
            _encode(obj[key], out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"dataclass:{cls.__module__}.{cls.__qualname__};".encode())
        for field in dataclasses.fields(obj):
            out.append(f"field:{field.name};".encode())
            _encode(getattr(obj, field.name), out)
    elif isinstance(obj, functools.partial):
        out.append(b"partial:")
        _encode(obj.func, out)
        _encode(obj.args, out)
        _encode(obj.keywords, out)
    elif callable(obj):
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", None))
        module = getattr(obj, "__module__", None)
        if name is None:
            raise CacheError(f"cannot stably hash callable {obj!r}")
        if "<locals>" in name or "<lambda>" in name:
            raise CacheError(
                f"cannot stably hash {module}.{name}: closures and lambdas "
                "have no stable identity across runs — use a module-level "
                "function or functools.partial of one"
            )
        out.append(f"callable:{module}.{name};".encode())
    else:
        # plain value objects (e.g. LayerStack): type identity + state.
        # Deterministic as long as the state itself is encodable; objects
        # carrying handles or memo caches will (correctly) raise below.
        cls = type(obj)
        state = getattr(obj, "__dict__", None)
        if state is None and hasattr(cls, "__slots__"):
            state = {
                slot: getattr(obj, slot)
                for slot in cls.__slots__
                if hasattr(obj, slot)
            }
        if state is None:
            raise CacheError(
                f"cannot stably hash {type(obj).__name__!r} value {obj!r}; "
                "supported: scalars, str/bytes, containers, numpy arrays, "
                "dataclasses, plain value objects, module-level callables, "
                "partials"
            )
        out.append(f"object:{cls.__module__}.{cls.__qualname__};".encode())
        _encode(state, out)


def stable_hash(*parts) -> str:
    """Deterministic SHA-256 hex digest of the canonical part encoding.

    Stable across processes and sessions (unlike ``hash()``, which is
    salted per-interpreter for strings).
    """
    chunks: list[bytes] = []
    for part in parts:
        _encode(part, chunks)
    return hashlib.sha256(b"".join(chunks)).hexdigest()


def _damage_file(path: Path, fault) -> None:
    """Apply one injected ``cache.entry`` fault to the on-disk entry.

    ``"corrupt"`` XOR-flips a handful of deterministically chosen bytes
    (plan-seeded, so the same plan always injures the same bytes);
    anything else truncates the file to half — the killed-mid-write
    shape.  Both damages must be caught by the read path's checksum or
    unpickling, never surfaced to the caller.
    """
    raw = path.read_bytes()
    if not raw:
        return
    if fault.kind == "corrupt":
        injector = active_injector()
        seed = injector.plan.seed if injector is not None else 0
        n = max(1, int(fault.payload)) if fault.payload else 8
        damaged = bytearray(raw)
        for offset in corruption_offsets(seed, len(raw), n, path.name):
            damaged[offset] ^= 0xFF
        path.write_bytes(bytes(damaged))
    else:
        path.write_bytes(raw[: len(raw) // 2])


class ResultCache:
    """On-disk memo table keyed by stable content hashes.

    Parameters
    ----------
    directory:
        Cache directory (created on first store).  Defaults to the
        ``REPRO_CACHE_DIR`` environment variable, else ``.repro_cache``
        under the current working directory.
    version:
        Cache schema version folded into every key; defaults to
        :data:`CACHE_VERSION`.  Bump to orphan all existing entries.
    """

    def __init__(
        self, directory: str | os.PathLike | None = None,
        version: int = CACHE_VERSION,
    ) -> None:
        root = directory or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        self.directory = Path(root)
        self.version = int(version)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corruptions = 0

    # -- keys ----------------------------------------------------------------

    def key_for(self, fn: Callable, parameter, extra=None) -> str:
        """Cache key of one (function, parameter, context) evaluation."""
        return stable_hash("repro-cache", self.version, fn, parameter, extra)

    def _path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- storage -------------------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key``, or the ``MISS`` sentinel.

        A missing, corrupted, or version-mismatched entry counts as a
        miss; damaged files (broken pickle, wrong key, failed checksum)
        additionally count as corruptions and are evicted so the next
        store is clean.  The ``cache.entry`` fault site damages the
        on-disk file *before* the read, so injection exercises exactly
        this recovery path.
        """
        path = self._path_for(key)
        fault = poll_fault("cache.entry")
        if fault is not None and path.is_file():
            _damage_file(path, fault)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            value = self._decode_payload(payload, key, path)
        except FileNotFoundError:
            self._misses += 1
            return self.MISS
        except Exception as err:
            # corrupted / truncated / incompatible entry: evict + recompute
            self._misses += 1
            self._corruptions += 1
            logger.warning("evicting corrupt cache entry %s: %s", path.name, err)
            try:
                path.unlink()
            except OSError:
                pass
            return self.MISS
        self._hits += 1
        return value

    def _decode_payload(self, payload, key: str, path: Path):
        """Validate one loaded payload dict; raises CacheError on damage."""
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
        ):
            raise CacheError(f"stale or foreign cache entry {path.name}")
        blob = payload.get("blob")
        if not isinstance(blob, bytes):
            raise CacheError(f"malformed cache entry {path.name}")
        if hashlib.sha256(blob).hexdigest() != payload.get("sha256"):
            raise CacheError(f"checksum mismatch in cache entry {path.name}")
        return pickle.loads(blob)

    def put(self, key: str, value) -> None:
        """Atomically persist ``value`` under ``key`` (checksummed)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": self.version,
            "key": key,
            "blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stores += 1

    #: Sentinel returned by :meth:`get` for absent entries (never a value).
    MISS = _MISSING

    def get_or_compute(self, fn: Callable, parameter, extra=None):
        """Memoized ``fn(parameter)``: load on hit, compute + store on miss."""
        key = self.key_for(fn, parameter, extra)
        value = self.get(key)
        if value is not self.MISS:
            return value
        value = fn(parameter)
        self.put(key, value)
        return value

    # -- introspection -------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hit/miss/store counters since this instance was created."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corruptions=self._corruptions,
        )

    def verify(self, evict: bool = True) -> tuple[int, int]:
        """Integrity-scan every entry: ``(intact, damaged)`` counts.

        Damaged entries (unreadable pickle, checksum mismatch, wrong
        schema version) are evicted when ``evict`` is true, so the next
        lookup recomputes them.  Does not touch the hit/miss counters —
        this is an audit, not a lookup.
        """
        intact = damaged = 0
        if not self.directory.is_dir():
            return (0, 0)
        # rglob, not glob: scans both the flat layout and the sharded
        # hash-prefix layout TieredCache writes, so one audit covers any
        # directory regardless of which cache class produced it.
        for path in sorted(self.directory.rglob("*.pkl")):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                self._decode_payload(payload, path.stem, path)
                intact += 1
            except Exception as err:
                damaged += 1
                logger.warning("cache entry %s is damaged: %s", path.name, err)
                if evict:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return (intact, damaged)

    def clear(self) -> int:
        """Delete every entry in the cache directory; returns the count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# -- tiered cache -------------------------------------------------------------


@dataclass(frozen=True)
class TierInfo:
    """Counters of one tier of a :class:`TieredCache`.

    ``promotions`` counts entries copied *into* this tier after a hit in
    a slower tier (memory gains one on every disk or remote hit; disk
    gains one on every remote hit).  ``evictions`` counts LRU drops
    (memory tier only).  ``errors`` counts failed remote round-trips —
    the remote tier is best-effort and never fails a lookup or store.
    """

    name: str
    hits: int = 0
    misses: int = 0
    stores: int = 0
    promotions: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class TieredCacheInfo(CacheInfo):
    """Aggregate counters plus the per-tier breakdown.

    The inherited ``hits``/``misses``/``stores``/``corruptions`` keep
    the flat-cache meaning (one count per :meth:`TieredCache.get` /
    :meth:`TieredCache.put`, whichever tier served it), so every caller
    written against :class:`CacheInfo` — warm-sweep asserts, the service
    health snapshot, ``bench_report`` — reads a tiered cache unchanged.
    """

    tiers: tuple[TierInfo, ...] = ()

    def tier(self, name: str) -> TierInfo:
        """The named tier's counters (``"memory"``/``"disk"``/``"remote"``)."""
        for info in self.tiers:
            if info.name == name:
                return info
        raise KeyError(f"no cache tier named {name!r}")

    def __str__(self) -> str:
        parts = ", ".join(
            f"{t.name}={t.hits}h/{t.misses}m" for t in self.tiers
        )
        return (
            f"TieredCacheInfo(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corruptions={self.corruptions}, {parts})"
        )


class _TierCounters:
    """Mutable counter block behind one :class:`TierInfo` snapshot."""

    __slots__ = ("name", "hits", "misses", "stores", "promotions",
                 "evictions", "errors")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = self.misses = self.stores = 0
        self.promotions = self.evictions = self.errors = 0

    def info(self) -> TierInfo:
        return TierInfo(
            name=self.name, hits=self.hits, misses=self.misses,
            stores=self.stores, promotions=self.promotions,
            evictions=self.evictions, errors=self.errors,
        )


class FilesystemRemoteStore:
    """Shared-directory remote tier (NFS mount, bind mount, tmpfs).

    Stores the *outer payload bytes* of a cache entry verbatim under the
    same shard-by-hash-prefix layout the local disk tier uses, written
    atomically, so N workers on N nodes can share one directory with no
    coordination beyond the filesystem's own rename atomicity.
    """

    def __init__(self, directory: str | os.PathLike,
                 shard_width: int = 2) -> None:
        self.directory = Path(directory)
        self.shard_width = int(shard_width)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[: self.shard_width] / f"{key}.pkl"

    def get(self, key: str) -> bytes | None:
        try:
            return self._path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, raw: bytes) -> None:
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        try:
            self._path_for(key).unlink()
        except OSError:
            pass


class HTTPRemoteStore:
    """Remote tier speaking the ``repro serve`` blob API.

    ``GET /v1/cache/<key>`` returns the outer payload bytes (404 on
    miss); ``PUT /v1/cache/<key>`` uploads them.  The server validates
    the checksum before accepting a blob, so a worker can never poison
    the shared store with a damaged entry.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _url(self, key: str) -> str:
        return f"{self.base_url}/v1/cache/{key}"

    def get(self, key: str) -> bytes | None:
        request = urllib.request.Request(self._url(key), method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as err:
            if err.code == 404:
                return None
            raise

    def put(self, key: str, raw: bytes) -> None:
        request = urllib.request.Request(
            self._url(key), data=raw, method="PUT",
            headers={"Content-Type": "application/octet-stream"},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            resp.read()


class TieredCache(ResultCache):
    """Three-tier result cache: in-process LRU → sharded disk → remote.

    Lookups fall through memory → disk → remote and *promote* on hit, so
    a grid point computed on any node is one memory access on its next
    use anywhere the tiers are shared.  Keys, payload layout, checksums,
    and the ``cache.entry`` fault site are identical to
    :class:`ResultCache` — a ``TieredCache`` pointed at an existing flat
    cache directory still serves (and transparently re-shards) its
    entries, and every result it stores remains readable by the base
    class through :meth:`verify`.

    Parameters
    ----------
    directory / version:
        As :class:`ResultCache`.
    memory_entries:
        LRU capacity of the in-process tier (0 disables it).  The tier
        holds encoded blobs, not live objects, so a hit always returns a
        fresh deserialization — callers may mutate results freely.
    remote:
        Optional shared store (:class:`FilesystemRemoteStore`,
        :class:`HTTPRemoteStore`, or anything with ``get(key) ->
        bytes | None`` / ``put(key, raw)``).  Best-effort: a failing
        remote degrades to a two-tier cache, counted under
        ``tier("remote").errors``, and never raises into a sweep.
    shard_width:
        Hash-prefix length of the disk shard directories.
    """

    def __init__(
        self, directory: str | os.PathLike | None = None,
        version: int = CACHE_VERSION, *,
        memory_entries: int = 256,
        remote=None,
        shard_width: int = 2,
    ) -> None:
        super().__init__(directory, version)
        if memory_entries < 0:
            raise CacheError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        if not 1 <= int(shard_width) <= 8:
            raise CacheError(f"shard_width must be in 1..8, got {shard_width}")
        self.memory_entries = int(memory_entries)
        self.shard_width = int(shard_width)
        self.remote = remote
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._mem_lock = threading.Lock()
        self._tiers = {
            "memory": _TierCounters("memory"),
            "disk": _TierCounters("disk"),
            "remote": _TierCounters("remote"),
        }

    # -- layout ---------------------------------------------------------------

    def _path_for(self, key: str) -> Path:
        return self.directory / key[: self.shard_width] / f"{key}.pkl"

    def _flat_path_for(self, key: str) -> Path:
        """Legacy flat-layout location (pre-tiering caches)."""
        return self.directory / f"{key}.pkl"

    # -- memory tier ----------------------------------------------------------

    def _mem_get(self, key: str):
        if self.memory_entries <= 0:
            return None
        with self._mem_lock:
            blob = self._mem.get(key)
            if blob is not None:
                self._mem.move_to_end(key)
            return blob

    def _mem_insert(self, key: str, blob: bytes, *, promotion: bool) -> None:
        if self.memory_entries <= 0:
            return
        mem = self._tiers["memory"]
        with self._mem_lock:
            self._mem[key] = blob
            self._mem.move_to_end(key)
            if promotion:
                mem.promotions += 1
            else:
                mem.stores += 1
            while len(self._mem) > self.memory_entries:
                self._mem.popitem(last=False)
                mem.evictions += 1

    # -- lookups --------------------------------------------------------------

    def get(self, key: str):
        """Tier-walking lookup; same contract as :meth:`ResultCache.get`."""
        mem, disk, remote = (
            self._tiers["memory"], self._tiers["disk"], self._tiers["remote"]
        )
        blob = self._mem_get(key)
        if blob is not None:
            mem.hits += 1
            self._hits += 1
            return pickle.loads(blob)
        if self.memory_entries > 0:
            mem.misses += 1

        path = self._path_for(key)
        if not path.is_file() and self._flat_path_for(key).is_file():
            path = self._flat_path_for(key)
        fault = poll_fault("cache.entry")
        if fault is not None and path.is_file():
            _damage_file(path, fault)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            value = self._decode_payload(payload, key, path)
        except FileNotFoundError:
            disk.misses += 1
        except Exception as err:
            disk.misses += 1
            self._corruptions += 1
            logger.warning("evicting corrupt cache entry %s: %s", path.name, err)
            try:
                path.unlink()
            except OSError:
                pass
        else:
            disk.hits += 1
            self._hits += 1
            self._mem_insert(key, payload["blob"], promotion=True)
            if path.name == f"{key}.pkl" and path.parent == self.directory:
                self._reshard(key, path)
            return value

        raw = self._remote_get(key)
        if raw is not None:
            try:
                payload = pickle.loads(raw)
                value = self._decode_payload(payload, key, Path(f"{key}.pkl"))
            except Exception as err:
                self._corruptions += 1
                remote.errors += 1
                logger.warning("damaged remote cache entry %s: %s", key, err)
            else:
                remote.hits += 1
                self._hits += 1
                self._write_raw(key, raw)
                disk.promotions += 1
                self._mem_insert(key, payload["blob"], promotion=True)
                return value
        elif self.remote is not None:
            remote.misses += 1

        self._misses += 1
        return self.MISS

    def put(self, key: str, value) -> None:
        """Write-through store: disk (atomic) + memory + remote."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": self.version,
            "key": key,
            "blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_raw(key, raw)
        self._tiers["disk"].stores += 1
        self._stores += 1
        self._mem_insert(key, blob, promotion=False)
        if self.remote is not None:
            remote = self._tiers["remote"]
            try:
                self.remote.put(key, raw)
            except Exception as err:
                remote.errors += 1
                logger.warning("remote cache store failed for %s: %s", key, err)
            else:
                remote.stores += 1

    def _write_raw(self, key: str, raw: bytes) -> None:
        """Atomically place outer payload bytes at the sharded path."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remote_get(self, key: str) -> bytes | None:
        if self.remote is None:
            return None
        try:
            return self.remote.get(key)
        except Exception as err:
            self._tiers["remote"].errors += 1
            logger.warning("remote cache lookup failed for %s: %s", key, err)
            return None

    def _reshard(self, key: str, flat_path: Path) -> None:
        """Migrate a legacy flat entry into its shard directory."""
        try:
            target = self.directory / key[: self.shard_width] / flat_path.name
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat_path, target)
        except OSError:
            pass

    # -- raw entry transport (server blob API) --------------------------------

    def export_entry(self, key: str) -> bytes | None:
        """Outer payload bytes for ``key``, or None (no counters touched)."""
        for path in (self._path_for(key), self._flat_path_for(key)):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                continue
        return None

    def import_entry(self, key: str, raw: bytes) -> bool:
        """Accept uploaded payload bytes after validating the checksum.

        Returns False (and stores nothing) when the bytes do not decode
        to an intact entry for exactly ``key`` — the gate that keeps a
        misbehaving worker from poisoning a shared store.
        """
        try:
            payload = pickle.loads(raw)
            blob = self._decode_payload(payload, key, Path(f"{key}.pkl"))
        except Exception as err:
            logger.warning("rejecting uploaded cache entry %s: %s", key, err)
            return False
        del blob
        self._write_raw(key, raw)
        self._tiers["disk"].stores += 1
        self._stores += 1
        return True

    # -- introspection --------------------------------------------------------

    def cache_info(self) -> TieredCacheInfo:
        """Aggregate + per-tier counters since this instance was created."""
        return TieredCacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corruptions=self._corruptions,
            tiers=tuple(
                self._tiers[name].info()
                for name in ("memory", "disk", "remote")
            ),
        )

    def clear(self) -> int:
        with self._mem_lock:
            self._mem.clear()
        return super().clear()
