"""Deterministic on-disk result cache for sweep and Monte-Carlo points.

Every simulation in this library is a pure function of its explicit
parameters (geometry, process knobs, seeds) — which makes results
memoizable *if* the key is stable.  The cache keys an entry by a SHA-256
content hash of

* the task function's module-qualified name,
* a canonical encoding of its parameters (dataclasses, dicts, numpy
  arrays, partials — see :func:`stable_hash`),
* the caller-supplied ``extra`` context (e.g. config dataclasses the
  function closes over), and
* the cache schema version, so bumping :data:`CACHE_VERSION` invalidates
  every old entry at once.

Entries are pickle files written atomically (temp file + ``os.replace``)
so a killed run never leaves a half-written entry.  The value itself is
stored as an inner pickle blob with a SHA-256 integrity checksum, so a
bit-flipped or truncated file — whether it breaks the outer pickle or
silently damages the payload — is *detected*, counted, evicted, and
treated as a miss, never returned as data and never raised.  Hit/miss/
corruption counters are exposed through :meth:`ResultCache.cache_info`
so benches can *prove* a warm re-run skipped recomputation and fault
tests can prove a corrupt entry was recomputed.

:class:`TieredCache` extends the flat cache into a three-tier
hierarchy for distributed sweeps: an in-process LRU of decoded blobs,
a local disk tier sharded by hash prefix (so a million-entry grid does
not put a million files in one directory), and an optional *shared*
remote store — filesystem-backed (:class:`FilesystemRemoteStore`, e.g.
an NFS mount) or HTTP-backed against a running ``repro serve``
(:class:`HTTPRemoteStore`).  Entries flow downward on miss and are
*promoted* upward on hit; every tier keeps its own hit/miss/store/
promotion/eviction counters (:class:`TierInfo`) surfaced through
:meth:`TieredCache.cache_info` and ``repro health``.  The remote tier
transports the *outer checksummed payload* verbatim, so a damaged blob
is detected at the receiving end exactly like a damaged local file.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import logging
import os
import pickle
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import CacheError, FaultInjectionError
from .resilience import (
    RetryPolicy,
    active_injector,
    corruption_offsets,
    poll_fault,
)

logger = logging.getLogger(__name__)

#: Bump to invalidate every previously written cache entry.
#: 2: checksummed inner-blob payload layout (integrity verification).
CACHE_VERSION = 2

_MISSING = object()


@dataclass(frozen=True)
class CacheInfo:
    """Counters of one :class:`ResultCache` instance's activity."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found damaged (checksum or format) and evicted; every
    #: corruption is also counted as a miss, so hits+misses still totals
    #: the requests.
    corruptions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"CacheInfo(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corruptions={self.corruptions})"
        )


def _encode(obj, out: list[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    The encoding is type-tagged so ``1`` and ``1.0`` and ``"1"`` hash
    differently, and recursive so nested containers, dataclasses, and
    partials all reduce to stable bytes.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        # repr round-trips doubles exactly; hex would too but is less greppable
        out.append(f"float:{obj!r};".encode())
    elif isinstance(obj, complex):
        out.append(f"complex:{obj!r};".encode())
    elif isinstance(obj, np.ndarray):
        out.append(f"ndarray:{obj.dtype.str}:{obj.shape};".encode())
        out.append(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, (list, tuple)):
        out.append(f"{type(obj).__name__}[{len(obj)}]:".encode())
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, (set, frozenset)):
        out.append(f"set[{len(obj)}]:".encode())
        for item in sorted(obj, key=repr):
            _encode(item, out)
    elif isinstance(obj, dict):
        out.append(f"dict[{len(obj)}]:".encode())
        for key in sorted(obj, key=repr):
            _encode(key, out)
            _encode(obj[key], out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(f"dataclass:{cls.__module__}.{cls.__qualname__};".encode())
        for field in dataclasses.fields(obj):
            out.append(f"field:{field.name};".encode())
            _encode(getattr(obj, field.name), out)
    elif isinstance(obj, functools.partial):
        out.append(b"partial:")
        _encode(obj.func, out)
        _encode(obj.args, out)
        _encode(obj.keywords, out)
    elif callable(obj):
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", None))
        module = getattr(obj, "__module__", None)
        if name is None:
            raise CacheError(f"cannot stably hash callable {obj!r}")
        if "<locals>" in name or "<lambda>" in name:
            raise CacheError(
                f"cannot stably hash {module}.{name}: closures and lambdas "
                "have no stable identity across runs — use a module-level "
                "function or functools.partial of one"
            )
        out.append(f"callable:{module}.{name};".encode())
    else:
        # plain value objects (e.g. LayerStack): type identity + state.
        # Deterministic as long as the state itself is encodable; objects
        # carrying handles or memo caches will (correctly) raise below.
        cls = type(obj)
        state = getattr(obj, "__dict__", None)
        if state is None and hasattr(cls, "__slots__"):
            state = {
                slot: getattr(obj, slot)
                for slot in cls.__slots__
                if hasattr(obj, slot)
            }
        if state is None:
            raise CacheError(
                f"cannot stably hash {type(obj).__name__!r} value {obj!r}; "
                "supported: scalars, str/bytes, containers, numpy arrays, "
                "dataclasses, plain value objects, module-level callables, "
                "partials"
            )
        out.append(f"object:{cls.__module__}.{cls.__qualname__};".encode())
        _encode(state, out)


def stable_hash(*parts) -> str:
    """Deterministic SHA-256 hex digest of the canonical part encoding.

    Stable across processes and sessions (unlike ``hash()``, which is
    salted per-interpreter for strings).
    """
    chunks: list[bytes] = []
    for part in parts:
        _encode(part, chunks)
    return hashlib.sha256(b"".join(chunks)).hexdigest()


def _damage_file(path: Path, fault) -> None:
    """Apply one injected ``cache.entry`` fault to the on-disk entry.

    ``"corrupt"`` XOR-flips a handful of deterministically chosen bytes
    (plan-seeded, so the same plan always injures the same bytes);
    anything else truncates the file to half — the killed-mid-write
    shape.  Both damages must be caught by the read path's checksum or
    unpickling, never surfaced to the caller.
    """
    raw = path.read_bytes()
    if not raw:
        return
    if fault.kind == "corrupt":
        injector = active_injector()
        seed = injector.plan.seed if injector is not None else 0
        n = max(1, int(fault.payload)) if fault.payload else 8
        damaged = bytearray(raw)
        for offset in corruption_offsets(seed, len(raw), n, path.name):
            damaged[offset] ^= 0xFF
        path.write_bytes(bytes(damaged))
    else:
        path.write_bytes(raw[: len(raw) // 2])


class ResultCache:
    """On-disk memo table keyed by stable content hashes.

    Parameters
    ----------
    directory:
        Cache directory (created on first store).  Defaults to the
        ``REPRO_CACHE_DIR`` environment variable, else ``.repro_cache``
        under the current working directory.
    version:
        Cache schema version folded into every key; defaults to
        :data:`CACHE_VERSION`.  Bump to orphan all existing entries.
    """

    def __init__(
        self, directory: str | os.PathLike | None = None,
        version: int = CACHE_VERSION,
    ) -> None:
        root = directory or os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        self.directory = Path(root)
        self.version = int(version)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corruptions = 0

    # -- keys ----------------------------------------------------------------

    def key_for(self, fn: Callable, parameter, extra=None) -> str:
        """Cache key of one (function, parameter, context) evaluation."""
        return stable_hash("repro-cache", self.version, fn, parameter, extra)

    def _path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- storage -------------------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key``, or the ``MISS`` sentinel.

        A missing, corrupted, or version-mismatched entry counts as a
        miss; damaged files (broken pickle, wrong key, failed checksum)
        additionally count as corruptions and are evicted so the next
        store is clean.  The ``cache.entry`` fault site damages the
        on-disk file *before* the read, so injection exercises exactly
        this recovery path.
        """
        path = self._path_for(key)
        fault = poll_fault("cache.entry")
        if fault is not None and path.is_file():
            _damage_file(path, fault)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            value = self._decode_payload(payload, key, path)
        except FileNotFoundError:
            self._misses += 1
            return self.MISS
        except Exception as err:
            # corrupted / truncated / incompatible entry: evict + recompute
            self._misses += 1
            self._corruptions += 1
            logger.warning("evicting corrupt cache entry %s: %s", path.name, err)
            try:
                path.unlink()
            except OSError:
                pass
            return self.MISS
        self._hits += 1
        return value

    def _decode_payload(self, payload, key: str, path: Path):
        """Validate one loaded payload dict; raises CacheError on damage."""
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("key") != key
        ):
            raise CacheError(f"stale or foreign cache entry {path.name}")
        blob = payload.get("blob")
        if not isinstance(blob, bytes):
            raise CacheError(f"malformed cache entry {path.name}")
        if hashlib.sha256(blob).hexdigest() != payload.get("sha256"):
            raise CacheError(f"checksum mismatch in cache entry {path.name}")
        return pickle.loads(blob)

    def put(self, key: str, value) -> None:
        """Atomically persist ``value`` under ``key`` (checksummed)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": self.version,
            "key": key,
            "blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stores += 1

    #: Sentinel returned by :meth:`get` for absent entries (never a value).
    MISS = _MISSING

    def get_or_compute(self, fn: Callable, parameter, extra=None):
        """Memoized ``fn(parameter)``: load on hit, compute + store on miss."""
        key = self.key_for(fn, parameter, extra)
        value = self.get(key)
        if value is not self.MISS:
            return value
        value = fn(parameter)
        self.put(key, value)
        return value

    # -- introspection -------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hit/miss/store counters since this instance was created."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corruptions=self._corruptions,
        )

    def verify(self, evict: bool = True) -> tuple[int, int]:
        """Integrity-scan every entry: ``(intact, damaged)`` counts.

        Damaged entries (unreadable pickle, checksum mismatch, wrong
        schema version) are evicted when ``evict`` is true, so the next
        lookup recomputes them.  Does not touch the hit/miss counters —
        this is an audit, not a lookup.
        """
        intact = damaged = 0
        if not self.directory.is_dir():
            return (0, 0)
        # rglob, not glob: scans both the flat layout and the sharded
        # hash-prefix layout TieredCache writes, so one audit covers any
        # directory regardless of which cache class produced it.
        for path in sorted(self.directory.rglob("*.pkl")):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                self._decode_payload(payload, path.stem, path)
                intact += 1
            except Exception as err:
                damaged += 1
                logger.warning("cache entry %s is damaged: %s", path.name, err)
                if evict:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return (intact, damaged)

    def clear(self) -> int:
        """Delete every entry in the cache directory; returns the count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# -- tiered cache -------------------------------------------------------------


@dataclass(frozen=True)
class TierInfo:
    """Counters of one tier of a :class:`TieredCache`.

    ``promotions`` counts entries copied *into* this tier after a hit in
    a slower tier (memory gains one on every disk or remote hit; disk
    gains one on every remote hit).  ``evictions`` counts LRU drops
    (memory tier only).  ``errors`` counts failed remote round-trips —
    the remote tier is best-effort and never fails a lookup or store.

    The brownout counters are remote-tier only: ``trips`` counts
    error-threshold trips into local-only mode, ``skips`` counts remote
    round-trips elided while tripped, ``probes`` counts the periodic
    recovery attempts, and ``pending`` is the current depth of the
    write-behind queue holding entries stranded by the brownout (see
    :meth:`TieredCache.flush_remote`).
    """

    name: str
    hits: int = 0
    misses: int = 0
    stores: int = 0
    promotions: int = 0
    evictions: int = 0
    errors: int = 0
    trips: int = 0
    skips: int = 0
    probes: int = 0
    pending: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class TieredCacheInfo(CacheInfo):
    """Aggregate counters plus the per-tier breakdown.

    The inherited ``hits``/``misses``/``stores``/``corruptions`` keep
    the flat-cache meaning (one count per :meth:`TieredCache.get` /
    :meth:`TieredCache.put`, whichever tier served it), so every caller
    written against :class:`CacheInfo` — warm-sweep asserts, the service
    health snapshot, ``bench_report`` — reads a tiered cache unchanged.
    """

    tiers: tuple[TierInfo, ...] = ()

    def tier(self, name: str) -> TierInfo:
        """The named tier's counters (``"memory"``/``"disk"``/``"remote"``)."""
        for info in self.tiers:
            if info.name == name:
                return info
        raise KeyError(f"no cache tier named {name!r}")

    def __str__(self) -> str:
        parts = ", ".join(
            f"{t.name}={t.hits}h/{t.misses}m" for t in self.tiers
        )
        return (
            f"TieredCacheInfo(hits={self.hits}, misses={self.misses}, "
            f"stores={self.stores}, corruptions={self.corruptions}, {parts})"
        )


class _TierCounters:
    """Mutable counter block behind one :class:`TierInfo` snapshot."""

    __slots__ = ("name", "hits", "misses", "stores", "promotions",
                 "evictions", "errors", "trips", "skips", "probes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = self.misses = self.stores = 0
        self.promotions = self.evictions = self.errors = 0
        self.trips = self.skips = self.probes = 0

    def info(self, pending: int = 0) -> TierInfo:
        return TierInfo(
            name=self.name, hits=self.hits, misses=self.misses,
            stores=self.stores, promotions=self.promotions,
            evictions=self.evictions, errors=self.errors,
            trips=self.trips, skips=self.skips, probes=self.probes,
            pending=pending,
        )


class FilesystemRemoteStore:
    """Shared-directory remote tier (NFS mount, bind mount, tmpfs).

    Stores the *outer payload bytes* of a cache entry verbatim under the
    same shard-by-hash-prefix layout the local disk tier uses, written
    atomically, so N workers on N nodes can share one directory with no
    coordination beyond the filesystem's own rename atomicity.
    """

    def __init__(self, directory: str | os.PathLike,
                 shard_width: int = 2) -> None:
        self.directory = Path(directory)
        self.shard_width = int(shard_width)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[: self.shard_width] / f"{key}.pkl"

    def get(self, key: str) -> bytes | None:
        try:
            return self._path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, raw: bytes) -> None:
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        try:
            self._path_for(key).unlink()
        except OSError:
            pass


class HTTPRemoteStore:
    """Remote tier speaking the ``repro serve`` blob API.

    ``GET /v1/cache/<key>`` returns the outer payload bytes (404 on
    miss); ``PUT /v1/cache/<key>`` uploads them.  The server validates
    the checksum before accepting a blob, so a worker can never poison
    the shared store with a damaged entry.

    Transient transport failures (connection refused/reset, 5xx) are
    retried under ``retry`` — a deterministic :class:`RetryPolicy` with
    seeded jitter.  With ``deadline`` set, every request carries an
    absolute ``X-Repro-Deadline`` header ``deadline`` seconds in the
    future; the server sheds (503) work it cannot start in time, and
    this store stops retrying once the deadline has passed.
    """

    #: Absolute-epoch deadline header (mirrors service.transport).
    DEADLINE_HEADER = "X-Repro-Deadline"

    def __init__(
        self, base_url: str, timeout: float = 10.0, *,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy(
            retries=2, base_delay=0.05, max_delay=0.5)
        self.deadline = deadline

    def _url(self, key: str) -> str:
        return f"{self.base_url}/v1/cache/{key}"

    def _send(self, request: urllib.request.Request) -> bytes:
        """One logical request, retried on transient transport faults."""
        deadline_at = None
        if self.deadline is not None:
            deadline_at = time.time() + self.deadline
            request.add_header(self.DEADLINE_HEADER, f"{deadline_at:.6f}")
        last_err: Exception | None = None
        for attempt in range(self.retry.retries + 1):
            try:
                fault = poll_fault("http.request")
                if fault is not None:
                    if fault.kind == "hang":          # slow response
                        time.sleep(fault.payload or 0.05)
                    else:                             # refused / reset / 5xx
                        raise urllib.error.URLError(
                            ConnectionRefusedError("injected refusal"))
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as err:
                if err.code < 500:
                    raise                              # 404 etc.: not transient
                last_err = err
            except urllib.error.URLError as err:
                last_err = err
            if attempt >= self.retry.retries:
                break
            if deadline_at is not None and time.time() >= deadline_at:
                break
            time.sleep(self.retry.delay(attempt, key=request.full_url))
        raise last_err  # type: ignore[misc]

    def get(self, key: str) -> bytes | None:
        request = urllib.request.Request(self._url(key), method="GET")
        try:
            return self._send(request)
        except urllib.error.HTTPError as err:
            if err.code == 404:
                return None
            raise

    def put(self, key: str, raw: bytes) -> None:
        request = urllib.request.Request(
            self._url(key), data=raw, method="PUT",
            headers={"Content-Type": "application/octet-stream"},
        )
        self._send(request)


class TieredCache(ResultCache):
    """Three-tier result cache: in-process LRU → sharded disk → remote.

    Lookups fall through memory → disk → remote and *promote* on hit, so
    a grid point computed on any node is one memory access on its next
    use anywhere the tiers are shared.  Keys, payload layout, checksums,
    and the ``cache.entry`` fault site are identical to
    :class:`ResultCache` — a ``TieredCache`` pointed at an existing flat
    cache directory still serves (and transparently re-shards) its
    entries, and every result it stores remains readable by the base
    class through :meth:`verify`.

    Parameters
    ----------
    directory / version:
        As :class:`ResultCache`.
    memory_entries:
        LRU capacity of the in-process tier (0 disables it).  The tier
        holds encoded blobs, not live objects, so a hit always returns a
        fresh deserialization — callers may mutate results freely.
    remote:
        Optional shared store (:class:`FilesystemRemoteStore`,
        :class:`HTTPRemoteStore`, or anything with ``get(key) ->
        bytes | None`` / ``put(key, raw)``).  Best-effort: a failing
        remote degrades to a two-tier cache, counted under
        ``tier("remote").errors``, and never raises into a sweep.
    shard_width:
        Hash-prefix length of the disk shard directories.
    remote_trip_threshold / remote_probe_interval:
        Brownout protection for the remote tier.  After
        ``remote_trip_threshold`` *consecutive* remote errors the tier
        trips to local-only mode: remote round-trips are skipped
        (counted under ``tier("remote").skips``) except every
        ``remote_probe_interval``-th one, which goes through as a
        recovery probe.  Writes made while tripped queue in a bounded
        write-behind buffer and drain on recovery or via
        :meth:`flush_remote`.
    pending_limit:
        Capacity of the write-behind queue (oldest entries drop first;
        a drop only costs a future remote miss, never correctness —
        the local disk tier already holds the entry).
    """

    def __init__(
        self, directory: str | os.PathLike | None = None,
        version: int = CACHE_VERSION, *,
        memory_entries: int = 256,
        remote=None,
        shard_width: int = 2,
        remote_trip_threshold: int = 3,
        remote_probe_interval: int = 4,
        pending_limit: int = 1024,
    ) -> None:
        super().__init__(directory, version)
        if memory_entries < 0:
            raise CacheError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        if not 1 <= int(shard_width) <= 8:
            raise CacheError(f"shard_width must be in 1..8, got {shard_width}")
        if remote_trip_threshold < 1:
            raise CacheError(
                f"remote_trip_threshold must be >= 1, got {remote_trip_threshold}"
            )
        if remote_probe_interval < 1:
            raise CacheError(
                f"remote_probe_interval must be >= 1, got {remote_probe_interval}"
            )
        self.memory_entries = int(memory_entries)
        self.shard_width = int(shard_width)
        self.remote = remote
        self.remote_trip_threshold = int(remote_trip_threshold)
        self.remote_probe_interval = int(remote_probe_interval)
        self.pending_limit = int(pending_limit)
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._mem_lock = threading.Lock()
        self._remote_lock = threading.Lock()
        self._remote_open = False          # True while in local-only mode
        self._remote_consecutive = 0       # consecutive remote errors
        self._remote_skipped = 0           # gated calls since the trip
        self._pending_remote: OrderedDict[str, bytes] = OrderedDict()
        self._tiers = {
            "memory": _TierCounters("memory"),
            "disk": _TierCounters("disk"),
            "remote": _TierCounters("remote"),
        }

    # -- layout ---------------------------------------------------------------

    def _path_for(self, key: str) -> Path:
        return self.directory / key[: self.shard_width] / f"{key}.pkl"

    def _flat_path_for(self, key: str) -> Path:
        """Legacy flat-layout location (pre-tiering caches)."""
        return self.directory / f"{key}.pkl"

    # -- memory tier ----------------------------------------------------------

    def _mem_get(self, key: str):
        if self.memory_entries <= 0:
            return None
        with self._mem_lock:
            blob = self._mem.get(key)
            if blob is not None:
                self._mem.move_to_end(key)
            return blob

    def _mem_insert(self, key: str, blob: bytes, *, promotion: bool) -> None:
        if self.memory_entries <= 0:
            return
        mem = self._tiers["memory"]
        with self._mem_lock:
            self._mem[key] = blob
            self._mem.move_to_end(key)
            if promotion:
                mem.promotions += 1
            else:
                mem.stores += 1
            while len(self._mem) > self.memory_entries:
                self._mem.popitem(last=False)
                mem.evictions += 1

    # -- lookups --------------------------------------------------------------

    def get(self, key: str):
        """Tier-walking lookup; same contract as :meth:`ResultCache.get`."""
        mem, disk, remote = (
            self._tiers["memory"], self._tiers["disk"], self._tiers["remote"]
        )
        blob = self._mem_get(key)
        if blob is not None:
            mem.hits += 1
            self._hits += 1
            return pickle.loads(blob)
        if self.memory_entries > 0:
            mem.misses += 1

        path = self._path_for(key)
        if not path.is_file() and self._flat_path_for(key).is_file():
            path = self._flat_path_for(key)
        fault = poll_fault("cache.entry")
        if fault is not None and path.is_file():
            _damage_file(path, fault)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            value = self._decode_payload(payload, key, path)
        except FileNotFoundError:
            disk.misses += 1
        except Exception as err:
            disk.misses += 1
            self._corruptions += 1
            logger.warning("evicting corrupt cache entry %s: %s", path.name, err)
            try:
                path.unlink()
            except OSError:
                pass
        else:
            disk.hits += 1
            self._hits += 1
            self._mem_insert(key, payload["blob"], promotion=True)
            if path.name == f"{key}.pkl" and path.parent == self.directory:
                self._reshard(key, path)
            return value

        raw = self._remote_get(key)
        if raw is not None:
            try:
                payload = pickle.loads(raw)
                value = self._decode_payload(payload, key, Path(f"{key}.pkl"))
            except Exception as err:
                self._corruptions += 1
                self._remote_failed(key, err)
                logger.warning("damaged remote cache entry %s: %s", key, err)
            else:
                remote.hits += 1
                self._hits += 1
                self._write_raw(key, raw)
                disk.promotions += 1
                self._mem_insert(key, payload["blob"], promotion=True)
                return value
        elif self.remote is not None:
            remote.misses += 1

        self._misses += 1
        return self.MISS

    def put(self, key: str, value) -> None:
        """Write-through store: disk (atomic) + memory + remote."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": self.version,
            "key": key,
            "blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_raw(key, raw)
        self._tiers["disk"].stores += 1
        self._stores += 1
        self._mem_insert(key, blob, promotion=False)
        if self.remote is not None:
            self._remote_put(key, raw)

    def _write_raw(self, key: str, raw: bytes) -> None:
        """Atomically place outer payload bytes at the sharded path."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(raw)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- remote tier: brownout gate + write-behind queue ----------------------

    def remote_degraded(self) -> bool:
        """True while the remote tier is tripped to local-only mode."""
        with self._remote_lock:
            return self._remote_open

    def _remote_gate(self) -> bool:
        """May this operation attempt a remote round-trip right now?

        Untripped: always.  Tripped (brownout): every
        ``remote_probe_interval``-th gated call goes through as a
        recovery probe; the rest are skipped and counted.
        """
        remote = self._tiers["remote"]
        with self._remote_lock:
            if not self._remote_open:
                return True
            self._remote_skipped += 1
            if self._remote_skipped % self.remote_probe_interval == 0:
                remote.probes += 1
                return True
            remote.skips += 1
            return False

    def _remote_failed(self, key: str, err: Exception) -> None:
        """Count one remote error; trips to local-only at the threshold."""
        remote = self._tiers["remote"]
        remote.errors += 1
        with self._remote_lock:
            self._remote_consecutive += 1
            if (not self._remote_open
                    and self._remote_consecutive >= self.remote_trip_threshold):
                self._remote_open = True
                self._remote_skipped = 0
                remote.trips += 1
                logger.warning(
                    "remote cache tier tripped to local-only after %d "
                    "consecutive errors (last: %s: %s)",
                    self._remote_consecutive, key, err,
                )

    def _remote_recovered(self) -> None:
        """A remote round-trip succeeded: close the brownout, if open."""
        with self._remote_lock:
            self._remote_consecutive = 0
            if self._remote_open:
                self._remote_open = False
                self._remote_skipped = 0
                logger.info(
                    "remote cache tier recovered; resuming write-through")

    def _stash_pending(self, key: str, raw: bytes) -> None:
        with self._remote_lock:
            self._pending_remote[key] = raw
            self._pending_remote.move_to_end(key)
            while len(self._pending_remote) > self.pending_limit:
                dropped, _ = self._pending_remote.popitem(last=False)
                logger.warning(
                    "pending-remote queue full; dropping %s "
                    "(local tiers still hold it)", dropped,
                )

    def _remote_get(self, key: str) -> bytes | None:
        if self.remote is None or not self._remote_gate():
            return None
        fault = poll_fault("cache.remote")
        if fault is not None and fault.kind != "corrupt":
            self._remote_failed(
                key, FaultInjectionError("injected remote-tier fault"))
            return None
        try:
            raw = self.remote.get(key)
        except Exception as err:
            self._remote_failed(key, err)
            logger.warning("remote cache lookup failed for %s: %s", key, err)
            return None
        if fault is not None and raw:
            # "corrupt": the blob was truncated in flight; the caller's
            # checksum check catches it and counts the failure.
            return raw[: max(1, len(raw) // 2)]
        self._remote_recovered()
        return raw

    def _remote_put(self, key: str, raw: bytes) -> None:
        """Best-effort write-through; failures queue for later flush."""
        if not self._remote_gate():
            self._stash_pending(key, raw)
            return
        fault = poll_fault("cache.remote")
        if fault is not None:
            self._remote_failed(
                key, FaultInjectionError("injected remote-tier fault"))
            self._stash_pending(key, raw)
            return
        try:
            self.remote.put(key, raw)
        except Exception as err:
            self._remote_failed(key, err)
            self._stash_pending(key, raw)
            logger.warning("remote cache store failed for %s: %s", key, err)
            return
        self._tiers["remote"].stores += 1
        self._remote_recovered()
        self.flush_remote()

    def flush_remote(self, force: bool = False) -> int:
        """Drain the write-behind queue; returns the depth still pending.

        Called automatically when a remote round-trip succeeds after a
        brownout, and explicitly by the fabric worker before completing
        a chunk (a chunk is only *done* once its points are visible to
        every other worker).  ``force=True`` bypasses the probe gate so
        recovery is attempted immediately rather than on the next
        scheduled probe.
        """
        if self.remote is None:
            return 0
        while True:
            with self._remote_lock:
                if not self._pending_remote:
                    return 0
                key, raw = next(iter(self._pending_remote.items()))
            if not force and not self._remote_gate():
                break
            fault = poll_fault("cache.remote")
            if fault is not None:
                self._remote_failed(
                    key, FaultInjectionError("injected remote-tier fault"))
                break
            try:
                self.remote.put(key, raw)
            except Exception as err:
                self._remote_failed(key, err)
                logger.warning(
                    "remote cache flush failed for %s: %s", key, err)
                break
            self._tiers["remote"].stores += 1
            self._remote_recovered()
            with self._remote_lock:
                self._pending_remote.pop(key, None)
        with self._remote_lock:
            return len(self._pending_remote)

    def _reshard(self, key: str, flat_path: Path) -> None:
        """Migrate a legacy flat entry into its shard directory."""
        try:
            target = self.directory / key[: self.shard_width] / flat_path.name
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat_path, target)
        except OSError:
            pass

    # -- raw entry transport (server blob API) --------------------------------

    def export_entry(self, key: str) -> bytes | None:
        """Outer payload bytes for ``key``, or None (no counters touched)."""
        for path in (self._path_for(key), self._flat_path_for(key)):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                continue
        return None

    def import_entry(self, key: str, raw: bytes) -> bool:
        """Accept uploaded payload bytes after validating the checksum.

        Returns False (and stores nothing) when the bytes do not decode
        to an intact entry for exactly ``key`` — the gate that keeps a
        misbehaving worker from poisoning a shared store.
        """
        try:
            payload = pickle.loads(raw)
            blob = self._decode_payload(payload, key, Path(f"{key}.pkl"))
        except Exception as err:
            logger.warning("rejecting uploaded cache entry %s: %s", key, err)
            return False
        del blob
        self._write_raw(key, raw)
        self._tiers["disk"].stores += 1
        self._stores += 1
        return True

    # -- introspection --------------------------------------------------------

    def cache_info(self) -> TieredCacheInfo:
        """Aggregate + per-tier counters since this instance was created."""
        with self._remote_lock:
            pending = len(self._pending_remote)
        return TieredCacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corruptions=self._corruptions,
            tiers=tuple(
                self._tiers[name].info(
                    pending=pending if name == "remote" else 0)
                for name in ("memory", "disk", "remote")
            ),
        )

    def clear(self) -> int:
        with self._mem_lock:
            self._mem.clear()
        return super().clear()
