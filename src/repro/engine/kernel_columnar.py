"""Columnar (structure-of-arrays) batch engine for the fused kernel.

The PR-4 row-major batch (``run_program_batch`` in
:mod:`~repro.engine.kernel`) partitions *instances* across pthreads and
walks each instance's program independently — on narrow batches or
few-core boxes that leaves the vector units idle and loses to serial
fused runs.  This module turns the batch inside out:

* every per-instance block (params, state, mode coefficients, noise,
  actuator constants, outputs) is **transposed** to structure-of-arrays
  — one contiguous row per op-parameter / state-slot / sample, with the
  instance index as the fastest-moving, stride-1 axis;
* the C entry point (``run_columnar``) loops **samples outer,
  instances inner**: each :class:`~repro.engine.kernel.KernelOp`
  becomes one fixed-body ``for (k)`` sweep over the instance axis that
  the compiler auto-vectorizes (``-O3``, IEEE-strict: no fast-math,
  ``-ffp-contract=off`` so no FMA contraction; ``tanh`` stays the
  scalar libm call);
* heterogeneous durations are handled by sorting instances by
  descending sample count — the *active prefix* shrinks as samples pass
  each instance's end, so every inner sweep stays contiguous;
* a **profile-guided fusion pass** (:func:`build_plan`) rewrites the
  op list into plan segments once a program shape is hot
  (``kernel_info().op_samples`` / the per-shape profile): consecutive
  SOS biquads fuse into a single-pass two-section sweep (bit-preserving
  — the per-sample arithmetic order is unchanged), and, opt-in via
  ``REPRO_COLUMNAR_FUSION=affine``, runs of GAIN/BIAS ops fold into one
  ``v = a*v + b`` sweep (re-associates rounding — tolerance-relaxing).
  Decisions are recorded in ``kernel_info().fusion_decisions``;
* without a C compiler the same SoA program runs through a vectorized
  **NumPy twin** (:func:`run_columnar_numpy`) — identical semantics, no
  build step, used when the columnar engine is explicitly requested on
  a compiler-less box.

Contract: columnar results agree with solo fused runs **within
tolerance** (``np.allclose`` with the pinned ``RTOL``/``ATOL_SCALE``
below; max-ulp distance reported by :func:`max_ulp_distance`), not
bit-for-bit — in practice the C engine preserves the exact per-sample
operation order and lands bit-identical on this machine, but SIMD
codegen freedom is part of the engine's contract, so its golden suite
(``tests/engine/test_kernel_columnar.py``) pins tolerances instead.
The existing fused/numba/interp backends and the row batch keep the
bit-identity contract untouched.
"""

from __future__ import annotations

import ctypes
import logging
import os
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import KernelError
from .resilience import poll_fault
from .timing import StageTimer
from . import kernel as _k
from .kernel import (
    _N_PARAMS,
    OP_BIAS,
    OP_CLIP,
    OP_DEADZONE,
    OP_DIFF,
    OP_GAIN,
    OP_LATCH,
    OP_RC,
    OP_SLEW,
    OP_SOS,
    OP_TANH,
    OP_TAP_LIMIN,
    OP_TAP_LIMOUT,
    KernelRunInfo,
    KernelRunResult,
    record_batch,
    record_fusion_decision,
    record_op_profile,
    record_run,
)

logger = logging.getLogger(__name__)

__all__ = [
    "ATOL_SCALE",
    "COLUMNAR_FLAGS",
    "FUSION_DEFAULT_THRESHOLD",
    "FUSION_ENV",
    "FUSION_THRESHOLD_ENV",
    "MALLOC_ENV",
    "RTOL",
    "ColumnarPlan",
    "build_plan",
    "columnar_interpreter",
    "fusion_mode",
    "max_ulp_distance",
    "run_columnar_cc",
    "run_columnar_numpy",
    "specialized_interpreter",
]

# -- tolerance contract ------------------------------------------------------------
#
# The columnar golden suite asserts, per waveform column::
#
#     np.allclose(ref, col, rtol=RTOL, atol=ATOL_SCALE * max(1e-300, |ref|.max()))
#
# i.e. a relative tolerance plus an absolute floor scaled to the
# column's own peak (waveform units span volts to nanometres, so a
# fixed atol would be meaningless).  max_ulp_distance() is reported
# alongside for forensics.  BENCH_sweep.json records the same flags.

RTOL = 1e-9
ATOL_SCALE = 1e-12

# -- fusion pass knobs -------------------------------------------------------------

#: ``off`` disables the fusion pass; ``safe`` (default) applies only
#: bit-preserving rewrites (fused SOS pairs); ``affine`` additionally
#: folds GAIN/BIAS runs into one a*v+b sweep (re-associated rounding —
#: within-tolerance, never default).
FUSION_ENV = "REPRO_COLUMNAR_FUSION"
#: A program shape must have executed this many instance-samples before
#: the fusion pass rewrites it (profile-guided: cold shapes run the
#: plain per-op plan).  Override with REPRO_COLUMNAR_FUSION_THRESHOLD.
FUSION_DEFAULT_THRESHOLD = 100_000
FUSION_THRESHOLD_ENV = "REPRO_COLUMNAR_FUSION_THRESHOLD"

# plan-segment opcodes (the C plan interpreter's instruction set)
PK_OP = 0       # one KernelOp, dispatched by kinds[pa]
PK_SOS2 = 1     # ops pa, pa+1: two SOS sections in one pass (bit-safe)
PK_AFFINE = 2   # folded GAIN/BIAS run: v = aff_a[pa]*v + aff_b[pa]

# -- allocation reuse --------------------------------------------------------------
#
# The engine's scratch matrices (the instance-major noise block, the
# five sample-major waveform scratch matrices, the tile-transposed
# noise) total ~15 MB at a 16x19k batch and never escape a run.
# Allocating them fresh each run means glibc hands back newly-mmapped
# pages and the kernel zero-fills them fault by fault *inside the
# timed C call* — measured ~3 ms per run at that shape, comparable to
# the arithmetic itself.  They are pooled per-thread instead (thread-
# local: concurrent KernelBatch runs from the service layer must not
# share scratch).  The waveform *row* matrices DO escape — each
# KernelRunResult is a zero-copy view — so they stay freshly
# allocated; _tune_malloc() instead asks glibc to recycle their pages
# across result generations rather than returning them to the kernel
# (raises M_MMAP_THRESHOLD / M_TRIM_THRESHOLD once per process).
# REPRO_COLUMNAR_MALLOC=0 opts out of the malloc tuning; the scratch
# pool is unconditional.

MALLOC_ENV = "REPRO_COLUMNAR_MALLOC"
_M_TRIM_THRESHOLD = -1   # glibc mallopt() parameter ids
_M_MMAP_THRESHOLD = -3
_MMAP_THRESHOLD_BYTES = 64 << 20
_TRIM_THRESHOLD_BYTES = 128 << 20
_MALLOC_TUNED = False
_SCRATCH_TLS = threading.local()


def _scratch(name: str, shape: tuple) -> np.ndarray:
    """A pooled float64 scratch array (per-thread, latest shape kept).

    Contents are unspecified on return, like :func:`np.empty` — every
    caller fully overwrites the region it reads back.
    """
    pool = getattr(_SCRATCH_TLS, "pool", None)
    if pool is None:
        pool = _SCRATCH_TLS.pool = {}
    buf = pool.get(name)
    if buf is None or buf.shape != shape:
        buf = pool[name] = np.empty(shape)
    return buf


def _aligned_rows(n_rows: int, stride: int) -> np.ndarray:
    """An ``(n_rows, stride)`` float64 matrix whose data pointer is
    64-byte aligned.  With ``stride`` a multiple of 8 doubles this puts
    every 8-sample window of every row on one whole cacheline — the
    property that lets the specialized kernel flush output rows with
    non-temporal stores.  These escape into run results (zero-copy row
    views), so they are freshly allocated, never pooled."""
    raw = np.empty(n_rows * stride + 8)
    off = (-raw.ctypes.data % 64) // 8
    return raw[off:off + n_rows * stride].reshape(n_rows, stride)


def _tune_malloc() -> None:
    """One-shot glibc allocator tuning (no-op off glibc / when opted out)."""
    global _MALLOC_TUNED
    if _MALLOC_TUNED:
        return
    _MALLOC_TUNED = True
    if os.environ.get(MALLOC_ENV, "").strip().lower() in ("0", "off", "no", "false"):
        return
    try:
        mallopt = ctypes.CDLL(None, use_errno=True).mallopt
    except (OSError, AttributeError):
        return
    mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
    mallopt.restype = ctypes.c_int
    mallopt(_M_MMAP_THRESHOLD, _MMAP_THRESHOLD_BYTES)
    mallopt(_M_TRIM_THRESHOLD, _TRIM_THRESHOLD_BYTES)


def fusion_mode() -> str:
    """The active fusion mode: ``off``, ``safe``, or ``affine``."""
    env = os.environ.get(FUSION_ENV, "").strip().lower()
    if env in ("off", "none", "0"):
        return "off"
    if env in ("affine", "aggressive"):
        return "affine"
    return "safe"


def _fusion_threshold() -> int:
    env = os.environ.get(FUSION_THRESHOLD_ENV, "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", FUSION_THRESHOLD_ENV, env
            )
    return FUSION_DEFAULT_THRESHOLD


def max_ulp_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Largest ULP distance between two float64 arrays (0 = identical).

    Monotonic integer reinterpretation of IEEE doubles; NaNs in
    matching positions count as 0, mismatched NaNs as a huge distance.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    ia = a.view(np.int64).copy()
    ib = b.view(np.int64).copy()
    # map negative floats to a monotonic integer line
    ia[ia < 0] = np.int64(-(2**63) + 1) - ia[ia < 0]
    ib[ib < 0] = np.int64(-(2**63) + 1) - ib[ib < 0]
    nan_a = np.isnan(a)
    nan_b = np.isnan(b)
    if np.any(nan_a != nan_b):
        return 2**62
    diff = np.abs(ia - ib)
    diff[nan_a & nan_b] = 0
    return int(diff.max()) if diff.size else 0


# -- the fusion pass (plan builder) ------------------------------------------------


@dataclass(frozen=True)
class ColumnarPlan:
    """One program shape rewritten as columnar plan segments.

    ``pk``/``pa`` drive the C plan interpreter; ``aff_a``/``aff_b`` are
    the folded affine coefficient rows (``(n_aff or 1, n_inst)``);
    ``segments`` is the human-readable rewrite, and ``fused`` is True
    when any multi-op segment was emitted.
    """

    pk: np.ndarray
    pa: np.ndarray
    aff_a: np.ndarray
    aff_b: np.ndarray
    segments: tuple
    mode: str
    hot: bool

    @property
    def fused(self) -> bool:
        return any(kind != "op" for kind, _, _ in self.segments)


#: Memoized segment rewrites keyed by (signature, mode, hot) — the
#: decision is recorded in kernel_info() once per distinct key.
_SEGMENT_CACHE: dict[tuple, tuple] = {}


def _plan_segments(kinds: Sequence[int], mode: str, apply: bool) -> tuple:
    segments: list[tuple] = []
    n = len(kinds)
    j = 0
    while j < n:
        if apply and kinds[j] == OP_SOS and j + 1 < n and kinds[j + 1] == OP_SOS:
            segments.append(("sos2", j, 2))
            j += 2
            continue
        if apply and mode == "affine" and kinds[j] in (OP_GAIN, OP_BIAS):
            j2 = j
            while j2 < n and kinds[j2] in (OP_GAIN, OP_BIAS):
                j2 += 1
            if j2 - j >= 2:
                segments.append(("affine", j, j2 - j))
                j = j2
                continue
        segments.append(("op", j, 1))
        j += 1
    return tuple(segments)


def build_plan(
    signature: tuple,
    kinds: Sequence[int],
    p_cols: Sequence[np.ndarray],
    n_inst: int,
) -> ColumnarPlan:
    """The fusion-pass rewrite of one program shape for one batch.

    Segment structure is profile-guided and memoized per
    ``(signature, mode, hot)``; the affine coefficient rows are folded
    from this batch's (already instance-sorted) parameter columns.
    """
    mode = fusion_mode()
    profile = _k._PROGRAM_PROFILE.get(signature, 0)
    hot = profile >= _fusion_threshold()
    apply = mode != "off" and hot
    key = (signature, mode, hot)
    segments = _SEGMENT_CACHE.get(key)
    if segments is None:
        segments = _plan_segments(kinds, mode, apply)
        _SEGMENT_CACHE[key] = segments
        record_fusion_decision({
            "engine": "columnar",
            "n_ops": len(kinds),
            "mode": mode,
            "hot": hot,
            "profile_samples": int(profile),
            "fused_segments": [
                [kind, int(j), int(ln)]
                for kind, j, ln in segments if kind != "op"
            ],
        })

    pk = np.empty(len(segments), dtype=np.int64)
    pa = np.empty(len(segments), dtype=np.int64)
    aff_rows_a: list[np.ndarray] = []
    aff_rows_b: list[np.ndarray] = []
    for s, (kind, j, ln) in enumerate(segments):
        if kind == "op":
            pk[s] = PK_OP
            pa[s] = j
        elif kind == "sos2":
            pk[s] = PK_SOS2
            pa[s] = j
        else:  # affine: fold the GAIN/BIAS run into per-instance (a, b)
            a = np.ones(n_inst)
            b = np.zeros(n_inst)
            for jj in range(j, j + ln):
                if kinds[jj] == OP_GAIN:
                    g = p_cols[0][jj]
                    a = a * g
                    b = b * g
                else:  # OP_BIAS
                    b = b + p_cols[0][jj]
            pk[s] = PK_AFFINE
            pa[s] = len(aff_rows_a)
            aff_rows_a.append(a)
            aff_rows_b.append(b)
    if aff_rows_a:
        aff_a = np.ascontiguousarray(np.vstack(aff_rows_a))
        aff_b = np.ascontiguousarray(np.vstack(aff_rows_b))
    else:  # never indexed; 1 dummy row keeps the ctypes signature happy
        aff_a = np.zeros((1, max(1, n_inst)))
        aff_b = np.zeros((1, max(1, n_inst)))
    return ColumnarPlan(
        pk=pk, pa=pa, aff_a=aff_a, aff_b=aff_b,
        segments=segments, mode=mode, hot=hot,
    )


# -- SoA block assembly ------------------------------------------------------------


@dataclass
class _Blocks:
    """One batch transposed to structure-of-arrays (instance-sorted)."""

    order: np.ndarray        # column -> original instance index
    ns_sorted: np.ndarray    # per-column sample counts, non-increasing
    n_inst: int
    n_max: int
    n_ops: int
    n_modes: int
    n_state: int
    kinds: np.ndarray
    sidx: np.ndarray
    p_cols: tuple            # 5 x (n_ops, n_inst)
    state: np.ndarray        # (n_state, n_inst)
    mode_coef: np.ndarray    # (7*n_modes, n_inst)
    mode_state: np.ndarray   # (2*n_modes, n_inst)
    noise: np.ndarray        # (n_inst, n_max), instance-major
    act: np.ndarray          # (3, n_inst): r, imax, force-per-ampere
    has_taps: bool


def _assemble(batch) -> _Blocks:
    _tune_malloc()
    kernels = batch.kernels
    n_inst = batch.n_instances
    ns = np.asarray(batch.ns, dtype=np.int64)
    order = np.argsort(-ns, kind="stable")
    ns_sorted = ns[order]
    n_max = int(ns_sorted[0])
    rep = kernels[0]
    n_ops, n_modes, n_state = rep.n_ops, len(rep.modes), rep.n_state

    params = np.asarray(
        [kernels[i]._params for i in order], dtype=float
    ).reshape(n_inst, n_ops, _N_PARAMS)
    p_cols = tuple(
        np.ascontiguousarray(params[:, :, j].T) for j in range(_N_PARAMS)
    )
    state = np.ascontiguousarray(np.asarray(
        [kernels[i]._state0 for i in order], dtype=float
    ).reshape(n_inst, n_state).T)
    mode_coef = np.ascontiguousarray(np.asarray(
        [[c for m in kernels[i].modes
          for c in (m.a11, m.a12, m.a21, m.a22, m.b1, m.b2, m.coef)]
         for i in order], dtype=float,
    ).reshape(n_inst, 7 * n_modes).T)
    mode_state = np.ascontiguousarray(np.asarray(
        [[c for m in kernels[i].modes for c in (m.x0, m.v0)]
         for i in order], dtype=float,
    ).reshape(n_inst, 2 * n_modes).T)
    # noise stays instance-major (contiguous row copies); the C workers
    # tile-transpose their own block to sample-major (col_noise_sm)
    noise = _scratch("noise", (n_inst, n_max))
    for col, i in enumerate(order):
        n_i = int(ns[i])
        noise[col, :n_i] = batch.noises[i][:n_i]
        noise[col, n_i:] = 0.0
    act = np.ascontiguousarray(np.asarray(
        [[kernels[i].act_r, kernels[i].act_imax, kernels[i].act_fpc]
         for i in order], dtype=float,
    ).T)
    return _Blocks(
        order=order, ns_sorted=ns_sorted,
        n_inst=n_inst, n_max=n_max,
        n_ops=n_ops, n_modes=n_modes, n_state=n_state,
        kinds=np.ascontiguousarray(rep._kinds, dtype=np.int64),
        sidx=np.ascontiguousarray(rep._sidx, dtype=np.int64),
        p_cols=p_cols, state=state,
        mode_coef=mode_coef, mode_state=mode_state,
        noise=noise, act=act, has_taps=rep.has_taps,
    )


def _package(
    batch, blocks: _Blocks, rows: Sequence[np.ndarray],
    engine: str, threads_used: int, timer: StageTimer,
) -> list:
    """Un-permute, slice, and sync the columnar outputs back to
    per-instance :class:`~repro.engine.kernel.KernelRunResult`\\ s.

    ``rows`` are the instance-major ``(n_inst, n_max)`` waveform
    matrices (transposed in C by ``col_emit_rows``; the NumPy twin
    transposes on the way in) — each instance's record is a zero-copy
    contiguous row slice.
    """
    disp_r, bridge_r, limin_r, limout_r, drive_r = rows
    col_of = np.empty(blocks.n_inst, dtype=np.int64)
    col_of[blocks.order] = np.arange(blocks.n_inst)
    run_seconds = timer.seconds("run")
    compile_seconds = timer.seconds("compile")
    total = int(np.sum(blocks.ns_sorted))
    record_op_profile(batch.kernels[0]._kinds, total)
    _k._note_program_samples(batch.signature, total)
    results = []
    for i, kernel in enumerate(batch.kernels):
        col = int(col_of[i])
        n_i = batch.ns[i]
        kernel._sync_stages([float(s) for s in blocks.state[:, col]])
        if blocks.has_taps:
            limin = limin_r[col, :n_i]
            limout = limout_r[col, :n_i]
            drive = drive_r[col, :n_i]
        else:
            limin = limout = drive = np.zeros(n_i)
        info = KernelRunInfo(
            backend="fused",
            engine=engine,
            n_samples=n_i,
            n_ops=blocks.n_ops,
            n_state=blocks.n_state,
            lower_seconds=0.0,
            compile_seconds=compile_seconds if i == 0 else 0.0,
            run_seconds=run_seconds if i == 0 else 0.0,
        )
        record_run("fused", n_i, 0.0, 0.0)
        results.append(KernelRunResult(
            displacement=disp_r[col, :n_i],
            bridge_voltage=bridge_r[col, :n_i],
            limiter_input=limin,
            limiter_output=limout,
            drive_voltage=drive,
            mode_state=[float(s) for s in blocks.mode_state[:, col]],
            info=info,
        ))
    record_batch(
        batch.n_instances, threads_used, total, run_seconds,
        engine="columnar" if engine.startswith("cc-columnar") else "columnar-np",
    )
    return results


# -- the compiled columnar engine --------------------------------------------------
#
# One generic plan interpreter compiled once per machine: the per-op
# switch costs one branch per op per *sample*, amortized over the whole
# instance axis, and every case body is a fixed-trip-count-free loop
# over contiguous doubles that the compiler's auto-vectorizer turns
# into SIMD sweeps.  IEEE-strict: -O3 but no fast-math, FMA contraction
# off, tanh left as the scalar libm call — per-lane arithmetic is the
# exact solo-interpreter sequence.

COLUMNAR_FLAGS = [
    "-O3", "-fPIC", "-shared", "-ffp-contract=off",
    "-fno-math-errno", "-pthread",
]

#: Tried first on every columnar build, dropped if the compiler rejects
#: it.  The ``.so`` cache is per-machine, so ISA tuning is safe — and
#: it does not change the arithmetic: ``-ffp-contract=off`` keeps FMA
#: contraction off at any vector width, so the segment sweeps produce
#: bit-identical results (measured ~25% faster on an AVX2 box).  The
#: 4-lane libmvec ``tanh`` it unlocks (``_ZGVdN4v_tanh``) drifts a few
#: ULP from the 2-lane/scalar call — inside the tolerance contract,
#: like the vector-tanh path itself.
NATIVE_FLAG = "-march=native"

_C_HEADER = """
#include <math.h>
#include <pthread.h>
"""

_C_STRUCT = """
/* Structure-of-arrays layout: every 2-d block is row-major with the
 * instance index k as the last, stride-1 axis.  ns is sorted
 * non-increasing, so the set of still-running instances is always a
 * prefix [lo, hi) that shrinks as the sample index passes each
 * instance's end.  Threads own contiguous instance sub-ranges. */

typedef struct {
    long lo, hi;                 /* this worker's instance block */
    long n_inst, n_modes, n_plan, n_max, row_stride, has_taps;
    const long *ns;
    const long *kinds, *sidx;
    const long *pk, *pa;
    const double *p0, *p1, *p2, *p3, *p4;
    const double *aff_a, *aff_b;
    double *state;
    const double *mode_coef;
    double *mode_state;
    const double *noise, *act;
    double *vbuf, *noise_sm;
    double *out_disp, *out_bridge;
    double *out_limin, *out_limout, *out_drive;
    double *row_disp, *row_bridge;
    double *row_limin, *row_limout, *row_drive;
} col_args;

/* Tiled column->row transpose of one worker's instance block: src is
 * sample-major (n_max x ni), dst instance-major with row stride rs
 * (>= n_max; rows are line-padded).  ns is sorted non-increasing, so
 * row k only holds ns[k] samples.  Done in C (and inside the worker
 * threads) because the Python-side strided gather was the single
 * largest cost of the columnar round trip. */
static void col_transpose(long lo, long hi, long ni, long rs,
    const long *ns, const double *src, double *dst)
{
    for (long k0 = lo; k0 < hi; k0 += 16) {
        long k1 = k0 + 16 < hi ? k0 + 16 : hi;
        long mx = ns[k0];                /* block max (sorted desc) */
        for (long i0 = 0; i0 < mx; i0 += 128) {
            for (long k = k0; k < k1; k++) {
                long lim = ns[k] < i0 + 128 ? ns[k] : i0 + 128;
                for (long i = i0; i < lim; i++)
                    dst[k*rs + i] = src[i*ni + k];
            }
        }
    }
}

/* Noise arrives instance-major (ni x n_max) straight from the batch —
 * the sample-major copy the sweeps consume is made here, per worker,
 * with the same tiling (a Python-side transpose measured ~5x the
 * cost of this pass). */
static void col_noise_sm(col_args *a)
{
    const long ni = a->n_inst, n_max = a->n_max;
    const long *ns = a->ns;
    const double *src = a->noise;
    double *dst = a->noise_sm;
    for (long k0 = a->lo; k0 < a->hi; k0 += 16) {
        long k1 = k0 + 16 < a->hi ? k0 + 16 : a->hi;
        long mx = ns[k0];                /* block max (sorted desc) */
        for (long i0 = 0; i0 < mx; i0 += 128) {
            for (long k = k0; k < k1; k++) {
                long lim = ns[k] < i0 + 128 ? ns[k] : i0 + 128;
                for (long i = i0; i < lim; i++)
                    dst[i*ni + k] = src[k*n_max + i];
            }
        }
    }
}

static void col_emit_rows(col_args *a)
{
    const long ni = a->n_inst, rs = a->row_stride;
    col_transpose(a->lo, a->hi, ni, rs, a->ns,
                  a->out_disp, a->row_disp);
    col_transpose(a->lo, a->hi, ni, rs, a->ns,
                  a->out_bridge, a->row_bridge);
    if (a->has_taps) {
        col_transpose(a->lo, a->hi, ni, rs, a->ns,
                      a->out_limin, a->row_limin);
        col_transpose(a->lo, a->hi, ni, rs, a->ns,
                      a->out_limout, a->row_limout);
        col_transpose(a->lo, a->hi, ni, rs, a->ns,
                      a->out_drive, a->row_drive);
    }
}
"""

_C_WORKER = """
static void *col_worker(void *argp)
{
    col_args *a = (col_args *)argp;
    const long ni = a->n_inst;
    const long lo = a->lo;
    long hi = a->hi;
    const long n_i = a->ns[lo];          /* block max (sorted desc) */
    double *restrict v = a->vbuf;
    const double *restrict ar = a->act;          /* coil resistance  */
    const double *restrict ai = a->act + ni;     /* current limit    */
    const double *restrict af = a->act + 2*ni;   /* force per ampere */
    col_noise_sm(a);

    for (long i = 0; i < n_i; i++) {
        while (hi > lo && a->ns[hi - 1] <= i) hi--;   /* active prefix */

        /* bridge voltage: coefficient-weighted mode sum + noise */
        {
            const double *restrict mc6 = a->mode_coef + 6*ni;
            const double *restrict ms0 = a->mode_state;
            const double *restrict nz = a->noise_sm + i*ni;
            double *restrict ob = a->out_bridge + i*ni;
            if (a->n_modes == 1) {
                for (long k = lo; k < hi; k++)
                    v[k] = mc6[k]*ms0[k] + nz[k];
            } else {
                for (long k = lo; k < hi; k++)
                    v[k] = mc6[k]*ms0[k];
                for (long m = 1; m < a->n_modes; m++) {
                    const double *restrict cm = a->mode_coef + (7*m + 6)*ni;
                    const double *restrict sm = a->mode_state + (2*m)*ni;
                    for (long k = lo; k < hi; k++)
                        v[k] = v[k] + cm[k]*sm[k];
                }
                for (long k = lo; k < hi; k++)
                    v[k] = v[k] + nz[k];
            }
            for (long k = lo; k < hi; k++) ob[k] = v[k];
        }

        /* plan segments: one contiguous instance sweep per op */
        for (long s = 0; s < a->n_plan; s++) {
            const long j = a->pa[s];
            if (a->pk[s] == 1) {            /* PK_SOS2: fused biquads */
                const double *restrict a0 = a->p0 + j*ni;
                const double *restrict a1 = a->p1 + j*ni;
                const double *restrict a2 = a->p2 + j*ni;
                const double *restrict a3 = a->p3 + j*ni;
                const double *restrict a4 = a->p4 + j*ni;
                const double *restrict b0 = a->p0 + (j+1)*ni;
                const double *restrict b1 = a->p1 + (j+1)*ni;
                const double *restrict b2 = a->p2 + (j+1)*ni;
                const double *restrict b3 = a->p3 + (j+1)*ni;
                const double *restrict b4 = a->p4 + (j+1)*ni;
                double *restrict sa1 = a->state + a->sidx[j]*ni;
                double *restrict sa2 = sa1 + ni;
                double *restrict sb1 = a->state + a->sidx[j+1]*ni;
                double *restrict sb2 = sb1 + ni;
                for (long k = lo; k < hi; k++) {
                    double x = v[k];
                    double y = a0[k]*x + sa1[k];
                    sa1[k] = a1[k]*x - a3[k]*y + sa2[k];
                    sa2[k] = a2[k]*x - a4[k]*y;
                    double z = b0[k]*y + sb1[k];
                    sb1[k] = b1[k]*y - b3[k]*z + sb2[k];
                    sb2[k] = b2[k]*y - b4[k]*z;
                    v[k] = z;
                }
                continue;
            }
            if (a->pk[s] == 2) {            /* PK_AFFINE: folded run */
                const double *restrict fa = a->aff_a + j*ni;
                const double *restrict fb = a->aff_b + j*ni;
                for (long k = lo; k < hi; k++)
                    v[k] = fa[k]*v[k] + fb[k];
                continue;
            }
            /* PK_OP: one primitive, dispatched once per sweep */
            const long kind = a->kinds[j];
            const double *restrict q0 = a->p0 + j*ni;
            const double *restrict q1 = a->p1 + j*ni;
            const double *restrict q2 = a->p2 + j*ni;
            const double *restrict q3 = a->p3 + j*ni;
            const double *restrict q4 = a->p4 + j*ni;
            double *restrict st = a->state + a->sidx[j]*ni;
            switch (kind) {
            case 2: {                       /* OP_SOS */
                double *restrict s2 = st + ni;
                for (long k = lo; k < hi; k++) {
                    double y = q0[k]*v[k] + st[k];
                    st[k] = q1[k]*v[k] - q3[k]*y + s2[k];
                    s2[k] = q2[k]*v[k] - q4[k]*y;
                    v[k] = y;
                }
                break; }
            case 1:                         /* OP_GAIN */
                for (long k = lo; k < hi; k++) v[k] = v[k]*q0[k];
                break;
            case 0:                         /* OP_BIAS */
                for (long k = lo; k < hi; k++) v[k] = v[k] + q0[k];
                break;
            case 3:                         /* OP_RC */
                for (long k = lo; k < hi; k++) {
                    st[k] = st[k] + q0[k]*(v[k] - st[k]);
                    v[k] = st[k];
                }
                break;
            case 4:                         /* OP_CLIP */
                for (long k = lo; k < hi; k++) {
                    if (v[k] < q0[k]) v[k] = q0[k];
                    else if (v[k] > q1[k]) v[k] = q1[k];
                }
                break;
            case 5:                         /* OP_TANH (scalar libm) */
                for (long k = lo; k < hi; k++)
                    v[k] = q1[k]*tanh(q0[k]*v[k]/q1[k]);
                break;
            case 6:                         /* OP_DIFF */
                for (long k = lo; k < hi; k++) {
                    double y = (v[k] - st[k])*q0[k];
                    st[k] = v[k];
                    v[k] = y;
                }
                break;
            case 7:                         /* OP_DEADZONE */
                for (long k = lo; k < hi; k++) {
                    if (v[k] <= q0[k] && v[k] >= q1[k]) v[k] = 0.0;
                    else if (v[k] > 0.0) v[k] = v[k] - q0[k];
                    else v[k] = v[k] - q1[k];
                }
                break;
            case 8:                         /* OP_SLEW */
                for (long k = lo; k < hi; k++) {
                    double y = v[k] - st[k];
                    if (y > q0[k]) v[k] = st[k] + q0[k];
                    else if (y < q1[k]) v[k] = st[k] + q1[k];
                    st[k] = v[k];
                }
                break;
            case 9:                         /* OP_LATCH */
                for (long k = lo; k < hi; k++) st[k] = v[k];
                break;
            case 10: {                      /* OP_TAP_LIMIN */
                double *restrict o = a->out_limin + i*ni;
                for (long k = lo; k < hi; k++) o[k] = v[k];
                break; }
            case 11: {                      /* OP_TAP_LIMOUT */
                double *restrict o = a->out_limout + i*ni;
                for (long k = lo; k < hi; k++) o[k] = v[k];
                break; }
            default: {                      /* OP_TAP_DRIVE */
                double *restrict o = a->out_drive + i*ni;
                for (long k = lo; k < hi; k++) o[k] = v[k];
                break; }
            }
        }

        /* actuator: current limit then force per ampere (v becomes f) */
        for (long k = lo; k < hi; k++) {
            double cur = v[k]/ar[k];
            if (cur > ai[k]) cur = ai[k];
            else if (cur < -ai[k]) cur = -ai[k];
            v[k] = af[k]*cur;
        }

        /* exact-ZOH mode propagation */
        for (long m = 0; m < a->n_modes; m++) {
            const double *restrict c0 = a->mode_coef + (7*m)*ni;
            const double *restrict c1 = a->mode_coef + (7*m + 1)*ni;
            const double *restrict c2 = a->mode_coef + (7*m + 2)*ni;
            const double *restrict c3 = a->mode_coef + (7*m + 3)*ni;
            const double *restrict c4 = a->mode_coef + (7*m + 4)*ni;
            const double *restrict c5 = a->mode_coef + (7*m + 5)*ni;
            double *restrict mx = a->mode_state + (2*m)*ni;
            double *restrict mv = a->mode_state + (2*m + 1)*ni;
            for (long k = lo; k < hi; k++) {
                double x0 = mx[k];
                double v0 = mv[k];
                double f = v[k];
                mx[k] = c0[k]*x0 + c1[k]*v0 + c4[k]*f;
                mv[k] = c2[k]*x0 + c3[k]*v0 + c5[k]*f;
            }
        }
        {
            double *restrict od = a->out_disp + i*ni;
            const double *restrict ms0 = a->mode_state;
            for (long k = lo; k < hi; k++) od[k] = ms0[k];
        }
    }
    col_emit_rows(a);
    return 0;
}
"""

_C_ENTRY = """
void run_columnar(
    long n_inst, long n_threads, long n_modes, long n_plan,
    long n_max, long row_stride, long has_taps,
    const long *ns, const long *kinds, const long *sidx,
    const long *pk, const long *pa,
    const double *p0, const double *p1, const double *p2,
    const double *p3, const double *p4,
    const double *aff_a, const double *aff_b,
    double *state, const double *mode_coef, double *mode_state,
    const double *noise, const double *act, double *vbuf,
    double *noise_sm,
    double *out_disp, double *out_bridge,
    double *out_limin, double *out_limout, double *out_drive,
    double *row_disp, double *row_bridge,
    double *row_limin, double *row_limout, double *row_drive)
{
    if (n_threads > n_inst) n_threads = n_inst;
    if (n_threads > 64) n_threads = 64;
    if (n_threads < 1) n_threads = 1;
    col_args args[64];
    pthread_t tids[64];
    long chunk = (n_inst + n_threads - 1) / n_threads;
    long nt = 0;
    for (long t = 0; t < n_threads; t++) {
        long lo = t * chunk;
        long hi = lo + chunk < n_inst ? lo + chunk : n_inst;
        if (lo >= hi) break;
        col_args a = { lo, hi, n_inst, n_modes, n_plan, n_max, row_stride,
            has_taps,
            ns, kinds, sidx, pk, pa, p0, p1, p2, p3, p4, aff_a, aff_b,
            state, mode_coef, mode_state, noise, act, vbuf, noise_sm,
            out_disp, out_bridge, out_limin, out_limout, out_drive,
            row_disp, row_bridge, row_limin, row_limout, row_drive };
        args[nt++] = a;
    }
    long launched = 0;
    for (long t = 1; t < nt; t++) {
        if (pthread_create(&tids[launched], 0, col_worker, &args[t]) != 0)
            col_worker(&args[t]);       /* spawn failed: run inline */
        else
            launched++;
    }
    col_worker(&args[0]);
    for (long t = 0; t < launched; t++)
        pthread_join(tids[t], 0);
}
"""

_C_SOURCE = _C_HEADER + _C_STRUCT + _C_WORKER + _C_ENTRY


# -- profile-guided specialized megakernels ----------------------------------------
#
# Once a program shape is hot, the plan interpreter's per-sweep dispatch
# (one function-call's worth of loop setup per op per sample) dominates:
# the generic engine is memory/dispatch bound, not arithmetic bound.
# The fusion pass then *generates* a shape-specialized kernel where the
# whole op chain runs as one single-pass vector loop over the instance
# axis, split only at OP_TANH (the lone transcendental).  Each segment
# is a noinline function taking every row as its own ``restrict``
# parameter — that is what lets GCC vectorize without runtime alias
# versioning (derived pointers off one base defeat its alias budget).
# The tanh segment uses glibc's libmvec SIMD ``tanh`` when available
# (``_ZGVdN4v_tanh`` on AVX2 builds, else ``_ZGVbN2v_tanh`` — a few
# ULP from scalar libm, inside the columnar tolerance contract);
# everything else keeps the exact per-sample
# arithmetic order of the solo interpreter, with clamps rewritten as
# NaN-equivalent ternaries so the bodies stay branch-free.
#
# Memory traffic is the specialized path's budget, so it diverges from
# the generic interpreter in one bit-preserving way: it reads the batch
# noise directly from the instance-major block (``nzi[k*nm + i]`` — a
# strided load the transpose pass was paying anyway, L1-resident since
# each line covers 8 consecutive samples) instead of materializing the
# sample-major ``noise_sm`` copy, skipping a full write+read-back pass
# over the batch (~5 MB per 16x19k batch).  Output waveforms go through
# an 8-sample staging window per instance (``stg[k*8 + it]`` in the
# sample-major scratch — same ~5 KB L1 footprint as keeping one open
# row cacheline per instance) that is flushed to the row matrices once
# per tile with non-temporal stores.  The rows are freshly allocated
# every run (they escape as zero-copy result views), so every row line
# is cold: a cached store would pay read-for-ownership on all of them
# (~8.8 MB of reads per 16x19k batch that serve no purpose), while
# streaming stores retire straight to memory.  This only works because
# the rows are 64-byte aligned with a stride padded to a multiple of 8
# doubles — every full window is exactly one whole cacheline.  (An
# earlier 32-sample tile flushed into *unpadded* rows measured slower
# than row-direct stores: the tile blew the L1 working set and odd
# ``n_max`` kept windows off line boundaries, degrading the streaming
# stores to partial write-combining flushes.)

_SPEC_HEADER = """
#include <math.h>
#include <pthread.h>

#define NI __attribute__((noinline))

/* Flush one instance's 8-sample staging window to its padded row.
 * Rows are 64-byte aligned with a stride that is a multiple of 8
 * doubles, so every full window lands on one whole cacheline and can
 * be streamed non-temporally — the stores retire without the
 * read-for-ownership a cached store to a never-re-read line pays.
 * Partial windows (batch tails) fall back to plain stores. */
#if defined(__x86_64__) && defined(__SSE2__)
#include <immintrin.h>
static inline void col_flush8(const double *restrict s,
    double *restrict d, long n)
{
    if (n == 8) {
#ifdef __AVX__
        _mm256_stream_pd(d,     _mm256_loadu_pd(s));
        _mm256_stream_pd(d + 4, _mm256_loadu_pd(s + 4));
#else
        _mm_stream_pd(d,     _mm_loadu_pd(s));
        _mm_stream_pd(d + 2, _mm_loadu_pd(s + 2));
        _mm_stream_pd(d + 4, _mm_loadu_pd(s + 4));
        _mm_stream_pd(d + 6, _mm_loadu_pd(s + 6));
#endif
    } else {
        for (long t = 0; t < n; t++) d[t] = s[t];
    }
}
static inline void col_sfence(void) { _mm_sfence(); }
#else
static inline void col_flush8(const double *restrict s,
    double *restrict d, long n)
{
    for (long t = 0; t < n; t++) d[t] = s[t];
}
static inline void col_sfence(void) { (void)0; }
#endif

#if defined(COLUMNAR_VEC_TANH) && defined(__x86_64__) && defined(__SSE2__)
#define COL_VTANH 1
typedef double v2df __attribute__((vector_size(16)));
extern v2df _ZGVbN2v_tanh(v2df);
static inline v2df v2_loadu(const double *p)
{ v2df r; __builtin_memcpy(&r, p, sizeof r); return r; }
static inline void v2_storeu(double *p, v2df x)
{ __builtin_memcpy(p, &x, sizeof x); }
#ifdef __AVX2__
typedef double v4df __attribute__((vector_size(32)));
extern v4df _ZGVdN4v_tanh(v4df);
static inline v4df v4_loadu(const double *p)
{ v4df r; __builtin_memcpy(&r, p, sizeof r); return r; }
static inline void v4_storeu(double *p, v4df x)
{ __builtin_memcpy(p, &x, sizeof x); }
#endif
#endif
"""

_TANH_FUNC = """
NI static void col_tanhseg(long lo, long hi, double *restrict v,
    const double *restrict q0, const double *restrict q1)
{
    long k = lo;
#if defined(COL_VTANH) && defined(__AVX2__)
    for (; k + 4 <= hi; k += 4) {
        v4df lim = v4_loadu(q1 + k);
        v4df arg = v4_loadu(q0 + k) * v4_loadu(v + k) / lim;
        v4_storeu(v + k, lim * _ZGVdN4v_tanh(arg));
    }
#elif defined(COL_VTANH)
    for (; k + 2 <= hi; k += 2) {
        v2df lim = v2_loadu(q1 + k);
        v2df arg = v2_loadu(q0 + k) * v2_loadu(v + k) / lim;
        v2_storeu(v + k, lim * _ZGVbN2v_tanh(arg));
    }
#endif
    for (; k < hi; k++)
        v[k] = q1[k]*tanh(q0[k]*v[k]/q1[k]);
}
"""


def _generate_specialized_source(
    kinds: Sequence[int], sidx: Sequence[int], n_modes: int, segments: tuple,
) -> str:
    """Emit C for one program shape: op chains fused into single-pass
    vector loops, split at OP_TANH, entry-compatible with the generic
    ``run_columnar`` (plan arguments accepted and ignored)."""

    # linearize plan segments, splitting the chain at every tanh
    chains: list[list[tuple]] = [[]]
    tanhs: list[int] = []
    aff_no = 0
    for kind, j, ln in segments:
        if kind == "affine":
            chains[-1].append(("affine", aff_no))
            aff_no += 1
            continue
        for jj in range(j, j + ln):
            if kinds[jj] == OP_TANH:
                tanhs.append(jj)
                chains.append([])
            else:
                chains[-1].append(("op", jj))
    n_c = len(chains)
    with_v = n_c > 1

    def row(params: dict, name: str, expr: str, const: bool,
            scope: str = "fixed") -> str:
        p = params.get(name)
        if p is None:
            params[name] = {"expr": expr, "const": const, "scope": scope}
        elif not const:
            p["const"] = False
        return name

    def emit_op(params: dict, jj: int) -> list:
        k = kinds[jj]

        def q(p):
            return row(params, f"q{p}_{jj}", f"a->p{p} + {jj}*ni", True)

        def s(off=0):
            r = int(sidx[jj]) + off
            return row(params, f"s{r}", f"a->state + {r}*ni", False)

        if k == OP_BIAS:
            return [f"x = x + {q(0)}[k];"]
        if k == OP_GAIN:
            return [f"x = x * {q(0)}[k];"]
        if k == OP_SOS:
            s1, s2 = s(0), s(1)
            return [
                "{",
                f"    double y = {q(0)}[k]*x + {s1}[k];",
                f"    {s1}[k] = {q(1)}[k]*x - {q(3)}[k]*y + {s2}[k];",
                f"    {s2}[k] = {q(2)}[k]*x - {q(4)}[k]*y;",
                "    x = y;",
                "}",
            ]
        if k == OP_RC:
            s1 = s()
            return [
                "{",
                f"    double t = {s1}[k];",
                f"    t = t + {q(0)}[k]*(x - t);",
                f"    {s1}[k] = t;",
                "    x = t;",
                "}",
            ]
        if k == OP_CLIP:
            return [
                f"x = (x < {q(0)}[k]) ? {q(0)}[k] : x;",
                f"x = (x > {q(1)}[k]) ? {q(1)}[k] : x;",
            ]
        if k == OP_DIFF:
            s1 = s()
            return [
                "{",
                f"    double y = (x - {s1}[k])*{q(0)}[k];",
                f"    {s1}[k] = x;",
                "    x = y;",
                "}",
            ]
        if k == OP_DEADZONE:
            return [
                f"x = (x <= {q(0)}[k] && x >= {q(1)}[k]) ? 0.0"
                f" : ((x > 0.0) ? x - {q(0)}[k] : x - {q(1)}[k]);",
            ]
        if k == OP_SLEW:
            s1 = s()
            return [
                "{",
                f"    double d = x - {s1}[k];",
                f"    x = (d > {q(0)}[k]) ? {s1}[k] + {q(0)}[k]"
                f" : ((d < {q(1)}[k]) ? {s1}[k] + {q(1)}[k] : x);",
                f"    {s1}[k] = x;",
                "}",
            ]
        if k == OP_LATCH:
            return [f"{s()}[k] = x;"]
        if k == OP_TAP_LIMIN:
            o = row(params, "sli", "a->out_limin", False, "rowbase")
            return [f"{o}[k*8 + it] = x;"]
        if k == OP_TAP_LIMOUT:
            o = row(params, "slo", "a->out_limout", False, "rowbase")
            return [f"{o}[k*8 + it] = x;"]
        o = row(params, "sdr", "a->out_drive", False, "rowbase")
        return [f"{o}[k*8 + it] = x;"]  # OP_TAP_DRIVE

    def emit_bridge(params: dict) -> list:
        nz = row(params, "nzi", "a->noise", True, "noisebase")
        ob = row(params, "sbr", "a->out_bridge", False, "rowbase")
        bc0 = row(params, "bc0", "a->mode_coef + 6*ni", True)
        mx0 = row(params, "mx0", "a->mode_state", True)
        lines = []
        if n_modes == 1:
            lines.append(f"double x = {bc0}[k]*{mx0}[k] + {nz}[k*nm + i];")
        else:
            lines.append(f"double x = {bc0}[k]*{mx0}[k];")
            for m in range(1, n_modes):
                bcm = row(params, f"bc{m}", f"a->mode_coef + {7*m+6}*ni", True)
                mxm = row(params, f"mx{m}", f"a->mode_state + {2*m}*ni", True)
                lines.append(f"x = x + {bcm}[k]*{mxm}[k];")
            lines.append(f"x = x + {nz}[k*nm + i];")
        lines.append(f"{ob}[k*8 + it] = x;")
        return lines

    def emit_epilogue(params: dict) -> list:
        ar = row(params, "ar", "a->act", True)
        ai = row(params, "ai", "a->act + ni", True)
        af = row(params, "af", "a->act + 2*ni", True)
        od = row(params, "sdi", "a->out_disp", False, "rowbase")
        lines = [
            f"double cur = x/{ar}[k];",
            f"cur = (cur > {ai}[k]) ? {ai}[k] : cur;",
            f"cur = (cur < -{ai}[k]) ? -{ai}[k] : cur;",
            f"double f = {af}[k]*cur;",
        ]
        for m in range(n_modes):
            c = [
                row(params, f"c{p}_{m}", f"a->mode_coef + {7*m+p}*ni", True)
                for p in range(6)
            ]
            suffix = "" if m == 0 else f" + {2*m}*ni"
            mx = row(params, f"mx{m}", f"a->mode_state{suffix}", False)
            mv = row(params, f"mv{m}", f"a->mode_state + {2*m+1}*ni", False)
            lines += [
                "{",
                f"    double x0 = {mx}[k];",
                f"    double v0 = {mv}[k];",
                f"    {mx}[k] = {c[0]}[k]*x0 + {c[1]}[k]*v0 + {c[4]}[k]*f;",
                f"    {mv}[k] = {c[2]}[k]*x0 + {c[3]}[k]*v0 + {c[5]}[k]*f;",
                "}",
            ]
        lines.append(f"{od}[k*8 + it] = mx0[k];")
        return lines

    # One parameter registry per segment: every row a segment touches is
    # its own ``restrict`` parameter of that noinline function — derived
    # pointers off one shared base defeat GCC's alias-versioning budget,
    # separate restrict parameters do not.  One noinline call per segment
    # per sample measured ~35% faster than merging the chain bodies into
    # a single function containing the sample loop, even though the
    # merged form vectorizes identically.
    seg_params: list[dict] = []
    chain_bodies: list[list] = []
    for t, chain in enumerate(chains):
        params: dict = {}
        body: list = []
        if t == 0:
            body += emit_bridge(params)
        else:
            body.append("double x = v[k];")
        for item in chain:
            if item[0] == "op":
                body += emit_op(params, item[1])
            else:
                fa = row(params, f"fa{item[1]}",
                         f"a->aff_a + {item[1]}*ni", True)
                fb = row(params, f"fb{item[1]}",
                         f"a->aff_b + {item[1]}*ni", True)
                body.append(f"x = {fa}[k]*x + {fb}[k];")
        if t == n_c - 1:
            body += emit_epilogue(params)
        else:
            body.append("v[k] = x;")
        seg_params.append(params)
        chain_bodies.append(body)

    # worker-level hoists: same name in two segments is the same row
    # (names encode the op/state index), so constness merges non-const
    # wins; sample-scope rows hoist their base and derive ``+ i*ni``
    # at each call site
    hoist: dict = {}
    for params in seg_params:
        for name, p in params.items():
            h = hoist.setdefault(
                name, {"expr": p["expr"], "const": p["const"],
                       "scope": p["scope"]})
            if not p["const"]:
                h["const"] = False
    for t, jj in enumerate(tanhs):
        hoist[f"tq0_{t}"] = {"expr": f"a->p0 + {jj}*ni", "const": True,
                             "scope": "fixed"}
        hoist[f"tq1_{t}"] = {"expr": f"a->p1 + {jj}*ni", "const": True,
                             "scope": "fixed"}

    funcs: list[str] = []
    calls: list[str] = []
    for t, (params, body) in enumerate(zip(seg_params, chain_bodies)):
        sig = ["long lo", "long hi", "long i", "long it", "long nm"]
        args = ["lo", "hi", "i", "it", "nm"]
        if with_v:
            sig.append("double *restrict v")
            args.append("v")
        for name, p in params.items():
            if p["scope"] == "sample":
                sig.append(f"const double *restrict {name}")
                args.append(f"{name}_b + i*ni")
            else:
                const = "const " if p["const"] else ""
                sig.append(f"{const}double *restrict {name}")
                args.append(name)
        funcs.append("\n".join([
            f"NI static void seg{t}(",
            "    " + ",\n    ".join(sig) + ")",
            "{",
            "    (void)i; (void)it; (void)nm;",
            "    for (long k = lo; k < hi; k++) {",
            *["        " + ln for ln in body],
            "    }",
            "}",
        ]))
        calls.append(f"seg{t}(" + ", ".join(args) + ");")
        if t < len(tanhs):
            calls.append(f"col_tanhseg(lo, hi, v, tq0_{t}, tq1_{t});")

    # staging name -> destination row matrix for the per-tile flush
    flush_rows = {"sdi": "a->row_disp", "sbr": "a->row_bridge",
                  "sli": "a->row_limin", "slo": "a->row_limout",
                  "sdr": "a->row_drive"}

    w = [
        "static void *col_worker(void *argp)",
        "{",
        "    col_args *a = (col_args *)argp;",
        "    const long ni = a->n_inst;",
        "    const long nm = a->n_max;",
        "    const long rs = a->row_stride;",
        "    const long lo = a->lo;",
        "    long hi = a->hi;",
        "    const long *ns = a->ns;",
        "    const long n_i = ns[lo];         /* block max (sorted desc) */",
        "    (void)ni; (void)nm; (void)rs;",
    ]
    if with_v:
        w.append("    double *v = a->vbuf;")
    for name, h in hoist.items():
        const = "const " if h["const"] else ""
        suffix = "_b" if h["scope"] == "sample" else ""
        w.append(f"    {const}double *{name}{suffix} = {h['expr']};")
    active_flush = [n for n in flush_rows if n in hoist]
    for name in active_flush:
        w.append(f"    double *{name}_r = {flush_rows[name]};")
    w += [
        "    for (long i0 = 0; i0 < n_i; i0 += 8) {",
        "        const long iend = i0 + 8 < n_i ? i0 + 8 : n_i;",
        "        const long hi0 = hi;   /* instances live at tile start */",
        "        for (long i = i0; i < iend; i++) {",
        "            while (hi > lo && ns[hi - 1] <= i) hi--;",
        "            const long it = i - i0;",
        *[f"            {c}" for c in calls],
        "        }",
        "        for (long k = lo; k < hi0; k++) {",
        "            const long ke = ns[k] < iend ? ns[k] : iend;",
        "            const long nv = ke - i0;",
        "            if (nv <= 0) continue;",
        *[f"            col_flush8({n} + k*8, {n}_r + k*rs + i0, nv);"
          for n in active_flush],
        "        }",
        "    }",
        "    col_sfence();",
        "    return 0;",
        "}",
    ]

    parts = [
        f"/* specialized columnar kernel: kinds={list(map(int, kinds))}",
        f"   sidx={list(map(int, sidx))} n_modes={n_modes}",
        f"   segments={[list(s) for s in segments]} */",
        _SPEC_HEADER,
        _C_STRUCT,
    ]
    if tanhs:
        parts.append(_TANH_FUNC)
    parts += ["\n".join(funcs), "\n".join(w), _C_ENTRY]
    return "\n".join(parts)


#: Memoized specialized builds (None = build failed; generic plan kept).
_SPECIALIZED: dict[tuple, Callable | None] = {}


def specialized_interpreter(blocks: "_Blocks", plan: ColumnarPlan):
    """The compiled shape-specialized megakernel, or ``None``.

    Built once per (shape, plan) through the same sha-keyed ``.so``
    cache; tried first with the libmvec vector-``tanh`` path
    (``-DCOLUMNAR_VEC_TANH -lmvec``) and once more scalar-only if that
    link fails — each attempt with :data:`NATIVE_FLAG` first, then
    without.  A failed build is memoized as ``None`` — the generic
    plan interpreter keeps the batch correct, just slower — and never
    poisons ``cc_build_error``.
    """
    key = (
        tuple(int(k) for k in blocks.kinds),
        tuple(int(s) for s in blocks.sidx),
        blocks.n_modes, plan.mode, plan.segments,
    )
    if key in _SPECIALIZED:
        return _SPECIALIZED[key]
    if not _k.cc_available():
        return None
    has_tanh = any(int(k) == OP_TANH for k in blocks.kinds)
    fn = None
    vec = False
    try:
        source = _generate_specialized_source(
            blocks.kinds, blocks.sidx, blocks.n_modes, plan.segments
        )
        if has_tanh:
            try:
                fn = _build_so_tuned(
                    source, [*COLUMNAR_FLAGS, "-DCOLUMNAR_VEC_TANH"],
                    "columnar-spec", libs=("-lm", "-lmvec"),
                )
                vec = True
            except KernelError:
                fn = _build_so_tuned(source, COLUMNAR_FLAGS, "columnar-spec")
        else:
            fn = _build_so_tuned(source, COLUMNAR_FLAGS, "columnar-spec")
    except KernelError as err:
        logger.info(
            "specialized columnar build failed (generic plan kept): %s", err
        )
        fn = None
    record_fusion_decision({
        "engine": "columnar",
        "stage": "specialize",
        "built": fn is not None,
        "vector_tanh": vec,
        "n_ops": len(key[0]),
        "mode": plan.mode,
    })
    _SPECIALIZED[key] = fn
    return fn


_COLUMNAR_FN: Callable | None = None
_LOCK = threading.Lock()


def _reset_engine() -> None:
    """Forget the loaded columnar engines (reset_compiler_probe hook)."""
    global _COLUMNAR_FN
    with _LOCK:
        _COLUMNAR_FN = None
        _SPECIALIZED.clear()
    pool = getattr(_SCRATCH_TLS, "pool", None)
    if pool is not None:
        pool.clear()


def _build_so(
    source: str, flags: Sequence[str], stem: str,
    libs: Sequence[str] = ("-lm",),
) -> Callable:
    """Compile + wrap one columnar entry point (generic or specialized —
    both export the same 35-argument ``run_columnar`` signature)."""
    lib = _k._cc_compile_so(source, list(flags), stem, libs=libs)
    dbl = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    idx = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    lib.run_columnar.restype = None
    lib.run_columnar.argtypes = (
        [ctypes.c_long] * 7     # n_inst, n_threads, n_modes, n_plan, n_max, row_stride, has_taps
        + [idx] * 5             # ns, kinds, sidx, pk, pa
        + [dbl] * 7             # p0..p4, aff_a, aff_b
        + [dbl] * 7             # state, mode_coef, mode_state, noise, act, vbuf, noise_sm
        + [dbl] * 5             # the five sample-major waveform scratch matrices
        + [dbl] * 5             # the five instance-major waveform row matrices
    )
    raw = lib.run_columnar

    def run(*args):
        raw(*args)

    run._lib = lib  # keep the CDLL alive alongside the wrapper
    return run


def _build_so_tuned(
    source: str, flags: Sequence[str], stem: str,
    libs: Sequence[str] = ("-lm",),
) -> Callable:
    """:func:`_build_so` with :data:`NATIVE_FLAG` first, plain retry."""
    try:
        return _build_so(source, [*flags, NATIVE_FLAG], stem, libs=libs)
    except KernelError:
        return _build_so(source, flags, stem, libs=libs)


def _build() -> Callable:
    return _build_so_tuned(_C_SOURCE, COLUMNAR_FLAGS, "columnar")


def columnar_interpreter() -> Callable:
    """The compiled columnar engine (built once, ``.so`` cached on disk).

    Shares the solo engine's trust machinery: an injected
    ``kernel.compile`` fault raises per its plan, and a real build
    failure is memoized into the module-wide ``cc_build_error`` (a
    compiler that cannot build one kernel source cannot build the
    other).  :meth:`KernelBatch.run` degrades to the row path (auto) or
    the NumPy twin (explicit) on :class:`KernelError`.
    """
    global _COLUMNAR_FN
    if poll_fault("kernel.compile") is not None:
        raise KernelError("injected fault at kernel.compile")
    if _k._CC_BUILD_ERROR is not None:
        raise KernelError(_k._CC_BUILD_ERROR)
    if _COLUMNAR_FN is None:
        if not _k.cc_available():
            raise KernelError("no C compiler on PATH")
        with _LOCK:
            if _COLUMNAR_FN is None:
                try:
                    _COLUMNAR_FN = _build()
                except KernelError as err:
                    _k._CC_BUILD_ERROR = str(err)
                    raise
    return _COLUMNAR_FN


def run_columnar_cc(batch, fn, threads_used: int, timer: StageTimer) -> list:
    """Execute a :class:`~repro.engine.kernel.KernelBatch` through the
    compiled columnar engine (engine tag ``cc-columnar``)."""
    blocks = _assemble(batch)
    plan = build_plan(
        batch.signature, list(blocks.kinds), blocks.p_cols, blocks.n_inst
    )
    engine = "cc-columnar"
    if plan.hot and plan.mode != "off":
        with timer.stage("compile"):
            spec = specialized_interpreter(blocks, plan)
        if spec is not None:
            fn = spec
            engine = "cc-columnar-fused"
    n_inst, n_max = blocks.n_inst, blocks.n_max
    # the sample-major scratch doubles as the fused kernel's 8-sample
    # staging tile (indexed [k*8 + it]), so keep >= 8 samples per row
    n_sm = max(n_max, 8)
    row_stride = (n_max + 7) & ~7
    out_disp = _scratch("col_disp", (n_sm, n_inst))
    out_bridge = _scratch("col_bridge", (n_sm, n_inst))
    rows = [_aligned_rows(n_inst, row_stride) for _ in range(2)]
    if blocks.has_taps:
        taps = [_scratch(f"col_tap{j}", (n_sm, n_inst)) for j in range(3)]
        rows += [_aligned_rows(n_inst, row_stride) for _ in range(3)]
    else:
        taps = [np.zeros(1) for _ in range(3)]
        rows += [np.zeros(1) for _ in range(3)]
    vbuf = _scratch("vbuf", (n_inst,))
    noise_sm = _scratch("noise_sm", (n_max, n_inst))
    with timer.stage("run"):
        fn(
            n_inst, threads_used, blocks.n_modes, len(plan.pk),
            n_max, row_stride, 1 if blocks.has_taps else 0,
            blocks.ns_sorted, blocks.kinds, blocks.sidx, plan.pk, plan.pa,
            *blocks.p_cols, plan.aff_a, plan.aff_b,
            blocks.state, blocks.mode_coef, blocks.mode_state,
            blocks.noise, blocks.act, vbuf, noise_sm,
            out_disp, out_bridge, *taps, *rows,
        )
    return _package(batch, blocks, rows, engine, threads_used, timer)


# -- the NumPy columnar twin -------------------------------------------------------


def run_columnar_numpy(batch, timer: StageTimer) -> list:
    """The same SoA program executed with vectorized NumPy sweeps.

    No compiler needed: each plan segment is one ufunc expression over
    the active instance prefix.  Arithmetic mirrors the C engine
    op-for-op (``np.tanh`` stands in for libm ``tanh`` — same libm on
    most platforms, but last-ulp drift is inside the columnar tolerance
    contract either way).  Slow per sample for narrow batches — this is
    the explicit-request fallback, not an auto path.
    """
    blocks = _assemble(batch)
    plan = build_plan(
        batch.signature, list(blocks.kinds), blocks.p_cols, blocks.n_inst
    )
    n_inst, n_max = blocks.n_inst, blocks.n_max
    kinds, sidx = blocks.kinds, blocks.sidx
    p0, p1, p2, p3, p4 = blocks.p_cols
    state = blocks.state
    mc, ms = blocks.mode_coef, blocks.mode_state
    # twin consumes noise per sample: transpose once to sample-major
    noise, act = np.ascontiguousarray(blocks.noise.T), blocks.act
    ns_sorted = blocks.ns_sorted
    n_modes = blocks.n_modes
    out_disp = np.zeros((n_max, n_inst))
    out_bridge = np.zeros((n_max, n_inst))
    if blocks.has_taps:
        taps = [np.zeros((n_max, n_inst)) for _ in range(3)]
    else:
        taps = [np.zeros(1) for _ in range(3)]
    v = np.empty(n_inst)

    def apply_sos(j, a, va):
        r = sidx[j]
        s1, s2 = state[r], state[r + 1]
        y = p0[j][:a] * va + s1[:a]
        s1[:a] = p1[j][:a] * va - p3[j][:a] * y + s2[:a]
        s2[:a] = p2[j][:a] * va - p4[j][:a] * y
        v[:a] = y
        return v[:a]

    with timer.stage("run"):
        active = n_inst
        for i in range(n_max):
            while active > 0 and ns_sorted[active - 1] <= i:
                active -= 1
            a = active
            if a == 0:  # pragma: no cover - defensive (n_max = max(ns))
                break
            if n_modes == 1:
                v[:a] = mc[6][:a] * ms[0][:a] + noise[i, :a]
            else:
                v[:a] = mc[6][:a] * ms[0][:a]
                for m in range(1, n_modes):
                    v[:a] = v[:a] + mc[7 * m + 6][:a] * ms[2 * m][:a]
                v[:a] = v[:a] + noise[i, :a]
            out_bridge[i, :a] = v[:a]
            for s in range(len(plan.pk)):
                j = int(plan.pa[s])
                code = int(plan.pk[s])
                va = v[:a]
                if code == PK_SOS2:
                    va = apply_sos(j, a, va)
                    apply_sos(j + 1, a, va)
                    continue
                if code == PK_AFFINE:
                    v[:a] = plan.aff_a[j][:a] * va + plan.aff_b[j][:a]
                    continue
                kind = int(kinds[j])
                if kind == 2:  # OP_SOS
                    apply_sos(j, a, va)
                elif kind == 1:  # OP_GAIN
                    v[:a] = va * p0[j][:a]
                elif kind == 0:  # OP_BIAS
                    v[:a] = va + p0[j][:a]
                elif kind == 3:  # OP_RC
                    st = state[sidx[j]]
                    st[:a] = st[:a] + p0[j][:a] * (va - st[:a])
                    v[:a] = st[:a]
                elif kind == 4:  # OP_CLIP
                    v[:a] = np.minimum(np.maximum(va, p0[j][:a]), p1[j][:a])
                elif kind == 5:  # OP_TANH
                    lim = p1[j][:a]
                    v[:a] = lim * np.tanh(p0[j][:a] * va / lim)
                elif kind == 6:  # OP_DIFF
                    st = state[sidx[j]]
                    y = (va - st[:a]) * p0[j][:a]
                    st[:a] = va
                    v[:a] = y
                elif kind == 7:  # OP_DEADZONE
                    hi_w, lo_w = p0[j][:a], p1[j][:a]
                    inside = (va <= hi_w) & (va >= lo_w)
                    v[:a] = np.where(
                        inside, 0.0, np.where(va > 0.0, va - hi_w, va - lo_w)
                    )
                elif kind == 8:  # OP_SLEW
                    st = state[sidx[j]]
                    y = va - st[:a]
                    res = np.where(
                        y > p0[j][:a], st[:a] + p0[j][:a],
                        np.where(y < p1[j][:a], st[:a] + p1[j][:a], va),
                    )
                    v[:a] = res
                    st[:a] = res
                elif kind == 9:  # OP_LATCH
                    state[sidx[j]][:a] = va
                elif kind == 10:  # OP_TAP_LIMIN
                    taps[0][i, :a] = va
                elif kind == 11:  # OP_TAP_LIMOUT
                    taps[1][i, :a] = va
                else:  # OP_TAP_DRIVE
                    taps[2][i, :a] = va
            cur = v[:a] / act[0][:a]
            cur = np.minimum(cur, act[1][:a])
            cur = np.maximum(cur, -act[1][:a])
            f = act[2][:a] * cur
            for m in range(n_modes):
                b = 7 * m
                mx, mv = ms[2 * m], ms[2 * m + 1]
                x0 = mx[:a].copy()
                v0 = mv[:a].copy()
                mx[:a] = mc[b][:a] * x0 + mc[b + 1][:a] * v0 + mc[b + 4][:a] * f
                mv[:a] = mc[b + 2][:a] * x0 + mc[b + 3][:a] * v0 \
                    + mc[b + 5][:a] * f
            out_disp[i, :a] = ms[0][:a]
        rows = [
            np.ascontiguousarray(out_disp.T),
            np.ascontiguousarray(out_bridge.T),
        ]
        if blocks.has_taps:
            rows += [np.ascontiguousarray(t.T) for t in taps]
        else:
            rows += taps
    return _package(batch, blocks, rows, "columnar-np", 1, timer)
