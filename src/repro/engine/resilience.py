"""Deterministic fault injection and resilient-execution primitives.

Real monolithic cantilever arrays ship broken: open bridge resistors,
unreleased (stuck) beams, loops that fail Barkhausen start-up — and the
software stack around them fails too: corrupted cache entries, missing
compilers, crashed or hung pool workers.  This module is the one place
that knows how to *inject* those faults deterministically and how to
*survive* them:

* :class:`FaultPlan` / :class:`FaultInjector` — a seeded, countable
  plan of faults at named sites (:data:`FAULT_SITES`).  Instrumented
  code polls its site through :func:`poll_fault`; with no active
  injector the poll is a single attribute read, so production sweeps
  pay nothing.
* :class:`RetryPolicy` — capped exponential backoff with *seeded*
  jitter: every delay is a pure function of ``(seed, attempt, key)``,
  so a retried sweep is reproducible down to its sleep schedule.
* :class:`CircuitBreaker` — consecutive-failure quarantine for
  unreliable backends.  The kernel uses one (``"kernel-cc"``) to stop
  hammering a compiled engine that keeps failing and degrade down
  ``AUTO_ORDER`` with a logged, counted reason.

Injection sites are *names*, not hooks: the instrumented module decides
what the fault means physically (a corrupt cache file, a railed bridge,
a hung worker).  ``docs/ROBUSTNESS.md`` catalogues every site and its
recovery semantics.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import FaultInjectionError

logger = logging.getLogger(__name__)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "BreakerInfo",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active_injector",
    "arm_env_fault_plan",
    "breaker_report",
    "get_breaker",
    "inject_faults",
    "poll_fault",
    "reset_breakers",
]


#: Every named injection site in the stack, with the module that polls
#: it.  A :class:`FaultSpec` naming an unknown site is rejected eagerly.
FAULT_SITES = (
    "cache.entry",        # engine.cache: corrupt the on-disk entry before read
    "kernel.compile",     # engine.kernel: the C engine fails at build/load
    "kernel.lower",       # feedback loop lowering raises LoweringError
    "executor.task",      # engine.executor: worker crash ("raise") or hang
    "loop.record",        # feedback.loop: NaN/Inf into recorded waveforms
    "chip.bridge-open",   # core.chip: open bridge resistor rails a channel
    "chip.stuck",         # core.chip: stuck/unreleased beam, flat channel
    "loop.no-startup",    # core.resonant_chip: loop fails Barkhausen start-up
    # -- distributed plane (service + fabric) --------------------------------
    "http.request",       # service.client: refused / slow / truncated / 5xx
    "cache.remote",       # engine.cache: remote tier error or truncated blob
    "store.op",           # service.store: SQLITE_BUSY ("database is locked")
    "store.claim",        # service.store: chunk-lease CAS race lost
    "fabric.lease",       # engine.fabric: lease clock skew, TTL collapses
    "fabric.heartbeat",   # engine.fabric: heartbeat lost mid-chunk
    "fabric.complete",    # engine.fabric: completion ack lost -> duplicate
    "fabric.crash",       # engine.fabric: die between cache-write and complete
)

#: Fault kinds with stack-wide meaning; sites may define extras.
FAULT_KINDS = ("raise", "hang", "corrupt", "nan", "device")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where* (site), *what* (kind), *when* (at/count).

    Parameters
    ----------
    site:
        One of :data:`FAULT_SITES`.
    kind:
        What the fault does at that site — ``"raise"`` (crash),
        ``"hang"`` (sleep ``payload`` seconds), ``"corrupt"`` /
        ``"nan"`` (data damage), ``"device"`` (physical device fault;
        the site defines the symptom).
    at:
        Fire on the ``at``-th poll of the site (0-based occurrence
        index, e.g. grid index or channel number); ``None`` fires on
        the first ``count`` polls.
    count:
        How many times the fault fires in total (with ``at`` set, the
        occurrences ``at, at+1, ... at+count-1``).
    payload:
        Site-specific magnitude (hang duration [s], corruption byte
        count, ...).
    """

    site: str
    kind: str = "raise"
    at: int | None = None
    count: int = 1
    payload: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {FAULT_SITES}"
            )
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.at is not None and self.at < 0:
            raise ValueError(f"fault occurrence index must be >= 0, got {self.at}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of faults plus the plan seed.

    The seed feeds deterministic data damage (which bytes a
    ``"corrupt"`` fault flips, which samples a ``"nan"`` fault
    poisons), so two runs of the same plan injure the system
    identically.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def single(cls, site: str, kind: str = "raise", **kwargs) -> "FaultPlan":
        """A one-fault plan (the common test-case shape)."""
        seed = kwargs.pop("seed", 0)
        return cls(faults=(FaultSpec(site=site, kind=kind, **kwargs),), seed=seed)

    def to_dict(self) -> dict:
        """JSON-ready form (the :data:`FAULT_PLAN_ENV` wire format)."""
        return {
            "seed": self.seed,
            "faults": [
                {
                    "site": spec.site,
                    "kind": spec.kind,
                    "at": spec.at,
                    "count": spec.count,
                    "payload": spec.payload,
                }
                for spec in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        faults = tuple(
            FaultSpec(
                site=item["site"],
                kind=item.get("kind", "raise"),
                at=item.get("at"),
                count=int(item.get("count", 1)),
                payload=float(item.get("payload", 0.0)),
            )
            for item in payload.get("faults", ())
        )
        return cls(faults=faults, seed=int(payload.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        return cls.from_dict(json.loads(raw))


class FaultInjector:
    """Executes a :class:`FaultPlan`: counts site polls, fires matching faults.

    Thread-safe; deterministic: the n-th poll of a site always sees the
    same decision for a given plan.  ``fired`` / ``polls`` expose what
    actually happened so tests assert on injection *and* recovery.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self.polls: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self._remaining = [spec.count for spec in plan.faults]

    def poll(self, site: str) -> FaultSpec | None:
        """Record one poll of ``site``; the matching armed fault, if any.

        At most one fault fires per poll (plan order wins); its
        remaining count is decremented, so exhausted faults never
        re-fire — the property every recover-and-retry test relies on.
        """
        with self._lock:
            occurrence = self.polls.get(site, 0)
            self.polls[site] = occurrence + 1
            for i, spec in enumerate(self.plan.faults):
                if spec.site != site or self._remaining[i] <= 0:
                    continue
                if spec.at is not None and not (
                    spec.at <= occurrence < spec.at + spec.count
                ):
                    continue
                self._remaining[i] -= 1
                self.fired[site] = self.fired.get(site, 0) + 1
                logger.info(
                    "fault injected at %s (kind=%s, occurrence=%d)",
                    site, spec.kind, occurrence,
                )
                return spec
        return None

    def fire(self, site: str) -> FaultSpec | None:
        """Poll and apply the *generic* kinds in place.

        ``"raise"`` raises :class:`~repro.errors.FaultInjectionError`;
        ``"hang"`` sleeps ``payload`` seconds.  Data-damage kinds
        (``"corrupt"``, ``"nan"``, ``"device"``) are returned for the
        site to apply with its own semantics.
        """
        spec = self.poll(site)
        if spec is None:
            return None
        if spec.kind == "raise":
            raise FaultInjectionError(f"injected fault at {site}")
        if spec.kind == "hang":
            time.sleep(spec.payload)
            return None
        return spec


_ACTIVE: FaultInjector | None = None
_ACTIVE_LOCK = threading.Lock()


def active_injector() -> FaultInjector | None:
    """The currently active injector (``None`` outside fault tests)."""
    return _ACTIVE


def poll_fault(site: str) -> FaultSpec | None:
    """Instrumentation-point helper: poll the active injector, if any.

    A plain ``None`` check when no plan is active — the per-call cost
    instrumented hot paths pay in production.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.poll(site)


def fire_fault(site: str) -> FaultSpec | None:
    """Like :func:`poll_fault` but applies generic raise/hang kinds."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.fire(site)


@contextmanager
def inject_faults(plan: FaultPlan | FaultInjector):
    """Activate a fault plan for the dynamic extent of the block.

    Yields the :class:`FaultInjector` so the caller can assert on
    ``fired`` counts afterwards.  Nested activation is rejected — a
    fault test that silently stacked plans would assert on the wrong
    counters.
    """
    global _ACTIVE
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise FaultInjectionError("a fault plan is already active")
        _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


#: Env var carrying a JSON :class:`FaultPlan` into subprocesses — the
#: chaos harness arms server/worker processes it cannot reach in-process.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def arm_env_fault_plan() -> FaultInjector | None:
    """Activate the :data:`FAULT_PLAN_ENV` plan for the process lifetime.

    Called at entry by ``repro worker`` / ``repro serve`` (and the
    spawn-mode fabric worker main) so the chaos harness can injure real
    subprocesses with the same seeded determinism as in-process tests.
    No-op (returns ``None``) when the variable is unset; refuses to
    stack on an already-active injector.
    """
    global _ACTIVE
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    injector = FaultInjector(FaultPlan.from_json(raw))
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise FaultInjectionError(
                "a fault plan is already active; cannot arm the env plan")
        _ACTIVE = injector
    logger.warning(
        "fault plan armed from %s: %d fault(s), seed %d",
        FAULT_PLAN_ENV, len(injector.plan.faults), injector.plan.seed,
    )
    return injector


# -- deterministic retry ------------------------------------------------------


def _unit_uniform(*parts) -> float:
    """A uniform in [0, 1) as a pure function of the parts (no RNG state)."""
    digest = hashlib.sha256(
        ":".join(str(p) for p in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    ``delay(attempt) = min(max_delay, base_delay * multiplier**attempt)
    * (1 + jitter * u)`` where ``u`` is a deterministic uniform derived
    from ``(seed, attempt, key)`` — no global RNG, so a retried sweep
    reproduces its exact sleep schedule and total wall-time bound:
    ``sum(delays) <= retries * max_delay * (1 + jitter)``.

    Parameters
    ----------
    retries:
        Re-dispatch attempts after the first failure (0 disables).
    base_delay / multiplier / max_delay:
        The capped exponential schedule [s].
    jitter:
        Fractional spread added on top (0 disables).
    seed:
        Folds into every jitter draw.
    """

    retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, key: object = 0) -> float:
        """Backoff before retry ``attempt`` (0-based), deterministic."""
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * _unit_uniform(self.seed, attempt, key))

    def delays(self, key: object = 0) -> tuple[float, ...]:
        """The full backoff schedule, one entry per retry attempt."""
        return tuple(self.delay(a, key) for a in range(self.retries))

    def run(
        self,
        fn: Callable,
        *args,
        key: object = 0,
        sleep: Callable[[float], None] = time.sleep,
        retry_on: tuple[type, ...] = (Exception,),
    ):
        """Call ``fn(*args)`` with this policy; re-raises the last error."""
        for attempt in range(self.retries + 1):
            try:
                return fn(*args)
            except retry_on:
                if attempt >= self.retries:
                    raise
                sleep(self.delay(attempt, key))
        raise AssertionError("unreachable")  # pragma: no cover


# -- circuit breaker ----------------------------------------------------------


@dataclass(frozen=True)
class BreakerInfo:
    """Snapshot of one :class:`CircuitBreaker`'s counters."""

    name: str
    open: bool
    failures: int
    consecutive_failures: int
    successes: int
    trips: int
    threshold: int
    last_failure_reason: str | None = None


@dataclass
class CircuitBreaker:
    """Quarantine a backend after ``threshold`` consecutive failures.

    Deliberately *not* time-based: a quarantined backend stays
    quarantined until :meth:`reset` — time-based half-open probes would
    make sweep results depend on wall clock, breaking determinism.
    ``allow()`` is the gate callers check before trying the protected
    path; ``record_failure`` / ``record_success`` feed it.
    """

    name: str
    threshold: int = 3
    failures: int = 0
    consecutive: int = 0
    successes: int = 0
    trips: int = 0
    last_failure_reason: str | None = None
    _open: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")

    @property
    def open(self) -> bool:
        """True when the protected path is quarantined."""
        return self._open

    def allow(self) -> bool:
        """Should a caller attempt the protected path right now?"""
        return not self._open

    def record_failure(self, reason: str) -> None:
        """Count one failure; opens the breaker at the threshold."""
        self.failures += 1
        self.consecutive += 1
        self.last_failure_reason = str(reason)
        if not self._open and self.consecutive >= self.threshold:
            self._open = True
            self.trips += 1
            logger.warning(
                "circuit breaker %r opened after %d consecutive failures: %s",
                self.name, self.consecutive, reason,
            )

    def record_success(self) -> None:
        """Count one success; closes the consecutive-failure streak."""
        self.successes += 1
        self.consecutive = 0

    def reset(self) -> None:
        """Close the breaker and clear the failure streak (not counters)."""
        self._open = False
        self.consecutive = 0

    def info(self) -> BreakerInfo:
        return BreakerInfo(
            name=self.name,
            open=self._open,
            failures=self.failures,
            consecutive_failures=self.consecutive,
            successes=self.successes,
            trips=self.trips,
            threshold=self.threshold,
            last_failure_reason=self.last_failure_reason,
        )


_BREAKERS: dict[str, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def get_breaker(name: str, threshold: int = 3) -> CircuitBreaker:
    """The process-wide breaker registered under ``name`` (created lazily)."""
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(name)
        if breaker is None:
            breaker = CircuitBreaker(name=name, threshold=threshold)
            _BREAKERS[name] = breaker
        return breaker


def breaker_report() -> dict[str, BreakerInfo]:
    """Snapshots of every registered breaker, by name."""
    with _BREAKERS_LOCK:
        return {name: b.info() for name, b in sorted(_BREAKERS.items())}


def quarantined_backends() -> tuple[str, ...]:
    """Names of the currently open (quarantined) breakers."""
    with _BREAKERS_LOCK:
        return tuple(name for name, b in sorted(_BREAKERS.items()) if b.open)


def reset_breakers() -> None:
    """Close and forget every registered breaker (test isolation)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


def corruption_offsets(
    seed: int, size: int, n: int = 8, *parts
) -> tuple[int, ...]:
    """Deterministic byte offsets a ``"corrupt"`` fault damages.

    A pure function of ``(seed, size, parts)`` so the same plan always
    injures the same bytes of the same file.
    """
    if size <= 0:
        return ()
    return tuple(
        int(_unit_uniform(seed, size, i, *parts) * size) for i in range(n)
    )
