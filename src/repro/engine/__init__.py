"""Parallel batch-sweep engine: executor, result cache, stage timing.

The scaling substrate under every sweep, bench, and array assay:

* :class:`BatchExecutor` — fan a function out over a parameter grid
  (serial / thread / process backends, ordered results, per-task error
  capture);
* :class:`ResultCache` — deterministic on-disk memoization keyed by a
  stable content hash, with versioned invalidation and hit/miss
  counters — and :class:`TieredCache`, its memory → sharded-disk →
  remote-store extension with per-tier counters;
* :mod:`~repro.engine.fabric` — the distributed sweep fabric:
  :class:`FabricWorker` nodes lease grid chunks from the service job
  store and stream results through the tiered cache
  (:func:`run_fabric_sweep` is the one-call coordinator);
* :class:`StageTimer` — per-stage wall-clock timing so benches report
  real speedups;
* :mod:`~repro.engine.resilience` — deterministic fault injection
  (:func:`inject_faults`), seeded retry backoff (:class:`RetryPolicy`),
  and the circuit breakers that quarantine a misbehaving compiled
  backend (:func:`get_breaker`, :func:`breaker_report`);
* :mod:`~repro.engine.kernel` — the fused closed-loop kernel: circuit
  chains lowered to flat stage programs run by a compiled interpreter
  (``KERNEL_BACKENDS`` names the execution paths; the executor's
  ``BACKENDS`` names the *parallelism* backends — different axes).

Entry points elsewhere in the library build on this module:
:func:`repro.analysis.run_parallel` (grid sweeps),
:meth:`repro.core.chip.BiosensorChip.run_array_assay` (``workers=``)
and :meth:`repro.feedback.loop.ResonantFeedbackLoop.run`
(``backend=``) are the main consumers.
"""

from .cache import (
    CACHE_VERSION,
    CacheInfo,
    FilesystemRemoteStore,
    HTTPRemoteStore,
    ResultCache,
    TieredCache,
    TieredCacheInfo,
    TierInfo,
    stable_hash,
)
from .executor import BACKENDS, BatchExecutor, BatchResult, TaskOutcome
from .fabric import (
    FabricWorker,
    WorkerStats,
    fabric_worker_id,
    run_fabric_sweep,
    submit_fabric_job,
)
from .kernel import (
    AUTO_ORDER,
    BACKENDS as KERNEL_BACKENDS,
    BATCH_AUTO_ORDER,
    BATCH_DECLINE_MIN_SAMPLES,
    BATCH_ENGINES,
    CC_ENV,
    COLUMNAR_ENV,
    COLUMNAR_MIN_ENV,
    FusedLoopKernel,
    KERNEL_THREADS_ENV,
    KernelBatch,
    KernelInfo,
    KernelOp,
    KernelRunInfo,
    KernelRunResult,
    KernelStage,
    ModeLowering,
    batch_signature,
    cc_available,
    cc_usable,
    compose_stages,
    kernel_batch_threads,
    kernel_info,
    lower_block,
    numba_available,
    record_degrade,
    record_fallback,
    reset_compiler_probe,
    reset_kernel_info,
    resolve_backend,
)
from .resilience import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FAULT_SITES,
    BreakerInfo,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    arm_env_fault_plan,
    breaker_report,
    get_breaker,
    inject_faults,
    poll_fault,
    quarantined_backends,
    reset_breakers,
)
from .timing import StageTimer, StageTiming, speedup

__all__ = [
    "AUTO_ORDER",
    "BACKENDS",
    "BATCH_AUTO_ORDER",
    "BATCH_DECLINE_MIN_SAMPLES",
    "BATCH_ENGINES",
    "CACHE_VERSION",
    "CC_ENV",
    "COLUMNAR_ENV",
    "COLUMNAR_MIN_ENV",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "KERNEL_BACKENDS",
    "KERNEL_THREADS_ENV",
    "BatchExecutor",
    "BatchResult",
    "BreakerInfo",
    "CacheInfo",
    "CircuitBreaker",
    "FabricWorker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FilesystemRemoteStore",
    "FusedLoopKernel",
    "HTTPRemoteStore",
    "KernelBatch",
    "KernelInfo",
    "KernelOp",
    "KernelRunInfo",
    "KernelRunResult",
    "KernelStage",
    "ModeLowering",
    "ResultCache",
    "RetryPolicy",
    "StageTimer",
    "StageTiming",
    "TaskOutcome",
    "TierInfo",
    "TieredCache",
    "TieredCacheInfo",
    "WorkerStats",
    "batch_signature",
    "arm_env_fault_plan",
    "breaker_report",
    "cc_available",
    "cc_usable",
    "compose_stages",
    "fabric_worker_id",
    "get_breaker",
    "inject_faults",
    "kernel_batch_threads",
    "kernel_info",
    "lower_block",
    "numba_available",
    "poll_fault",
    "quarantined_backends",
    "record_degrade",
    "record_fallback",
    "reset_breakers",
    "reset_compiler_probe",
    "reset_kernel_info",
    "resolve_backend",
    "run_fabric_sweep",
    "speedup",
    "submit_fabric_job",
    "stable_hash",
]
