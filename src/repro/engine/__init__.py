"""Parallel batch-sweep engine: executor, result cache, stage timing.

The scaling substrate under every sweep, bench, and array assay:

* :class:`BatchExecutor` — fan a function out over a parameter grid
  (serial / thread / process backends, ordered results, per-task error
  capture);
* :class:`ResultCache` — deterministic on-disk memoization keyed by a
  stable content hash, with versioned invalidation and hit/miss
  counters;
* :class:`StageTimer` — per-stage wall-clock timing so benches report
  real speedups.

Entry points elsewhere in the library build on this module:
:func:`repro.analysis.run_parallel` (grid sweeps) and
:meth:`repro.core.chip.BiosensorChip.run_array_assay` (``workers=``)
are the main consumers.
"""

from .cache import CACHE_VERSION, CacheInfo, ResultCache, stable_hash
from .executor import BACKENDS, BatchExecutor, BatchResult, TaskOutcome
from .timing import StageTimer, StageTiming, speedup

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "BatchExecutor",
    "BatchResult",
    "CacheInfo",
    "ResultCache",
    "StageTimer",
    "StageTiming",
    "TaskOutcome",
    "speedup",
    "stable_hash",
]
