"""Fused numeric kernel for the closed-loop (Fig. 5) simulators.

The sample-by-sample reference loop in :mod:`repro.feedback.loop`
dispatches ~6 Python ``step()`` calls per sample — the dominant cost of
every resonant bench and sweep.  This module lowers the whole loop to a
flat *stage program* and runs it in one allocation-free inner loop:

* every steppable circuit block exports its per-sample update as a
  :class:`KernelStage` — a short list of :class:`KernelOp` primitives
  (SOS biquad sections, one-pole RC, static nonlinearities, memoryless
  gains) plus its current state and a write-back hook;
* :class:`FusedLoopKernel` composes the stages with the bridge gain,
  the (linear) Lorentz actuator, and the exact-ZOH modal propagators
  into one program;
* the **fused** backend runs the program through a small C interpreter
  compiled once per machine with the system C compiler (strict IEEE
  flags, result cached on disk) — ~50-100x the reference path; when no
  compiler is available it falls back to a specialized straight-line
  Python inner loop generated from the program (no attribute lookups,
  no method dispatch, literal coefficients) — still several times the
  reference path;
* the **numba** backend JIT-compiles a generic array interpreter of the
  same program when :mod:`numba` is importable (auto-detected, never a
  hard dependency);
* the **interp** backend runs that same interpreter in pure Python —
  slow, but it lets the test suite pin the interpreter's semantics
  (what the C and numba engines compile) on any machine.

Equivalence is the contract: each primitive replicates the reference
``step()`` arithmetic operation-for-operation, so the fused waveforms
match the per-sample loop bit-for-bit (pinned by the golden test suite
and ``make kernel-check``).  Blocks that cannot lower — unknown user
subclasses, instance-patched ``step`` methods, amplifiers with
per-sample noise — raise :class:`~repro.errors.LoweringError`; the loop
simulators catch it and fall back to the reference path with a logged
reason, recorded by :func:`kernel_info`.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import math
import os
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import KernelError, LoweringError
from .resilience import get_breaker, poll_fault
from .timing import StageTimer

logger = logging.getLogger(__name__)

__all__ = [
    "AUTO_ORDER",
    "BACKENDS",
    "BATCH_AUTO_ORDER",
    "BATCH_DECLINE_MIN_SAMPLES",
    "BATCH_ENGINES",
    "CC_ENV",
    "COLUMNAR_ENV",
    "COLUMNAR_MIN_INSTANCES",
    "FusedLoopKernel",
    "KERNEL_THREADS_ENV",
    "KernelBatch",
    "KernelInfo",
    "KernelOp",
    "KernelRunInfo",
    "KernelRunResult",
    "KernelStage",
    "KernelError",
    "LoweringError",
    "MAX_BATCH_THREADS",
    "ModeLowering",
    "batch_signature",
    "cc_available",
    "cc_usable",
    "compose_stages",
    "kernel_batch_threads",
    "kernel_info",
    "lower_block",
    "numba_available",
    "record_batch",
    "record_batch_declined",
    "record_degrade",
    "record_fallback",
    "reset_compiler_probe",
    "reset_kernel_info",
    "resolve_backend",
]

# -- stage-program primitives ----------------------------------------------------
#
# Each op transforms the running sample value ``v`` exactly as the
# corresponding reference ``step()`` does, using the same floating-point
# operation order (the bit-identity contract).

OP_BIAS = 0      # v = v + p0                      (amplifier input offset)
OP_GAIN = 1      # v = v * p0                      (memoryless gain)
OP_SOS = 2       # transposed direct-form II biquad section, 2 state slots
OP_RC = 3        # s += p0*(v - s); v = s          (one-pole RC low-pass)
OP_CLIP = 4      # v = min(max(v, p0), p1)         (rails / current limit)
OP_TANH = 5      # v = p1 * tanh(p0 * v / p1)      (limiting amplifier)
OP_DIFF = 6      # y = (v - s)*p0; s = v; v = y    (phase-lead differentiator)
OP_DEADZONE = 7  # crossover dead zone of half-width p0 (p1 = -p0)
OP_SLEW = 8      # slew-rate limit p0 per sample (p1 = -p0), 1 state slot
OP_LATCH = 9     # s = v (records last output; buffer state write-back)
OP_TAP_LIMIN = 10   # record v into the limiter-input waveform
OP_TAP_LIMOUT = 11  # record v into the limiter-output waveform
OP_TAP_DRIVE = 12   # record v into the drive waveform

_N_PARAMS = 5

#: Loop-level backend choices accepted by ``run(..., backend=)``.
BACKENDS = ("auto", "reference", "fused", "numba", "interp")

#: Resolution order of ``backend="auto"``, pinned by regression tests:
#: the C-compiled fused engine when a compiler exists, else numba when
#: importable, else the generated-Python fused engine.  ``interp`` is
#: *never* eligible — it exists to verify the interpreter's semantics
#: and benches slower than the reference path it would replace
#: (BENCH_fig5.json: 0.51x).
AUTO_ORDER = ("fused:cc", "numba", "fused:codegen")

#: Batch-level engine choices accepted by ``KernelBatch.run(engine=)``.
#: ``row`` is the PR-4 pthreaded per-instance interpreter (bit-identical
#: to solo fused runs); ``columnar`` is the vectorized structure-of-arrays
#: engine in :mod:`~repro.engine.kernel_columnar` (its own tolerance
#: contract, see ``docs/FASTPATH.md``).
BATCH_ENGINES = ("auto", "columnar", "row")

#: Resolution order of batch ``engine="auto"``: the columnar SoA C
#: engine when a compiler is trusted and the batch is wide enough
#: (``COLUMNAR_MIN_INSTANCES``, or forced via ``REPRO_COLUMNAR``), the
#: row-major pthread batch otherwise, per-instance solo fused runs
#: without a compiler.  ``auto`` never picks the NumPy columnar twin —
#: it relaxes bit-exactness and is only reachable by explicit request.
BATCH_AUTO_ORDER = ("columnar:cc", "row:cc", "fused:solo")

#: ``REPRO_COLUMNAR=1`` forces the columnar batch engine everywhere
#: (degrading to its NumPy twin without a compiler);
#: ``REPRO_COLUMNAR=0`` disables it.  Unset: the auto heuristic.
COLUMNAR_ENV = "REPRO_COLUMNAR"

#: Minimum batch width before ``auto`` routes to the columnar engine —
#: below this the stride-1 instance sweeps are too narrow to pay for
#: the SoA transposes.  Override with ``REPRO_COLUMNAR_MIN``.
COLUMNAR_MIN_INSTANCES = 8
COLUMNAR_MIN_ENV = "REPRO_COLUMNAR_MIN"

#: Decline heuristic for the row batch: a narrow batch of programs at
#: least this long, at one C thread, gains nothing from batch dispatch
#: (the padded matrices and strided partition cost more than the serial
#: fused loop) — ``KernelBatch.run`` then falls through to solo fused
#: runs and counts it in ``kernel_info().batch_declined``.
BATCH_DECLINE_MIN_SAMPLES = 8192


def _columnar_override() -> bool | None:
    """The ``REPRO_COLUMNAR`` verdict: True/False when set, else None."""
    env = os.environ.get(COLUMNAR_ENV, "").strip().lower()
    if env in ("1", "on", "always", "force", "true"):
        return True
    if env in ("0", "off", "never", "false"):
        return False
    return None


def _columnar_min_instances() -> int:
    env = os.environ.get(COLUMNAR_MIN_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", COLUMNAR_MIN_ENV, env
            )
    return COLUMNAR_MIN_INSTANCES


@dataclass(frozen=True)
class KernelOp:
    """One primitive per-sample update (see the OP_* table above)."""

    kind: int
    params: tuple[float, ...] = ()
    state: tuple[float, ...] = ()


@dataclass
class KernelStage:
    """One block's per-sample update, lowered to primitive ops.

    Parameters
    ----------
    label:
        Human-readable origin (block class name), used in fallback
        reasons and ``kernel_info`` reports.
    ops:
        The primitives, applied in order.
    sync:
        Called after a kernel run with the stage's final state values
        (flat, in op order) so the owning block's Python-side state
        matches what the reference path would have left behind.
    """

    label: str
    ops: list[KernelOp]
    sync: Callable[[Sequence[float]], None] | None = None

    @property
    def n_state(self) -> int:
        return sum(len(op.state) for op in self.ops)


@dataclass(frozen=True)
class ModeLowering:
    """One modal resonator as exact-ZOH propagator coefficients.

    ``coef`` is the mode's displacement-to-bridge-voltage gain [V/m]
    (sign included); ``x0``/``v0`` the state at the start of the run.
    """

    a11: float
    a12: float
    a21: float
    a22: float
    b1: float
    b2: float
    coef: float
    x0: float
    v0: float


@dataclass(frozen=True)
class KernelRunInfo:
    """How one closed-loop run executed (see also :func:`kernel_info`).

    ``engine`` names the machinery under the backend: ``"cc"`` (the
    C-compiled interpreter), ``"codegen"`` (generated Python source),
    ``"numba"``, or ``"interp"`` (pure-Python interpreter).
    """

    backend: str
    engine: str
    n_samples: int
    n_ops: int
    n_state: int
    lower_seconds: float
    compile_seconds: float
    run_seconds: float
    fallback_reason: str | None = None

    @property
    def samples_per_second(self) -> float:
        if self.run_seconds <= 0.0:
            return float("inf")
        return self.n_samples / self.run_seconds


@dataclass(frozen=True)
class KernelRunResult:
    """Waveforms and final state of one fused kernel run."""

    displacement: np.ndarray
    bridge_voltage: np.ndarray
    limiter_input: np.ndarray
    limiter_output: np.ndarray
    drive_voltage: np.ndarray
    mode_state: list[float]
    info: KernelRunInfo


# -- numba auto-detection ---------------------------------------------------------

_NUMBA_CHECKED = False
_NUMBA = None
_NUMBA_INTERPRET = None


def numba_available() -> bool:
    """True when :mod:`numba` is importable (checked once, lazily)."""
    global _NUMBA_CHECKED, _NUMBA
    if not _NUMBA_CHECKED:
        try:
            import numba  # type: ignore
            _NUMBA = numba
        except ImportError:
            _NUMBA = None
        _NUMBA_CHECKED = True
    return _NUMBA is not None


_CC_CHECKED = False
_CC: str | None = None
_CC_INTERPRET = None
_CC_BUILD_ERROR: str | None = None
_CC_LOCK = threading.Lock()

#: Environment variable overriding compiler discovery (``CC=/bin/false``
#: is the canonical way to force the build to fail and exercise the
#: fallback chain end-to-end).
CC_ENV = "CC"


def cc_available() -> bool:
    """True when a system C compiler is available (checked once, lazily).

    Honors the ``CC`` environment variable: when set, it names the only
    compiler tried; otherwise ``cc``/``gcc``/``clang`` are searched on
    PATH.  The probe is memoized for the process — a missing compiler
    costs one lookup, not one per lowering attempt.
    """
    global _CC_CHECKED, _CC
    if not _CC_CHECKED:
        override = os.environ.get(CC_ENV)
        if override:
            _CC = shutil.which(override)
        else:
            _CC = next(
                (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None
            )
        _CC_CHECKED = True
    return _CC is not None


def reset_compiler_probe() -> None:
    """Forget the memoized compiler probe, build error, and loaded engine.

    For tests that flip the ``CC`` override mid-process; production code
    never needs this.  The on-disk ``.so`` cache is untouched — only the
    in-process memoization resets.
    """
    global _CC_CHECKED, _CC, _CC_INTERPRET, _CC_BUILD_ERROR
    with _CC_LOCK:
        _CC_CHECKED = False
        _CC = None
        _CC_INTERPRET = None
        _CC_BUILD_ERROR = None
    from . import kernel_columnar

    kernel_columnar._reset_engine()


def _cc_engine_blocked() -> str | None:
    """Why the compiled C engine must not even be *tried*, else ``None``.

    Distinct from :func:`cc_available` (no compiler at all — a static
    platform fact): these are runtime verdicts.  A memoized build
    failure means the compiler exists but cannot build the kernel
    (probed once per process, never retried); an open ``kernel-cc``
    circuit breaker means the engine failed repeatedly and is
    quarantined until :func:`~repro.engine.resilience.reset_breakers`.
    """
    if _CC_BUILD_ERROR is not None:
        return f"compiler previously failed: {_CC_BUILD_ERROR}"
    breaker = get_breaker("kernel-cc")
    if not breaker.allow():
        return (
            f"quarantined after {breaker.consecutive} consecutive "
            f"failures ({breaker.last_failure_reason})"
        )
    return None


def cc_usable() -> bool:
    """True when the compiled C engine is available *and* trusted.

    ``cc_available() and`` no memoized build failure ``and`` the
    ``kernel-cc`` circuit breaker is closed — the condition ``auto``
    resolution uses, so a quarantined engine degrades down
    :data:`AUTO_ORDER` instead of being retried forever.
    """
    return cc_available() and _cc_engine_blocked() is None


def resolve_backend(backend: str) -> str:
    """Map a requested backend to the one that will execute.

    ``auto`` follows :data:`AUTO_ORDER`: the fused path when a C
    compiler exists *and is trusted* (see :func:`cc_usable` — a
    memoized build failure or an open ``kernel-cc`` circuit breaker
    degrades past it), numba when it is importable, else the fused
    generated-Python engine.  ``auto`` can never resolve to ``interp``
    (slower than the reference path it would replace).  Requesting
    ``numba`` explicitly on a machine without numba raises
    :class:`~repro.errors.KernelError` (the implicit ``auto`` never
    does).
    """
    if backend not in BACKENDS:
        raise KernelError(
            f"unknown backend {backend!r}; choose one of {BACKENDS}"
        )
    if backend == "auto":
        if cc_usable():
            chosen = "fused"          # AUTO_ORDER[0]: fused:cc
        elif numba_available():
            chosen = "numba"          # AUTO_ORDER[1]
        else:
            chosen = "fused"          # AUTO_ORDER[2]: fused:codegen
        if chosen == "interp":  # pragma: no cover - defensive
            raise KernelError("auto resolution must never pick 'interp'")
        return chosen
    if backend == "numba" and not numba_available():
        raise KernelError(
            "backend 'numba' requested but numba is not installed; "
            "use 'auto' (falls back to 'fused') or install numba"
        )
    return backend


# -- global counters ---------------------------------------------------------------


@dataclass(frozen=True)
class KernelInfo:
    """Snapshot of the module-wide kernel counters."""

    numba_available: bool
    cc_available: bool
    runs: dict[str, int]
    total_samples: int
    fallbacks: int
    last_fallback_reason: str | None
    last_backend: str | None
    last_compile_seconds: float
    last_samples_per_second: float
    batch_runs: int = 0
    batch_instances: int = 0
    last_batch_threads: int = 0
    #: Memoized build failure of the C engine (probed once per process).
    cc_build_error: str | None = None
    #: True while the ``kernel-cc`` circuit breaker quarantines the C engine.
    cc_quarantined: bool = False
    #: Runs that executed below the compiled C engine for a *runtime*
    #: reason (build failure, quarantine) — platform facts like "no
    #: compiler installed" are not degrades.
    degrades: int = 0
    last_degrade_reason: str | None = None
    #: Row batches declined by the overhead heuristic (the instances ran
    #: serial fused instead; ``batch_runs`` does not count them).
    batch_declined: int = 0
    last_decline_reason: str | None = None
    #: Batch dispatch counts per engine family: columnar (SoA C engine
    #: or its NumPy twin) vs row (the PR-4 pthreaded interpreter).
    batch_columnar_runs: int = 0
    batch_row_runs: int = 0
    last_batch_engine: str | None = None
    #: Per-op profile histogram: op name -> instance-samples executed
    #: (one instance running one op for n samples adds n).
    op_samples: dict[str, int] | None = None
    #: Columnar stage-fusion decisions, newest last (one entry per
    #: distinct program shape / fusion mode / hotness verdict).
    fusion_decisions: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        runs = ", ".join(f"{k}={v}" for k, v in sorted(self.runs.items()))
        return (
            f"KernelInfo(runs=[{runs}], samples={self.total_samples}, "
            f"fallbacks={self.fallbacks}, last={self.last_backend}, "
            f"last_rate={self.last_samples_per_second:,.0f}/s)"
        )


_STATS: dict = {}


def reset_kernel_info() -> None:
    """Zero the module-wide kernel counters."""
    _STATS.clear()
    _STATS.update(
        runs={},
        total_samples=0,
        fallbacks=0,
        last_fallback_reason=None,
        last_backend=None,
        last_compile_seconds=0.0,
        last_samples_per_second=0.0,
        batch_runs=0,
        batch_instances=0,
        last_batch_threads=0,
        degrades=0,
        last_degrade_reason=None,
        batch_declined=0,
        last_decline_reason=None,
        batch_columnar_runs=0,
        batch_row_runs=0,
        last_batch_engine=None,
        op_samples={},
        fusion_decisions=[],
    )


reset_kernel_info()


def kernel_info() -> KernelInfo:
    """Backend usage, compile time, and throughput counters."""
    return KernelInfo(
        numba_available=numba_available(),
        cc_available=cc_available(),
        runs=dict(_STATS["runs"]),
        total_samples=_STATS["total_samples"],
        fallbacks=_STATS["fallbacks"],
        last_fallback_reason=_STATS["last_fallback_reason"],
        last_backend=_STATS["last_backend"],
        last_compile_seconds=_STATS["last_compile_seconds"],
        last_samples_per_second=_STATS["last_samples_per_second"],
        batch_runs=_STATS["batch_runs"],
        batch_instances=_STATS["batch_instances"],
        last_batch_threads=_STATS["last_batch_threads"],
        cc_build_error=_CC_BUILD_ERROR,
        cc_quarantined=not get_breaker("kernel-cc").allow(),
        degrades=_STATS["degrades"],
        last_degrade_reason=_STATS["last_degrade_reason"],
        batch_declined=_STATS["batch_declined"],
        last_decline_reason=_STATS["last_decline_reason"],
        batch_columnar_runs=_STATS["batch_columnar_runs"],
        batch_row_runs=_STATS["batch_row_runs"],
        last_batch_engine=_STATS["last_batch_engine"],
        op_samples=dict(_STATS["op_samples"]),
        fusion_decisions=tuple(_STATS["fusion_decisions"]),
    )


def record_run(
    backend: str, n_samples: int, run_seconds: float, compile_seconds: float = 0.0
) -> None:
    """Account one closed-loop run (kernel backends call this internally)."""
    _STATS["runs"][backend] = _STATS["runs"].get(backend, 0) + 1
    _STATS["total_samples"] += int(n_samples)
    _STATS["last_backend"] = backend
    _STATS["last_compile_seconds"] = float(compile_seconds)
    if run_seconds > 0.0:
        _STATS["last_samples_per_second"] = n_samples / run_seconds


def record_batch(
    n_instances: int, threads: int,
    total_samples: int = 0, run_seconds: float = 0.0,
    engine: str = "row",
) -> None:
    """Account one batched kernel call (:class:`KernelBatch` internal).

    ``engine`` is the batch machinery that dispatched: ``"row"``,
    ``"columnar"``/``"columnar-np"``, or ``"solo"`` (the no-compiler
    per-instance fallback, which still counts as a batch run).
    """
    _STATS["batch_runs"] += 1
    _STATS["batch_instances"] += int(n_instances)
    _STATS["last_batch_threads"] = int(threads)
    _STATS["last_batch_engine"] = str(engine)
    if engine in ("columnar", "columnar-np"):
        _STATS["batch_columnar_runs"] += 1
    elif engine == "row":
        _STATS["batch_row_runs"] += 1
    if run_seconds > 0.0 and total_samples:
        _STATS["last_samples_per_second"] = total_samples / run_seconds


def record_batch_declined(n_instances: int, reason: str) -> None:
    """Account one batch the overhead heuristic sent to serial fused."""
    _STATS["batch_declined"] += 1
    _STATS["last_decline_reason"] = str(reason)
    logger.info(
        "kernel batch declined for %d instances (%s); running serial fused",
        n_instances, reason,
    )


#: Op-kind index -> display name (order matches the OP_* constants).
OP_NAMES = (
    "BIAS", "GAIN", "SOS", "RC", "CLIP", "TANH", "DIFF",
    "DEADZONE", "SLEW", "LATCH", "TAP_LIMIN", "TAP_LIMOUT", "TAP_DRIVE",
)

#: Per-program-shape instance-sample counters (never reset by
#: :func:`reset_kernel_info` — like the ``.so`` cache, the profile is a
#: process-lifetime memo, and it drives the columnar fusion pass).
_PROGRAM_PROFILE: dict[tuple, int] = {}


def record_op_profile(kinds: Sequence[int], samples: int) -> None:
    """Add ``samples`` instance-samples to each op's profile counter."""
    hist = _STATS["op_samples"]
    for k in kinds:
        name = OP_NAMES[k]
        hist[name] = hist.get(name, 0) + int(samples)


def _note_program_samples(signature: tuple, samples: int) -> int:
    """Accumulate a program shape's lifetime sample count; return it."""
    total = _PROGRAM_PROFILE.get(signature, 0) + int(samples)
    _PROGRAM_PROFILE[signature] = total
    return total


def record_fusion_decision(decision: dict) -> None:
    """Append one columnar fusion decision (capped, newest last)."""
    decisions = _STATS["fusion_decisions"]
    decisions.append(dict(decision))
    if len(decisions) > 32:
        del decisions[0]


def record_fallback(reason: str) -> None:
    """Account one lowering failure (loop simulators call this)."""
    _STATS["fallbacks"] += 1
    _STATS["last_fallback_reason"] = str(reason)
    logger.info("fused kernel fallback to reference path: %s", reason)


def record_degrade(reason: str) -> None:
    """Account one run that degraded below the compiled C engine.

    Counted whenever a run wanted AUTO_ORDER[0] (``fused:cc``) but
    executed further down the order for a *runtime* reason — a failed
    build, an injected compile fault, or a quarantined engine.
    """
    _STATS["degrades"] += 1
    _STATS["last_degrade_reason"] = str(reason)
    logger.info("kernel degraded down AUTO_ORDER: %s", reason)


# -- block lowering ---------------------------------------------------------------


def _defining_class(cls: type, name: str) -> type | None:
    for c in cls.__mro__:
        if name in c.__dict__:
            return c
    return None


def lower_block(block) -> KernelStage:
    """A block's :class:`KernelStage`, with safety checks.

    Refuses (raising :class:`LoweringError`) when the block's class does
    not export ``lower_stage``, when ``step`` was overridden without a
    matching ``lower_stage`` (an unknown subclass whose semantics the
    inherited lowering would silently misrepresent), or when ``step``
    was monkey-patched on the instance.
    """
    cls = type(block)
    if "step" in vars(block):
        raise LoweringError(
            f"{cls.__name__} instance has a patched step(); not lowerable"
        )
    if _defining_class(cls, "lower_stage") is None:
        raise LoweringError(
            f"{cls.__name__} does not export a kernel stage"
        )
    if _defining_class(cls, "step") is not _defining_class(cls, "lower_stage"):
        raise LoweringError(
            f"{cls.__name__} overrides step() without a matching "
            "lower_stage(); refusing to lower"
        )
    return block.lower_stage()


def compose_stages(label: str, stages: Sequence[KernelStage]) -> KernelStage:
    """Concatenate sub-stages into one stage (used by composite blocks).

    The composite's ``sync`` splits the final state back across the
    sub-stages' own ``sync`` hooks.
    """
    stages = list(stages)
    ops = [op for stage in stages for op in stage.ops]

    def sync(final: Sequence[float]) -> None:
        offset = 0
        for stage in stages:
            width = stage.n_state
            if stage.sync is not None:
                stage.sync(final[offset:offset + width])
            offset += width

    return KernelStage(label=label, ops=ops, sync=sync)


# -- the fused kernel --------------------------------------------------------------


class FusedLoopKernel:
    """The whole Fig. 5 loop as one flat stage program.

    Parameters
    ----------
    pre_stages / limiter_stages / buffer_stages:
        Lowered stages of the chain segments up to the limiter input,
        through the limiter, and through the output buffer — the three
        taps a :class:`~repro.feedback.loop.LoopRecord` captures.
    modes:
        One :class:`ModeLowering` per mechanical mode (>= 1); the bridge
        voltage is the coefficient-weighted sum of mode displacements.
    act_r / act_imax / act_fpc:
        Linear Lorentz actuator: coil resistance [Ohm], electromigration
        current limit [A], and force per ampere [N/A].
    include_taps:
        When False the limiter/drive tap ops are omitted — used by
        open-loop (driven) programs that only need the displacement and
        bridge waveforms; batched runs then skip allocating the three
        unused tap output matrices.
    """

    def __init__(
        self,
        pre_stages: Sequence[KernelStage],
        limiter_stages: Sequence[KernelStage],
        buffer_stages: Sequence[KernelStage],
        modes: Sequence[ModeLowering],
        act_r: float,
        act_imax: float,
        act_fpc: float,
        include_taps: bool = True,
    ) -> None:
        if not modes:
            raise KernelError("the kernel needs at least one mechanical mode")
        self.stages = list(pre_stages) + list(limiter_stages) + list(buffer_stages)
        self.modes = list(modes)
        self.act_r = float(act_r)
        self.act_imax = float(act_imax)
        self.act_fpc = float(act_fpc)

        kinds: list[int] = []
        params: list[tuple[float, ...]] = []
        sidx: list[int] = []
        state: list[float] = []
        slices: list[tuple[KernelStage, int, int]] = []

        def append_stage(stage: KernelStage) -> None:
            start = len(state)
            for op in stage.ops:
                kinds.append(op.kind)
                p = tuple(float(x) for x in op.params)
                params.append(p + (0.0,) * (_N_PARAMS - len(p)))
                sidx.append(len(state))
                state.extend(float(s) for s in op.state)
            slices.append((stage, start, len(state)))

        def append_tap(kind: int) -> None:
            kinds.append(kind)
            params.append((0.0,) * _N_PARAMS)
            sidx.append(0)

        for stage in pre_stages:
            append_stage(stage)
        if include_taps:
            append_tap(OP_TAP_LIMIN)
        for stage in limiter_stages:
            append_stage(stage)
        if include_taps:
            append_tap(OP_TAP_LIMOUT)
        for stage in buffer_stages:
            append_stage(stage)
        if include_taps:
            append_tap(OP_TAP_DRIVE)

        self._kinds = kinds
        self._params = params
        self._sidx = sidx
        self._state0 = state
        self._slices = slices
        self._fused_fn = None

    @property
    def n_ops(self) -> int:
        return len(self._kinds)

    @property
    def n_state(self) -> int:
        return len(self._state0)

    @property
    def has_taps(self) -> bool:
        return any(
            k in (OP_TAP_LIMIN, OP_TAP_LIMOUT, OP_TAP_DRIVE)
            for k in self._kinds
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        n: int,
        noise: np.ndarray,
        backend: str = "fused",
    ) -> KernelRunResult:
        """Execute the program for ``n`` samples.

        ``noise`` is the per-sample bridge-noise waveform (zeros when
        noise is disabled).  Backends: ``fused`` (C-compiled program
        interpreter, or generated Python without a C compiler),
        ``numba`` (JIT of the array interpreter), ``interp`` (the same
        interpreter in pure Python — the semantics-verification path).
        """
        if backend not in ("fused", "numba", "interp"):
            raise KernelError(
                f"kernel backend must be fused/numba/interp, got {backend!r}"
            )
        timer = StageTimer()
        state = list(self._state0)
        mode_state = [c for m in self.modes for c in (m.x0, m.v0)]

        engine = backend
        fn_arrays = None
        if backend == "fused":
            if cc_available():
                breaker = get_breaker("kernel-cc")
                blocked = _cc_engine_blocked()
                if blocked is None:
                    try:
                        with timer.stage("compile"):
                            fn_arrays = _cc_interpreter()
                        engine = "cc"
                        breaker.record_success()
                    except KernelError as err:
                        breaker.record_failure(str(err))
                        record_degrade(str(err))
                        logger.warning(
                            "C kernel engine unavailable (%s); "
                            "using generated Python", err,
                        )
                else:
                    record_degrade(blocked)
                    logger.info(
                        "C kernel engine skipped (%s); "
                        "using generated Python", blocked,
                    )
        elif backend == "numba":
            with timer.stage("compile"):
                fn_arrays = _numba_interpreter()
        else:
            fn_arrays = _interpret_program
            timer.record("compile", 0.0)

        if fn_arrays is not None:
            arrs = self._program_arrays()
            state_arr = np.asarray(state, dtype=float)
            mode_coef = np.asarray(
                [c for m in self.modes
                 for c in (m.a11, m.a12, m.a21, m.a22, m.b1, m.b2, m.coef)],
                dtype=float,
            )
            mode_arr = np.asarray(mode_state, dtype=float)
            noise_arr = np.ascontiguousarray(noise, dtype=float)
            outs = [np.empty(n) for _ in range(5)]
            with timer.stage("run"):
                fn_arrays(
                    n, len(self.modes), *arrs, state_arr, mode_coef, mode_arr,
                    noise_arr, self.act_r, self.act_imax, self.act_fpc, *outs,
                )
            state = [float(s) for s in state_arr]
            mode_state = [float(s) for s in mode_arr]
            arrays = outs
        else:
            engine = "codegen"
            with timer.stage("compile"):
                fn = self._fused_function()
            out = _allocate_lists(n)
            with timer.stage("run"):
                fn(n, state, mode_state, noise.tolist(), *out)
            arrays = [np.asarray(o, dtype=float) for o in out]

        self._sync_stages(state)
        info = KernelRunInfo(
            backend=backend,
            engine=engine,
            n_samples=n,
            n_ops=self.n_ops,
            n_state=self.n_state,
            lower_seconds=0.0,
            compile_seconds=timer.seconds("compile"),
            run_seconds=timer.seconds("run"),
        )
        record_op_profile(self._kinds, n)
        _note_program_samples(batch_signature(self), n)
        record_run(backend, n, timer.seconds("run"), timer.seconds("compile"))
        return KernelRunResult(
            displacement=arrays[0],
            bridge_voltage=arrays[1],
            limiter_input=arrays[2],
            limiter_output=arrays[3],
            drive_voltage=arrays[4],
            mode_state=[float(s) for s in mode_state],
            info=info,
        )

    def _sync_stages(self, final_state: Sequence[float]) -> None:
        for stage, start, end in self._slices:
            if stage.sync is not None:
                stage.sync(final_state[start:end])

    def _program_arrays(self):
        kinds = np.asarray(self._kinds, dtype=np.int64)
        p = np.asarray(self._params, dtype=float).reshape(-1, _N_PARAMS)
        cols = tuple(np.ascontiguousarray(p[:, j]) for j in range(_N_PARAMS))
        sidx = np.asarray(self._sidx, dtype=np.int64)
        return (kinds,) + cols + (sidx,)

    # -- generated-Python backend -------------------------------------------------

    def _fused_function(self):
        if self._fused_fn is None:
            source = _generate_source(
                self._kinds, self._params, self._sidx,
                len(self._state0), self.modes,
                self.act_r, self.act_imax, self.act_fpc,
            )
            self._fused_fn = _compile_source(source)
        return self._fused_fn


def _allocate_lists(n: int):
    return tuple([0.0] * n for _ in range(5))


# -- batched multi-instance execution ----------------------------------------------
#
# A whole sweep as ONE compiled call: N independent instances of the
# same program *shape* (op kinds + state layout), each with its own
# parameter/state/noise/actuator block, partitioned across C pthreads.
# Per-instance arithmetic is the exact solo interpreter loop, so every
# instance's waveforms are bit-identical to its solo fused run.

#: Hard ceiling on C-level batch threads (matches the C entry point).
MAX_BATCH_THREADS = 64

#: Environment variable capping C-level batch threads.  Process-pool
#: sweep workers set it to "1" so a batched kernel inside an outer
#: ``BatchExecutor(backend="process")`` never multiplies parallelism.
KERNEL_THREADS_ENV = "REPRO_KERNEL_THREADS"


def kernel_batch_threads(
    requested: int | None = None, n_instances: int | None = None
) -> int:
    """Resolve the C-level thread count for a batched kernel call.

    ``requested`` wins when given; otherwise the CPU count.  The
    ``REPRO_KERNEL_THREADS`` environment variable acts as a *ceiling*
    on either (that is how process-pool workers force single-threaded
    C, see :class:`~repro.engine.executor.BatchExecutor`).  The result
    is clamped to ``[1, min(n_instances, MAX_BATCH_THREADS)]``.
    """
    threads = int(requested) if requested is not None else (os.cpu_count() or 1)
    env = os.environ.get(KERNEL_THREADS_ENV, "").strip()
    if env:
        try:
            threads = min(threads, int(env))
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", KERNEL_THREADS_ENV, env
            )
    threads = max(1, threads)
    if n_instances is not None:
        threads = min(threads, max(1, int(n_instances)))
    return min(threads, MAX_BATCH_THREADS)


def batch_signature(kernel: FusedLoopKernel) -> tuple:
    """The program *shape* a batch must share: op kinds, state-index
    layout, mode count and state width.  Kernels with equal signatures
    differ only in per-instance numeric blocks and can run in one
    :class:`KernelBatch`."""
    return (
        tuple(kernel._kinds),
        tuple(kernel._sidx),
        len(kernel.modes),
        kernel.n_state,
    )


class KernelBatch:
    """N same-shape kernel instances executed as one compiled call.

    Parameters
    ----------
    kernels:
        The per-instance :class:`FusedLoopKernel` programs; all must
        share one :func:`batch_signature` (group heterogeneous sweeps
        by signature first).
    ns:
        Per-instance sample counts (durations may differ; shorter
        instances are padded at the batch level and masked on return).
    noises:
        Per-instance bridge-noise (or drive-force) waveforms, each at
        least ``ns[i]`` samples.

    ``run()`` executes every instance through the C ``run_program_batch``
    entry point when a compiler is available (pthread-partitioned, no
    shared mutable state) and otherwise falls back to per-instance solo
    fused runs — both bit-identical to solo execution, which the golden
    suite pins with ``np.array_equal``.
    """

    def __init__(
        self,
        kernels: Sequence[FusedLoopKernel],
        ns: Sequence[int],
        noises: Sequence[np.ndarray],
    ) -> None:
        kernels = list(kernels)
        if not kernels:
            raise KernelError("a kernel batch needs at least one instance")
        if not (len(kernels) == len(ns) == len(noises)):
            raise KernelError(
                f"mismatched batch lengths: {len(kernels)} kernels, "
                f"{len(ns)} durations, {len(noises)} noise waveforms"
            )
        signature = batch_signature(kernels[0])
        for k in kernels[1:]:
            if batch_signature(k) != signature:
                raise KernelError(
                    "kernel batch mixes program shapes; group instances "
                    "by batch_signature() first"
                )
        self.ns = [int(n) for n in ns]
        self.noises = [np.ascontiguousarray(w, dtype=float) for w in noises]
        for i, (n, w) in enumerate(zip(self.ns, self.noises)):
            if n < 1:
                raise KernelError(f"instance {i}: sample count must be >= 1")
            if len(w) < n:
                raise KernelError(
                    f"instance {i}: noise waveform has {len(w)} samples, "
                    f"needs {n}"
                )
        self.kernels = kernels
        self.signature = signature

    @property
    def n_instances(self) -> int:
        return len(self.kernels)

    @property
    def n_max(self) -> int:
        return max(self.ns)

    def run(
        self, threads: int | None = None, engine: str = "auto"
    ) -> list[KernelRunResult]:
        """Execute all instances; one :class:`KernelRunResult` each, in
        input order.

        ``engine`` picks the batch machinery: ``"row"`` is the
        pthreaded per-instance interpreter (bit-identical to solo fused
        runs), ``"columnar"`` the vectorized structure-of-arrays engine
        (within-tolerance contract — see ``docs/FASTPATH.md``), and
        ``"auto"`` follows :data:`BATCH_AUTO_ORDER`: columnar for wide
        batches when the C engine is trusted (or ``REPRO_COLUMNAR=1``),
        the row engine otherwise, with the decline heuristic sending
        narrow batches of long programs straight to serial fused.
        """
        if engine not in BATCH_ENGINES:
            raise KernelError(
                f"unknown batch engine {engine!r}; "
                f"choose one of {BATCH_ENGINES}"
            )
        threads_used = kernel_batch_threads(threads, self.n_instances)
        override = _columnar_override()
        explicit = engine == "columnar" or override is True
        if engine == "auto":
            choice, reason = self._resolve_engine(threads_used, override)
        else:
            choice, reason = engine, "requested"

        if choice == "columnar":
            results = self._run_columnar(threads_used, explicit)
            if results is not None:
                return results
            choice = "row"  # columnar C engine degraded: row path next

        if choice == "declined":
            record_batch_declined(self.n_instances, reason)
            return [
                kernel.run(n, noise, backend="fused")
                for kernel, n, noise in zip(self.kernels, self.ns, self.noises)
            ]

        return self._run_row(threads_used)

    def _resolve_engine(
        self, threads_used: int, override: bool | None
    ) -> tuple[str, str]:
        """``engine="auto"`` resolution (see :data:`BATCH_AUTO_ORDER`)."""
        if override is True:
            return "columnar", f"forced by {COLUMNAR_ENV}"
        cc = cc_usable()
        if (
            override is not False
            and cc
            and self.n_instances >= _columnar_min_instances()
        ):
            return "columnar", (
                f"{self.n_instances} instances >= "
                f"{_columnar_min_instances()}"
            )
        if (
            cc
            and threads_used == 1
            and self.n_instances < _columnar_min_instances()
            and min(self.ns) >= BATCH_DECLINE_MIN_SAMPLES
        ):
            return "declined", (
                f"{self.n_instances} instances x >= {min(self.ns)} "
                "samples at 1 thread: batch dispatch would not beat "
                "serial fused"
            )
        return "row", "default"

    def _run_columnar(
        self, threads_used: int, explicit: bool
    ) -> list[KernelRunResult] | None:
        """Dispatch through the columnar SoA engine.

        Returns ``None`` when the compiled columnar engine is
        unavailable and the request was implicit (``auto``) — the
        caller then degrades to the bit-identical row path.  An
        explicit request (``engine="columnar"`` / ``REPRO_COLUMNAR=1``)
        falls back to the NumPy columnar twin instead, keeping the
        columnar tolerance contract rather than silently switching it.
        """
        from . import kernel_columnar

        timer = StageTimer()
        fn = None
        if cc_available():
            blocked = _cc_engine_blocked()
            if blocked is None:
                breaker = get_breaker("kernel-cc")
                try:
                    with timer.stage("compile"):
                        fn = kernel_columnar.columnar_interpreter()
                    breaker.record_success()
                except KernelError as err:
                    breaker.record_failure(str(err))
                    record_degrade(str(err))
                    logger.warning(
                        "columnar C engine unavailable (%s); using %s",
                        err, "NumPy twin" if explicit else "row batch",
                    )
            else:
                record_degrade(blocked)
                logger.info("columnar C engine skipped (%s)", blocked)
        if fn is not None:
            return kernel_columnar.run_columnar_cc(
                self, fn, threads_used, timer
            )
        if explicit:
            return kernel_columnar.run_columnar_numpy(self, timer)
        return None

    def _run_row(self, threads_used: int) -> list[KernelRunResult]:
        """The PR-4 row-major pthreaded batch (bit-identical to solo)."""
        timer = StageTimer()
        batch_fn = None
        if cc_available():
            breaker = get_breaker("kernel-cc")
            blocked = _cc_engine_blocked()
            if blocked is None:
                try:
                    with timer.stage("compile"):
                        batch_fn = _cc_batch_interpreter()
                    breaker.record_success()
                except KernelError as err:
                    breaker.record_failure(str(err))
                    record_degrade(str(err))
                    logger.warning(
                        "C batch engine unavailable (%s); "
                        "running instances solo", err,
                    )
            else:
                record_degrade(blocked)
                logger.info(
                    "C batch engine skipped (%s); "
                    "running instances solo", blocked,
                )
        if batch_fn is None:
            results = [
                kernel.run(n, noise, backend="fused")
                for kernel, n, noise in zip(self.kernels, self.ns, self.noises)
            ]
            record_batch(self.n_instances, 1, engine="solo")
            return results
        return self._run_cc(batch_fn, threads_used, timer)

    def _run_cc(self, batch_fn, threads_used: int, timer: StageTimer):
        n_inst = self.n_instances
        n_max = self.n_max
        rep = self.kernels[0]
        n_ops, n_modes, n_state = rep.n_ops, len(rep.modes), rep.n_state

        kinds = np.asarray(rep._kinds, dtype=np.int64)
        sidx = np.asarray(rep._sidx, dtype=np.int64)
        params = np.asarray(
            [k._params for k in self.kernels], dtype=float
        ).reshape(n_inst, n_ops, _N_PARAMS)
        p_cols = tuple(
            np.ascontiguousarray(params[:, :, j]) for j in range(_N_PARAMS)
        )
        state = np.asarray(
            [k._state0 for k in self.kernels], dtype=float
        ).reshape(n_inst, n_state)
        mode_coef = np.asarray(
            [[c for m in k.modes
              for c in (m.a11, m.a12, m.a21, m.a22, m.b1, m.b2, m.coef)]
             for k in self.kernels], dtype=float,
        ).reshape(n_inst, 7 * n_modes)
        mode_state = np.asarray(
            [[c for m in k.modes for c in (m.x0, m.v0)]
             for k in self.kernels], dtype=float,
        ).reshape(n_inst, 2 * n_modes)
        act = np.asarray(
            [[k.act_r, k.act_imax, k.act_fpc] for k in self.kernels],
            dtype=float,
        )
        ns_arr = np.asarray(self.ns, dtype=np.int64)
        noise = np.zeros((n_inst, n_max))
        for i, w in enumerate(self.noises):
            noise[i, :len(w)] = w

        out_disp = np.empty((n_inst, n_max))
        out_bridge = np.empty((n_inst, n_max))
        if rep.has_taps:
            aux_stride = n_max
            aux = [np.empty((n_inst, n_max)) for _ in range(3)]
        else:
            aux_stride = 0
            aux = [np.zeros(1) for _ in range(3)]

        with timer.stage("run"):
            batch_fn(
                n_inst, threads_used, n_max, aux_stride,
                n_modes, n_ops, n_state,
                ns_arr, kinds, sidx, *p_cols,
                state, mode_coef, mode_state, noise, act,
                out_disp, out_bridge, *aux,
            )

        run_seconds = timer.seconds("run")
        compile_seconds = timer.seconds("compile")
        total = sum(self.ns)
        record_op_profile(rep._kinds, total)
        _note_program_samples(self.signature, total)
        results = []
        for i, kernel in enumerate(self.kernels):
            n_i = self.ns[i]
            kernel._sync_stages([float(s) for s in state[i]])
            if rep.has_taps:
                limin = aux[0][i, :n_i]
                limout = aux[1][i, :n_i]
                drive = aux[2][i, :n_i]
            else:
                # tapless program: the taps were never computed — one
                # shared zero row stands in for all three waveforms
                limin = limout = drive = np.zeros(n_i)
            info = KernelRunInfo(
                backend="fused",
                engine="cc-batch",
                n_samples=n_i,
                n_ops=n_ops,
                n_state=n_state,
                lower_seconds=0.0,
                compile_seconds=compile_seconds if i == 0 else 0.0,
                run_seconds=run_seconds if i == 0 else 0.0,
            )
            record_run("fused", n_i, 0.0, 0.0)
            # row slices are views into the batch matrices (no copy);
            # they keep the matrices alive, which callers slicing a few
            # instances out of a huge batch may np.ascontiguousarray()
            results.append(KernelRunResult(
                displacement=out_disp[i, :n_i],
                bridge_voltage=out_bridge[i, :n_i],
                limiter_input=limin,
                limiter_output=limout,
                drive_voltage=drive,
                mode_state=[float(s) for s in mode_state[i]],
                info=info,
            ))
        record_batch(n_inst, threads_used, total, run_seconds)
        return results


# -- code generation ---------------------------------------------------------------

_SOURCE_CACHE: dict[str, Callable] = {}
_SOURCE_CACHE_MAX = 256


def _lit(x: float) -> str:
    """An exact round-trip literal for a float, parenthesized if signed."""
    r = repr(float(x))
    return f"({r})" if r.startswith("-") else r


def _generate_source(kinds, params, sidx, n_state, modes, act_r, act_imax, act_fpc):
    """Specialized straight-line inner loop for one stage program.

    Coefficients are embedded as exact literals; state lives in local
    variables; the only per-sample indexing is the five output writes
    and the noise read.
    """
    lines = [
        "def _fused(n, state, mode_state, noise, out_disp, out_bridge, "
        "out_limin, out_limout, out_drive):",
        "    _tanh = tanh",
    ]
    for s in range(n_state):
        lines.append(f"    s{s} = state[{s}]")
    for m in range(len(modes)):
        lines.append(f"    mx{m} = mode_state[{2 * m}]")
        lines.append(f"    mv{m} = mode_state[{2 * m + 1}]")
    lines.append("    i = 0")
    lines.append("    while i < n:")

    # bridge: coefficient-weighted mode sum plus the noise sample
    if len(modes) == 1:
        lines.append(f"        v = {_lit(modes[0].coef)}*mx0 + noise[i]")
    else:
        lines.append(f"        v = {_lit(modes[0].coef)}*mx0")
        for m in range(1, len(modes)):
            lines.append(f"        v = v + {_lit(modes[m].coef)}*mx{m}")
        lines.append("        v = v + noise[i]")
    lines.append("        out_bridge[i] = v")

    for j, kind in enumerate(kinds):
        p = params[j]
        s = sidx[j]
        if kind == OP_BIAS:
            lines.append(f"        v = v + {_lit(p[0])}")
        elif kind == OP_GAIN:
            lines.append(f"        v = v*{_lit(p[0])}")
        elif kind == OP_SOS:
            lines.append(f"        y = {_lit(p[0])}*v + s{s}")
            lines.append(
                f"        s{s} = {_lit(p[1])}*v - {_lit(p[3])}*y + s{s + 1}"
            )
            lines.append(f"        s{s + 1} = {_lit(p[2])}*v - {_lit(p[4])}*y")
            lines.append("        v = y")
        elif kind == OP_RC:
            lines.append(f"        s{s} = s{s} + {_lit(p[0])}*(v - s{s})")
            lines.append(f"        v = s{s}")
        elif kind == OP_CLIP:
            lines.append(f"        if v < {_lit(p[0])}: v = {_lit(p[0])}")
            lines.append(f"        elif v > {_lit(p[1])}: v = {_lit(p[1])}")
        elif kind == OP_TANH:
            lines.append(
                f"        v = {_lit(p[1])}*_tanh({_lit(p[0])}*v/{_lit(p[1])})"
            )
        elif kind == OP_DIFF:
            lines.append(f"        y = (v - s{s})*{_lit(p[0])}")
            lines.append(f"        s{s} = v")
            lines.append("        v = y")
        elif kind == OP_DEADZONE:
            lines.append(f"        if v <= {_lit(p[0])} and v >= {_lit(p[1])}:")
            lines.append("            v = 0.0")
            lines.append(f"        elif v > 0.0: v = v - {_lit(p[0])}")
            lines.append(f"        else: v = v - {_lit(p[1])}")
        elif kind == OP_SLEW:
            lines.append(f"        y = v - s{s}")
            lines.append(f"        if y > {_lit(p[0])}: v = s{s} + {_lit(p[0])}")
            lines.append(
                f"        elif y < {_lit(p[1])}: v = s{s} + {_lit(p[1])}"
            )
            lines.append(f"        s{s} = v")
        elif kind == OP_LATCH:
            lines.append(f"        s{s} = v")
        elif kind == OP_TAP_LIMIN:
            lines.append("        out_limin[i] = v")
        elif kind == OP_TAP_LIMOUT:
            lines.append("        out_limout[i] = v")
        elif kind == OP_TAP_DRIVE:
            lines.append("        out_drive[i] = v")
        else:  # pragma: no cover - defensive
            raise KernelError(f"unknown op kind {kind}")

    # actuator: current limit, then force per ampere
    lines.append(f"        cur = v/{_lit(act_r)}")
    lines.append(f"        if cur > {_lit(act_imax)}: cur = {_lit(act_imax)}")
    lines.append(
        f"        elif cur < {_lit(-act_imax)}: cur = {_lit(-act_imax)}"
    )
    lines.append(f"        f = {_lit(act_fpc)}*cur")

    # exact-ZOH mode propagation
    for m, mode in enumerate(modes):
        lines.append(f"        x0 = mx{m}")
        lines.append(f"        v0 = mv{m}")
        lines.append(
            f"        mx{m} = {_lit(mode.a11)}*x0 + {_lit(mode.a12)}*v0 "
            f"+ {_lit(mode.b1)}*f"
        )
        lines.append(
            f"        mv{m} = {_lit(mode.a21)}*x0 + {_lit(mode.a22)}*v0 "
            f"+ {_lit(mode.b2)}*f"
        )
    lines.append("        out_disp[i] = mx0")
    lines.append("        i += 1")

    for s in range(n_state):
        lines.append(f"    state[{s}] = s{s}")
    for m in range(len(modes)):
        lines.append(f"    mode_state[{2 * m}] = mx{m}")
        lines.append(f"    mode_state[{2 * m + 1}] = mv{m}")
    return "\n".join(lines) + "\n"


def _compile_source(source: str) -> Callable:
    fn = _SOURCE_CACHE.get(source)
    if fn is None:
        # repr(float("inf")) in _lit() emits the bare names inf/nan
        namespace = {"tanh": math.tanh, "inf": math.inf, "nan": math.nan}
        exec(compile(source, "<repro.engine.kernel generated>", "exec"), namespace)
        fn = namespace["_fused"]
        if len(_SOURCE_CACHE) >= _SOURCE_CACHE_MAX:
            _SOURCE_CACHE.pop(next(iter(_SOURCE_CACHE)))
        _SOURCE_CACHE[source] = fn
    return fn


# -- generic array interpreter (the numba-compiled program) ------------------------


def _interpret_program(
    n, n_modes, kinds, p0, p1, p2, p3, p4, sidx,
    state, mode_coef, mode_state, noise,
    act_r, act_imax, act_fpc,
    out_disp, out_bridge, out_limin, out_limout, out_drive,
):
    """Interpret a stage program over typed arrays.

    Written in a numba-compatible subset of Python (while loops, scalar
    arithmetic, flat indexing only); ``numba.njit`` compiles exactly
    this function for the ``numba`` backend, and the ``interp`` backend
    runs it as-is so its semantics are testable without numba.  Every
    op replicates the arithmetic of the generated fused source.
    """
    n_ops = len(kinds)
    i = 0
    while i < n:
        if n_modes == 1:
            v = mode_coef[6] * mode_state[0] + noise[i]
        else:
            v = mode_coef[6] * mode_state[0]
            m = 1
            while m < n_modes:
                v = v + mode_coef[7 * m + 6] * mode_state[2 * m]
                m += 1
            v = v + noise[i]
        out_bridge[i] = v
        j = 0
        while j < n_ops:
            k = kinds[j]
            if k == 2:  # OP_SOS
                p = sidx[j]
                y = p0[j] * v + state[p]
                state[p] = p1[j] * v - p3[j] * y + state[p + 1]
                state[p + 1] = p2[j] * v - p4[j] * y
                v = y
            elif k == 1:  # OP_GAIN
                v = v * p0[j]
            elif k == 0:  # OP_BIAS
                v = v + p0[j]
            elif k == 3:  # OP_RC
                p = sidx[j]
                state[p] = state[p] + p0[j] * (v - state[p])
                v = state[p]
            elif k == 4:  # OP_CLIP
                if v < p0[j]:
                    v = p0[j]
                elif v > p1[j]:
                    v = p1[j]
            elif k == 5:  # OP_TANH
                v = p1[j] * math.tanh(p0[j] * v / p1[j])
            elif k == 6:  # OP_DIFF
                p = sidx[j]
                y = (v - state[p]) * p0[j]
                state[p] = v
                v = y
            elif k == 7:  # OP_DEADZONE
                if v <= p0[j] and v >= p1[j]:
                    v = 0.0
                elif v > 0.0:
                    v = v - p0[j]
                else:
                    v = v - p1[j]
            elif k == 8:  # OP_SLEW
                p = sidx[j]
                y = v - state[p]
                if y > p0[j]:
                    v = state[p] + p0[j]
                elif y < p1[j]:
                    v = state[p] + p1[j]
                state[p] = v
            elif k == 9:  # OP_LATCH
                state[sidx[j]] = v
            elif k == 10:  # OP_TAP_LIMIN
                out_limin[i] = v
            elif k == 11:  # OP_TAP_LIMOUT
                out_limout[i] = v
            else:  # OP_TAP_DRIVE
                out_drive[i] = v
            j += 1
        cur = v / act_r
        if cur > act_imax:
            cur = act_imax
        elif cur < -act_imax:
            cur = -act_imax
        f = act_fpc * cur
        m = 0
        while m < n_modes:
            b = 7 * m
            x0 = mode_state[2 * m]
            v0 = mode_state[2 * m + 1]
            mode_state[2 * m] = (
                mode_coef[b] * x0 + mode_coef[b + 1] * v0 + mode_coef[b + 4] * f
            )
            mode_state[2 * m + 1] = (
                mode_coef[b + 2] * x0 + mode_coef[b + 3] * v0
                + mode_coef[b + 5] * f
            )
            m += 1
        out_disp[i] = mode_state[0]
        i += 1


def _numba_interpreter():
    """The njit-compiled interpreter (compiled once, on first use)."""
    global _NUMBA_INTERPRET
    if not numba_available():  # pragma: no cover - numba-only
        raise KernelError("numba is not installed")
    if _NUMBA_INTERPRET is None:  # pragma: no cover - numba-only
        t0 = time.perf_counter()
        _NUMBA_INTERPRET = _NUMBA.njit(cache=False, fastmath=False)(
            _interpret_program
        )
        logger.info(
            "numba kernel interpreter compiled in %.2f s",
            time.perf_counter() - t0,
        )
    return _NUMBA_INTERPRET


# -- C-compiled interpreter (the fused backend's fast engine) ----------------------
#
# A literal C translation of ``_interpret_program``, compiled once per
# machine with strict IEEE flags (``-ffp-contract=off`` forbids FMA
# contraction, no fast-math) so every double operation rounds exactly
# like the Python reference — the golden suite pins this bit-for-bit.
# The shared object is cached on disk keyed by the source hash; a cache
# hit makes "compile time" a dlopen.

_C_SOURCE = """
#include <math.h>

void run_program(
    long n, long n_modes, long n_ops,
    const long *kinds, const double *p0, const double *p1, const double *p2,
    const double *p3, const double *p4, const long *sidx,
    double *state, const double *mode_coef, double *mode_state,
    const double *noise, double act_r, double act_imax, double act_fpc,
    double *out_disp, double *out_bridge, double *out_limin,
    double *out_limout, double *out_drive)
{
    for (long i = 0; i < n; i++) {
        double v;
        if (n_modes == 1) {
            v = mode_coef[6] * mode_state[0] + noise[i];
        } else {
            v = mode_coef[6] * mode_state[0];
            for (long m = 1; m < n_modes; m++)
                v = v + mode_coef[7*m + 6] * mode_state[2*m];
            v = v + noise[i];
        }
        out_bridge[i] = v;
        for (long j = 0; j < n_ops; j++) {
            long k = kinds[j];
            if (k == 2) {                       /* OP_SOS */
                long p = sidx[j];
                double y = p0[j] * v + state[p];
                state[p] = p1[j] * v - p3[j] * y + state[p + 1];
                state[p + 1] = p2[j] * v - p4[j] * y;
                v = y;
            } else if (k == 1) {                /* OP_GAIN */
                v = v * p0[j];
            } else if (k == 0) {                /* OP_BIAS */
                v = v + p0[j];
            } else if (k == 3) {                /* OP_RC */
                long p = sidx[j];
                state[p] = state[p] + p0[j] * (v - state[p]);
                v = state[p];
            } else if (k == 4) {                /* OP_CLIP */
                if (v < p0[j]) v = p0[j];
                else if (v > p1[j]) v = p1[j];
            } else if (k == 5) {                /* OP_TANH */
                v = p1[j] * tanh(p0[j] * v / p1[j]);
            } else if (k == 6) {                /* OP_DIFF */
                long p = sidx[j];
                double y = (v - state[p]) * p0[j];
                state[p] = v;
                v = y;
            } else if (k == 7) {                /* OP_DEADZONE */
                if (v <= p0[j] && v >= p1[j]) v = 0.0;
                else if (v > 0.0) v = v - p0[j];
                else v = v - p1[j];
            } else if (k == 8) {                /* OP_SLEW */
                long p = sidx[j];
                double y = v - state[p];
                if (y > p0[j]) v = state[p] + p0[j];
                else if (y < p1[j]) v = state[p] + p1[j];
                state[p] = v;
            } else if (k == 9) {                /* OP_LATCH */
                state[sidx[j]] = v;
            } else if (k == 10) {               /* OP_TAP_LIMIN */
                out_limin[i] = v;
            } else if (k == 11) {               /* OP_TAP_LIMOUT */
                out_limout[i] = v;
            } else {                            /* OP_TAP_DRIVE */
                out_drive[i] = v;
            }
        }
        double cur = v / act_r;
        if (cur > act_imax) cur = act_imax;
        else if (cur < -act_imax) cur = -act_imax;
        double f = act_fpc * cur;
        for (long m = 0; m < n_modes; m++) {
            long b = 7*m;
            double x0 = mode_state[2*m];
            double v0 = mode_state[2*m + 1];
            mode_state[2*m] =
                mode_coef[b]*x0 + mode_coef[b+1]*v0 + mode_coef[b+4]*f;
            mode_state[2*m + 1] =
                mode_coef[b+2]*x0 + mode_coef[b+3]*v0 + mode_coef[b+5]*f;
        }
        out_disp[i] = mode_state[0];
    }
}

/* -- batched execution: N independent instances of one program shape --
 *
 * All instances share the op-kind/state-index layout (kinds, sidx) but
 * carry per-instance parameter, state, mode, noise and actuator blocks,
 * laid out as C-contiguous rows.  Each worker thread owns a strided
 * partition of the instances; instances never share mutable memory, so
 * there is no locking and the per-instance arithmetic is the exact
 * run_program() loop above (bit-identity with solo runs).
 *
 * aux_stride is the row stride of the limiter/drive tap outputs; a
 * tapless program passes aux_stride == 0 with 1-element dummies (the
 * taps are never written).
 */

#include <pthread.h>

typedef struct {
    long start, step;
    long n_instances, n_max, aux_stride;
    long n_modes, n_ops, n_state;
    const long *ns; const long *kinds; const long *sidx;
    const double *p0; const double *p1; const double *p2;
    const double *p3; const double *p4;
    double *state; const double *mode_coef; double *mode_state;
    const double *noise; const double *act;
    double *out_disp; double *out_bridge;
    double *out_limin; double *out_limout; double *out_drive;
} batch_args;

static void *batch_worker(void *arg)
{
    batch_args *a = (batch_args *)arg;
    for (long i = a->start; i < a->n_instances; i += a->step) {
        long aux = i * a->aux_stride;
        run_program(
            a->ns[i], a->n_modes, a->n_ops,
            a->kinds,
            a->p0 + i * a->n_ops, a->p1 + i * a->n_ops,
            a->p2 + i * a->n_ops, a->p3 + i * a->n_ops,
            a->p4 + i * a->n_ops,
            a->sidx,
            a->state + i * a->n_state,
            a->mode_coef + i * 7 * a->n_modes,
            a->mode_state + i * 2 * a->n_modes,
            a->noise + i * a->n_max,
            a->act[3*i], a->act[3*i + 1], a->act[3*i + 2],
            a->out_disp + i * a->n_max,
            a->out_bridge + i * a->n_max,
            a->out_limin + aux, a->out_limout + aux, a->out_drive + aux);
    }
    return 0;
}

void run_program_batch(
    long n_instances, long n_threads, long n_max, long aux_stride,
    long n_modes, long n_ops, long n_state,
    const long *ns, const long *kinds, const long *sidx,
    const double *p0, const double *p1, const double *p2,
    const double *p3, const double *p4,
    double *state, const double *mode_coef, double *mode_state,
    const double *noise, const double *act,
    double *out_disp, double *out_bridge, double *out_limin,
    double *out_limout, double *out_drive)
{
    if (n_threads > n_instances) n_threads = n_instances;
    if (n_threads > 64) n_threads = 64;
    if (n_threads < 1) n_threads = 1;
    batch_args args[64];
    pthread_t tids[64];
    for (long t = 0; t < n_threads; t++) {
        batch_args a = { t, n_threads, n_instances, n_max, aux_stride,
            n_modes, n_ops, n_state, ns, kinds, sidx, p0, p1, p2, p3, p4,
            state, mode_coef, mode_state, noise, act,
            out_disp, out_bridge, out_limin, out_limout, out_drive };
        args[t] = a;
    }
    long launched = 0;
    for (long t = 1; t < n_threads; t++) {
        if (pthread_create(&tids[launched], 0, batch_worker, &args[t]) != 0)
            batch_worker(&args[t]);   /* spawn failed: run inline */
        else
            launched++;
    }
    batch_worker(&args[0]);
    for (long t = 0; t < launched; t++)
        pthread_join(tids[t], 0);
}
"""

_CC_FLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-pthread"]


def _cc_cache_dir() -> str:
    return os.path.join(
        tempfile.gettempdir(), f"repro-kernel-cc-{os.getuid()}"
    )


def _cc_compile_so(
    source: str, flags: Sequence[str], stem: str,
    libs: Sequence[str] = ("-lm",),
) -> ctypes.CDLL:
    """Compile a C source to a sha-keyed cached ``.so`` and dlopen it.

    The shared object lands in the per-user cache directory keyed by
    ``sha256(source + flags)`` with an atomic replace, so concurrent
    builders agree and a cache hit makes "compile time" a dlopen.  The
    solo/row interpreter (``stem="kernel"``) and the columnar engine
    (``stem="columnar"``, :mod:`~repro.engine.kernel_columnar`) share
    this machinery.  Raises :class:`KernelError` on build failure.
    """
    digest = hashlib.sha256(
        (source + " ".join(flags) + " ".join(libs)).encode()
    ).hexdigest()[:16]
    cache_dir = _cc_cache_dir()
    os.makedirs(cache_dir, mode=0o700, exist_ok=True)
    so_path = os.path.join(cache_dir, f"{stem}-{digest}.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache_dir, f"{stem}-{digest}.c")
        tmp_so = f"{so_path}.tmp{os.getpid()}"
        with open(c_path, "w") as fh:
            fh.write(source)
        try:
            subprocess.run(
                [_CC, *flags, "-o", tmp_so, c_path, *libs],
                check=True, capture_output=True, text=True, timeout=120,
            )
        except (subprocess.SubprocessError, OSError) as err:
            detail = getattr(err, "stderr", "") or str(err)
            raise KernelError(
                f"C kernel compilation failed: {detail.strip()}"
            ) from err
        os.replace(tmp_so, so_path)  # atomic: concurrent builders agree
        logger.info("C kernel engine compiled to %s", so_path)
    return ctypes.CDLL(so_path)


def _cc_build() -> Callable:
    lib = _cc_compile_so(_C_SOURCE, _CC_FLAGS, "kernel")
    dbl = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    idx = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    lib.run_program.restype = None
    lib.run_program.argtypes = (
        [ctypes.c_long, ctypes.c_long, ctypes.c_long]
        + [idx] + [dbl] * 5 + [idx] + [dbl] * 4
        + [ctypes.c_double] * 3 + [dbl] * 5
    )
    raw = lib.run_program

    def run(n, n_modes, kinds, p0, p1, p2, p3, p4, sidx,
            state, mode_coef, mode_state, noise,
            act_r, act_imax, act_fpc, *outs):
        raw(n, n_modes, len(kinds), kinds, p0, p1, p2, p3, p4, sidx,
            state, mode_coef, mode_state, noise,
            act_r, act_imax, act_fpc, *outs)

    lib.run_program_batch.restype = None
    lib.run_program_batch.argtypes = (
        [ctypes.c_long] * 7     # n_instances/threads/n_max/aux_stride/modes/ops/state
        + [idx] * 3             # ns, kinds, sidx
        + [dbl] * 5             # p0..p4 (rows per instance)
        + [dbl] * 5             # state, mode_coef, mode_state, noise, act
        + [dbl] * 5             # the five output waveform matrices
    )
    run._batch = lib.run_program_batch

    run._lib = lib  # keep the CDLL alive alongside the wrapper
    return run


def _cc_batch_interpreter() -> Callable:
    """The C batched entry point (``run_program_batch``), built with the
    solo interpreter.  Raises :class:`KernelError` when no compiler is
    on PATH or the build fails; :class:`KernelBatch` then falls back to
    per-instance solo runs (bit-identical by construction)."""
    fn = _cc_interpreter()
    batch = getattr(fn, "_batch", None)
    if batch is None:  # pragma: no cover - defensive
        raise KernelError("C batch entry point unavailable")
    return batch


def _cc_interpreter() -> Callable:
    """The compiled-and-loaded C interpreter (built once, cached on disk).

    Raises :class:`KernelError` when no compiler is on PATH or the
    build fails; ``FusedLoopKernel.run`` then falls back to the
    generated-Python engine.  A real build failure is memoized for the
    process (the broken compiler is invoked once, not per run); an
    injected ``kernel.compile`` fault is *not* memoized — it fires per
    its plan and lets later runs recover, which is what the fault suite
    asserts.
    """
    global _CC_INTERPRET, _CC_BUILD_ERROR
    if poll_fault("kernel.compile") is not None:
        raise KernelError("injected fault at kernel.compile")
    if _CC_BUILD_ERROR is not None:
        raise KernelError(_CC_BUILD_ERROR)
    if _CC_INTERPRET is None:
        if not cc_available():
            raise KernelError("no C compiler on PATH")
        with _CC_LOCK:
            if _CC_INTERPRET is None:
                try:
                    _CC_INTERPRET = _cc_build()
                except KernelError as err:
                    _CC_BUILD_ERROR = str(err)
                    raise
    return _CC_INTERPRET
