"""Batch execution of a function over a parameter grid.

Cantilever-array workloads are embarrassingly parallel: every sweep
point, Monte-Carlo sample, and array channel is an independent device
simulation.  :class:`BatchExecutor` is the one place that knows how to
fan those tasks out — serially, over threads, or over processes — while
keeping the contract every caller relies on:

* **ordered results** — outcome ``i`` always belongs to parameter ``i``,
  whatever order the workers finished in;
* **per-task error capture** — one failing point does not kill the
  batch; each :class:`TaskOutcome` carries either a value or the
  exception, and callers decide whether to raise;
* **determinism** — the executor adds no randomness of its own, so a
  task function that is deterministic per-parameter produces
  bit-identical results at any worker count.

Process-pool tasks must be picklable: module-level functions (or
:func:`functools.partial` of one) with picklable arguments.  Closures
work with the ``thread`` and ``serial`` backends only.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..errors import ExecutorError
from .kernel import KERNEL_THREADS_ENV

BACKENDS = ("serial", "thread", "process", "kernel-batch")


def _limit_worker_kernel_threads() -> None:
    """Process-pool worker initializer: cap C-level kernel threads at 1.

    A batched kernel inside a process-pool sweep would otherwise
    multiply parallelism (workers x pthreads); the env ceiling makes
    each worker's batched calls single-threaded C.
    """
    os.environ[KERNEL_THREADS_ENV] = "1"


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one grid point: a value or a captured exception."""

    index: int
    parameter: object
    value: object = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        """True when the task completed without raising."""
        return self.error is None

    def unwrap(self) -> object:
        """The value, re-raising the captured exception if there is one."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class BatchResult:
    """Ordered outcomes of a :meth:`BatchExecutor.map` call."""

    outcomes: tuple[TaskOutcome, ...]

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def ok(self) -> bool:
        """True when every task completed."""
        return all(o.ok for o in self.outcomes)

    def errors(self) -> list[TaskOutcome]:
        """The failed outcomes, in grid order."""
        return [o for o in self.outcomes if not o.ok]

    def values(self) -> list:
        """All task values in grid order; raises the first captured error."""
        return [o.unwrap() for o in self.outcomes]


def _call_captured(fn: Callable, index: int, parameter: object) -> TaskOutcome:
    """Run one task, converting any exception into data.

    Module-level so process pools can pickle it.  Exceptions that cannot
    themselves be pickled (rare, but e.g. ones holding open handles) are
    replaced by an ``ExecutorError`` carrying their repr, so the outcome
    always survives the trip back to the parent.
    """
    try:
        return TaskOutcome(index=index, parameter=parameter, value=fn(parameter))
    except Exception as exc:  # noqa: BLE001 - capture is the contract
        try:
            pickle.dumps(exc)
            captured: BaseException = exc
        except Exception:  # pragma: no cover - exotic unpicklable exception
            captured = ExecutorError(f"task {index} failed: {exc!r}")
        return TaskOutcome(index=index, parameter=parameter, error=captured)


class _Task:
    """Picklable (fn, index, parameter) bundle for pool submission."""

    __slots__ = ("fn", "index", "parameter")

    def __init__(self, fn: Callable, index: int, parameter: object) -> None:
        self.fn = fn
        self.index = index
        self.parameter = parameter


def _run_task(task: _Task) -> TaskOutcome:
    return _call_captured(task.fn, task.index, task.parameter)


class BatchExecutor:
    """Run a function over a parameter grid with a configurable backend.

    Parameters
    ----------
    workers:
        Worker count.  ``None`` uses the CPU count; ``0`` or ``1`` runs
        serially regardless of backend (no pool spin-up for tiny grids).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or
        ``"kernel-batch"``.  Threads suit tasks that release the GIL or
        share unpicklable state (e.g. live sensor objects); processes
        suit pure-Python numeric tasks.  ``"kernel-batch"`` hands the
        *whole* grid to the task object's ``batch_call(parameters,
        threads=)`` method in one call (the batched fused kernel:
        C-level threads, one ctypes dispatch for the whole sweep);
        task functions without ``batch_call`` degrade to serial.
    chunk_size:
        Tasks handed to a process worker per dispatch.  ``None`` picks
        ``ceil(n / (4 * workers))`` so each worker sees a few chunks —
        large enough to amortize pickling, small enough to balance load.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "process",
        chunk_size: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ExecutorError(
                f"unknown backend {backend!r}; pick one of {BACKENDS}"
            )
        if workers is not None and workers < 0:
            raise ExecutorError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ExecutorError(f"chunk_size must be >= 1, got {chunk_size}")
        self.backend = backend
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def _effective_backend(self, task_count: int) -> str:
        if self.backend == "kernel-batch":
            # batching is one compiled call, not a worker pool: it pays
            # off even with workers=1 or a single task
            return "kernel-batch"
        if self.backend == "serial" or self.workers <= 1 or task_count <= 1:
            return "serial"
        return self.backend

    def _chunk_size_for(self, task_count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-task_count // (4 * max(self.workers, 1))))

    def map(self, fn: Callable, parameters: Iterable) -> BatchResult:
        """Evaluate ``fn`` at every parameter; ordered, error-capturing.

        Returns a :class:`BatchResult` whose outcome ``i`` corresponds to
        the ``i``-th parameter.  Errors are captured per task, never
        raised here — call :meth:`BatchResult.values` for fail-on-first
        semantics.
        """
        grid: Sequence = list(parameters)
        tasks = [_Task(fn, i, p) for i, p in enumerate(grid)]
        backend = self._effective_backend(len(tasks))

        if backend == "kernel-batch":
            outcomes = self._map_kernel_batch(fn, grid, tasks)
        elif backend == "serial":
            outcomes = [_run_task(t) for t in tasks]
        else:
            workers = min(self.workers, len(tasks))
            pool: Executor
            if backend == "thread":
                pool = ThreadPoolExecutor(max_workers=workers)
                kwargs = {}
            else:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_limit_worker_kernel_threads,
                )
                kwargs = {"chunksize": self._chunk_size_for(len(tasks))}
            with pool:
                outcomes = list(pool.map(_run_task, tasks, **kwargs))
        return BatchResult(outcomes=tuple(outcomes))

    def _map_kernel_batch(
        self, fn: Callable, grid: Sequence, tasks: list[_Task]
    ) -> list[TaskOutcome]:
        """Hand the whole grid to ``fn.batch_call`` in one call.

        ``batch_call(parameters, threads=)`` must return one
        ``(value, error)`` pair per parameter, in order — per-task error
        capture survives batching.  Task functions without
        ``batch_call`` degrade to the serial loop (same results, no
        batch speedup).
        """
        batch_call = getattr(fn, "batch_call", None)
        if batch_call is None or not grid:
            return [_run_task(t) for t in tasks]
        pairs = batch_call(grid, threads=self.workers)
        if len(pairs) != len(grid):  # pragma: no cover - defensive
            raise ExecutorError(
                f"batch_call returned {len(pairs)} results for "
                f"{len(grid)} parameters"
            )
        return [
            TaskOutcome(index=i, parameter=p, value=value, error=error)
            for i, (p, (value, error)) in enumerate(zip(grid, pairs))
        ]
