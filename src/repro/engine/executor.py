"""Batch execution of a function over a parameter grid.

Cantilever-array workloads are embarrassingly parallel: every sweep
point, Monte-Carlo sample, and array channel is an independent device
simulation.  :class:`BatchExecutor` is the one place that knows how to
fan those tasks out — serially, over threads, or over processes — while
keeping the contract every caller relies on:

* **ordered results** — outcome ``i`` always belongs to parameter ``i``,
  whatever order the workers finished in;
* **per-task error capture** — one failing point does not kill the
  batch; each :class:`TaskOutcome` carries either a value or the
  exception, and callers decide whether to raise;
* **determinism** — the executor adds no randomness of its own, so a
  task function that is deterministic per-parameter produces
  bit-identical results at any worker count;
* **resilience** — an optional per-task watchdog ``timeout`` bounds how
  long any one task can stall the sweep (a hung process worker is
  killed, a hung thread abandoned), and an optional
  :class:`~repro.engine.resilience.RetryPolicy` re-dispatches failed
  tasks with deterministic capped-exponential backoff.

Process-pool tasks must be picklable: module-level functions (or
:func:`functools.partial` of one) with picklable arguments.  Closures
work with the ``thread`` and ``serial`` backends only.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..errors import (
    ExecutorError,
    FaultInjectionError,
    TaskCancelled,
    WatchdogTimeout,
)
from .kernel import KERNEL_THREADS_ENV
from .resilience import RetryPolicy, poll_fault

BACKENDS = ("serial", "thread", "process", "kernel-batch")

#: Signature of the per-outcome progress hook: called once per settled
#: task (success, failure, timeout, or cancellation), in settlement
#: order within a dispatch round.
ProgressFn = Callable[["TaskOutcome"], None]
#: Signature of the cooperative cancellation probe: return True to stop
#: dispatching further tasks (e.g. ``threading.Event.is_set``).
CancelFn = Callable[[], bool]


def _limit_worker_kernel_threads() -> None:
    """Process-pool worker initializer: cap C-level kernel threads at 1.

    A batched kernel inside a process-pool sweep would otherwise
    multiply parallelism (workers x pthreads); the env ceiling makes
    each worker's batched calls single-threaded C.
    """
    os.environ[KERNEL_THREADS_ENV] = "1"


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one grid point: a value or a captured exception."""

    index: int
    parameter: object
    value: object = None
    error: BaseException | None = None
    #: Retry attempts this task consumed before settling (0 = first try).
    retries: int = 0
    #: True when the value was served from a :class:`ResultCache` rather
    #: than computed (set by cache-aware callers, never by the executor).
    cached: bool = False

    @property
    def ok(self) -> bool:
        """True when the task completed without raising."""
        return self.error is None

    def unwrap(self) -> object:
        """The value, re-raising the captured exception if there is one."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class BatchResult:
    """Ordered outcomes of a :meth:`BatchExecutor.map` call."""

    outcomes: tuple[TaskOutcome, ...]

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def ok(self) -> bool:
        """True when every task completed."""
        return all(o.ok for o in self.outcomes)

    def errors(self) -> list[TaskOutcome]:
        """The failed outcomes, in grid order."""
        return [o for o in self.outcomes if not o.ok]

    def values(self) -> list:
        """All task values in grid order; raises the first captured error."""
        return [o.unwrap() for o in self.outcomes]

    @property
    def total_retries(self) -> int:
        """Retry attempts consumed across the whole grid."""
        return sum(o.retries for o in self.outcomes)


def _call_captured(
    fn: Callable, index: int, parameter: object, retries: int = 0
) -> TaskOutcome:
    """Run one task, converting any exception into data.

    Module-level so process pools can pickle it.  Exceptions that cannot
    themselves be pickled (rare, but e.g. ones holding open handles) are
    replaced by an ``ExecutorError`` carrying their repr, so the outcome
    always survives the trip back to the parent.
    """
    try:
        return TaskOutcome(
            index=index, parameter=parameter, value=fn(parameter),
            retries=retries,
        )
    except Exception as exc:  # noqa: BLE001 - capture is the contract
        try:
            pickle.dumps(exc)
            captured: BaseException = exc
        except Exception:  # pragma: no cover - exotic unpicklable exception
            captured = ExecutorError(f"task {index} failed: {exc!r}")
        return TaskOutcome(
            index=index, parameter=parameter, error=captured, retries=retries,
        )


class _Task:
    """Picklable (fn, index, parameter, retries) bundle for pool submission."""

    __slots__ = ("fn", "index", "parameter", "retries")

    def __init__(
        self, fn: Callable, index: int, parameter: object, retries: int = 0
    ) -> None:
        self.fn = fn
        self.index = index
        self.parameter = parameter
        self.retries = retries


def _run_task(task: _Task) -> TaskOutcome:
    return _call_captured(task.fn, task.index, task.parameter, task.retries)


class _FaultedCall:
    """Picklable task-fn wrapper applying one injected ``executor.task`` fault.

    Built in the *parent* at dispatch time (so fault accounting stays
    global and deterministic in task order) and shipped to the worker,
    where it crashes (``"raise"``) or hangs (``"hang"``, ``payload``
    seconds) before/instead of the real call.
    """

    __slots__ = ("fn", "kind", "payload")

    def __init__(self, fn: Callable, kind: str, payload: float) -> None:
        self.fn = fn
        self.kind = kind
        self.payload = payload

    def __call__(self, parameter: object) -> object:
        if self.kind == "raise":
            raise FaultInjectionError("injected fault at executor.task")
        if self.kind == "hang":
            time.sleep(self.payload)
        return self.fn(parameter)


class BatchExecutor:
    """Run a function over a parameter grid with a configurable backend.

    Parameters
    ----------
    workers:
        Worker count.  ``None`` uses the CPU count; ``0`` or ``1`` runs
        serially regardless of backend (no pool spin-up for tiny grids).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or
        ``"kernel-batch"``.  Threads suit tasks that release the GIL or
        share unpicklable state (e.g. live sensor objects); processes
        suit pure-Python numeric tasks.  ``"kernel-batch"`` hands the
        *whole* grid to the task object's ``batch_call(parameters,
        threads=)`` method in one call (the batched fused kernel:
        C-level threads, one ctypes dispatch for the whole sweep);
        task functions without ``batch_call`` degrade to serial.
    chunk_size:
        Tasks handed to a process worker per dispatch.  ``None`` picks
        ``ceil(n / (4 * workers))`` so each worker sees a few chunks —
        large enough to amortize pickling, small enough to balance load.
    timeout:
        Per-task watchdog [s].  A task still running after ``timeout``
        is captured as :class:`~repro.errors.WatchdogTimeout`: the
        process backend kills the hung worker (the pool is terminated
        after the round), the thread/serial backends abandon it.  One
        round of n tasks stalls at most ``n * timeout`` even if every
        task hangs — a sweep never waits forever.  Not applicable to
        ``kernel-batch`` (one compiled call, no per-task boundary).
    retry:
        Re-dispatch policy for failed (crashed, faulted, or timed-out)
        tasks: a :class:`~repro.engine.resilience.RetryPolicy`, an int
        (shorthand for ``RetryPolicy(retries=n)``), or ``None`` (no
        retries).  Backoff between rounds is deterministic (seeded
        jitter); each outcome records the retries it consumed.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "process",
        chunk_size: int | None = None,
        timeout: float | None = None,
        retry: RetryPolicy | int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ExecutorError(
                f"unknown backend {backend!r}; pick one of {BACKENDS}"
            )
        if workers is not None and workers < 0:
            raise ExecutorError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ExecutorError(f"chunk_size must be >= 1, got {chunk_size}")
        if timeout is not None and not timeout > 0.0:
            raise ExecutorError(f"timeout must be > 0, got {timeout}")
        if isinstance(retry, int) and not isinstance(retry, bool):
            retry = RetryPolicy(retries=retry)
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ExecutorError(
                f"retry must be a RetryPolicy or int, got {type(retry).__name__}"
            )
        self.backend = backend
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.retry = retry
        # injectable for tests asserting the backoff schedule
        self._sleep: Callable[[float], None] = time.sleep

    def _effective_backend(self, task_count: int) -> str:
        if self.backend == "kernel-batch":
            # batching is one compiled call, not a worker pool: it pays
            # off even with workers=1 or a single task
            return "kernel-batch"
        if self.backend == "serial" or self.workers <= 1 or task_count <= 1:
            return "serial"
        return self.backend

    def _chunk_size_for(self, task_count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-task_count // (4 * max(self.workers, 1))))

    def map(
        self,
        fn: Callable,
        parameters: Iterable,
        *,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> BatchResult:
        """Evaluate ``fn`` at every parameter; ordered, error-capturing.

        Returns a :class:`BatchResult` whose outcome ``i`` corresponds to
        the ``i``-th parameter.  Errors are captured per task, never
        raised here — call :meth:`BatchResult.values` for fail-on-first
        semantics.  With a :class:`RetryPolicy`, failed tasks are
        re-dispatched (same backend, deterministic backoff between
        rounds) until they succeed or the retry budget is spent; the
        final outcome reflects the last attempt.

        Parameters
        ----------
        progress:
            Optional hook called with each :class:`TaskOutcome` as it
            settles (the service pump's live-status feed).  Called in
            settlement order, which for pooled backends is submission
            order within a round; exceptions it raises propagate.
        cancel:
            Optional zero-argument probe polled between tasks and
            between retry rounds.  Once it returns True, undispached
            tasks settle as :class:`~repro.errors.TaskCancelled`
            outcomes (in-flight process tasks are terminated with the
            pool) and no further retry rounds run.
        """
        grid: Sequence = list(parameters)
        pending = [_Task(fn, i, p) for i, p in enumerate(grid)]
        outcomes: list[TaskOutcome | None] = [None] * len(grid)

        attempt = 0
        while True:
            for outcome in self._run_round(fn, pending, attempt, progress, cancel):
                outcomes[outcome.index] = outcome
            failed = [
                t for t in pending
                if not outcomes[t.index].ok
                and not isinstance(outcomes[t.index].error, TaskCancelled)
            ]
            if (
                not failed
                or self.retry is None
                or attempt >= self.retry.retries
                or (cancel is not None and cancel())
            ):
                break
            self._sleep(self.retry.delay(attempt, key=len(failed)))
            attempt += 1
            pending = [
                _Task(fn, t.index, t.parameter, retries=attempt) for t in failed
            ]
        return BatchResult(outcomes=tuple(outcomes))  # type: ignore[arg-type]

    # -- one dispatch round ----------------------------------------------------

    def _run_round(
        self,
        fn: Callable,
        tasks: list[_Task],
        attempt: int,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[TaskOutcome]:
        """Dispatch ``tasks`` once over the configured backend."""
        tasks = [self._apply_fault(t) for t in tasks]
        backend = self._effective_backend(len(tasks))
        if backend == "kernel-batch":
            if cancel is not None and cancel():
                return self._settle(
                    [self._cancelled_outcome(t) for t in tasks], progress
                )
            return self._settle(self._map_kernel_batch(fn, tasks), progress)
        if backend == "serial" and self.timeout is None:
            return self._run_serial(tasks, progress, cancel)
        if backend == "process":
            if self.timeout is None and progress is None and cancel is None:
                return self._run_process_pool(tasks)
            return self._run_process_async(tasks, progress, cancel)
        # thread backend, and serial-with-watchdog (a 1-thread pool so the
        # parent can time out and abandon a hung task)
        workers = 1 if backend == "serial" else min(self.workers, len(tasks))
        return self._run_thread_pool(tasks, workers, progress, cancel)

    def _settle(
        self, outcomes: list[TaskOutcome], progress: ProgressFn | None
    ) -> list[TaskOutcome]:
        """Feed already-collected outcomes through the progress hook."""
        if progress is not None:
            for outcome in outcomes:
                progress(outcome)
        return outcomes

    def _run_serial(
        self,
        tasks: list[_Task],
        progress: ProgressFn | None,
        cancel: CancelFn | None,
    ) -> list[TaskOutcome]:
        outcomes: list[TaskOutcome] = []
        cancelled = False
        for task in tasks:
            cancelled = cancelled or (cancel is not None and cancel())
            outcome = (
                self._cancelled_outcome(task) if cancelled else _run_task(task)
            )
            if progress is not None:
                progress(outcome)
            outcomes.append(outcome)
        return outcomes

    def _apply_fault(self, task: _Task) -> _Task:
        """Poll the ``executor.task`` site for this dispatch.

        Polled in the parent, in task order, once per dispatch attempt —
        so a :class:`FaultSpec` with ``at=k`` hits the k-th dispatch
        deterministically, and a retried task polls again (an exhausted
        fault lets the retry through: the recovery the tests pin).
        """
        spec = poll_fault("executor.task")
        if spec is None:
            return task
        return _Task(
            _FaultedCall(task.fn, spec.kind, spec.payload),
            task.index,
            task.parameter,
            task.retries,
        )

    def _run_thread_pool(
        self,
        tasks: list[_Task],
        workers: int,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[TaskOutcome]:
        pool = ThreadPoolExecutor(max_workers=workers)
        futures = [pool.submit(_run_task, t) for t in tasks]
        outcomes: list[TaskOutcome] = []
        timed_out = False
        cancelled = False
        for task, future in zip(tasks, futures):
            cancelled = cancelled or (cancel is not None and cancel())
            # a queued future can still be withdrawn; a running one is
            # collected normally (threads cannot be killed)
            if cancelled and future.cancel():
                outcome = self._cancelled_outcome(task)
            else:
                try:
                    outcome = future.result(self.timeout)
                except FutureTimeoutError:
                    timed_out = True
                    outcome = self._timeout_outcome(task)
            if progress is not None:
                progress(outcome)
            outcomes.append(outcome)
        # cancel_futures stops queued tasks; an actually-hung thread is
        # abandoned (daemonic exit at interpreter shutdown)
        pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return outcomes

    def _run_process_pool(self, tasks: list[_Task]) -> list[TaskOutcome]:
        workers = min(self.workers, len(tasks))
        with multiprocessing.Pool(
            processes=workers, initializer=_limit_worker_kernel_threads
        ) as pool:
            return pool.map(
                _run_task, tasks, chunksize=self._chunk_size_for(len(tasks))
            )

    def _run_process_async(
        self,
        tasks: list[_Task],
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[TaskOutcome]:
        """Process round with watchdog / progress / cancellation support.

        Tasks are dispatched individually (no chunking — a chunk would
        make one hung task time out its innocent chunk-mates) and
        collected in order with a per-task deadline; every task has been
        in flight at least ``timeout`` seconds before being declared
        hung.  The pool is terminated afterwards whenever anything timed
        out or was cancelled, which is what actually kills stuck or
        no-longer-wanted worker processes.
        """
        workers = min(self.workers, len(tasks))
        pool = multiprocessing.Pool(
            processes=workers, initializer=_limit_worker_kernel_threads
        )
        outcomes: list[TaskOutcome] = []
        timed_out = False
        cancelled = False
        try:
            handles = [pool.apply_async(_run_task, (t,)) for t in tasks]
            for task, handle in zip(tasks, handles):
                cancelled = cancelled or (cancel is not None and cancel())
                if cancelled:
                    outcome = self._cancelled_outcome(task)
                else:
                    try:
                        outcome = handle.get(self.timeout)
                    except multiprocessing.TimeoutError:
                        timed_out = True
                        outcome = self._timeout_outcome(task)
                if progress is not None:
                    progress(outcome)
                outcomes.append(outcome)
        finally:
            if timed_out or cancelled:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcomes

    def _timeout_outcome(self, task: _Task) -> TaskOutcome:
        return TaskOutcome(
            index=task.index,
            parameter=task.parameter,
            error=WatchdogTimeout(
                f"task {task.index} exceeded its {self.timeout}s watchdog"
            ),
            retries=task.retries,
        )

    def _cancelled_outcome(self, task: _Task) -> TaskOutcome:
        return TaskOutcome(
            index=task.index,
            parameter=task.parameter,
            error=TaskCancelled(f"task {task.index} cancelled before it ran"),
            retries=task.retries,
        )

    def _map_kernel_batch(
        self, fn: Callable, tasks: list[_Task]
    ) -> list[TaskOutcome]:
        """Hand the round's grid to ``fn.batch_call`` in one call.

        ``batch_call(parameters, threads=)`` must return one
        ``(value, error)`` pair per parameter, in order — per-task error
        capture survives batching.  Task functions without
        ``batch_call`` degrade to the serial loop (same results, no
        batch speedup).  Tasks carrying an injected fault are split out
        and run through the plain captured path (their wrapper is not
        the batchable task object), so a faulted task never poisons the
        compiled batch around it.
        """
        batch_call = getattr(fn, "batch_call", None)
        faulted = [t for t in tasks if isinstance(t.fn, _FaultedCall)]
        clean = [t for t in tasks if not isinstance(t.fn, _FaultedCall)]
        if batch_call is None or not clean:
            return [_run_task(t) for t in tasks]
        grid = [t.parameter for t in clean]
        pairs = batch_call(grid, threads=self.workers)
        if len(pairs) != len(grid):  # pragma: no cover - defensive
            raise ExecutorError(
                f"batch_call returned {len(pairs)} results for "
                f"{len(grid)} parameters"
            )
        outcomes = [
            TaskOutcome(
                index=t.index, parameter=t.parameter,
                value=value, error=error, retries=t.retries,
            )
            for t, (value, error) in zip(clean, pairs)
        ]
        outcomes.extend(_run_task(t) for t in faulted)
        outcomes.sort(key=lambda o: o.index)
        return outcomes
