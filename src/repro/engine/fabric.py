"""Distributed sweep fabric: chunk-leasing workers over a shared store.

ROADMAP item 1: the engine must stop topping out at one box.  The
kernel is fast (columnar batches, pthread rows) but a sweep still ran
as "one process pool, one cache dir".  This module distributes the
*sweep* instead:

* A fabric job is an ordinary PR-6 :class:`~repro.service.JobRecord`
  whose grid is split by :func:`repro.analysis.plan_chunks` into
  contiguous ``[start, stop)`` **chunks** stored as lease rows
  (store schema v3).
* :class:`FabricWorker` — local process or remote ``repro worker``
  node — leases one chunk at a time (atomic CAS in the store),
  heartbeats it while computing, and writes every point through the
  checksummed :class:`~repro.engine.TieredCache` under exactly the key
  :func:`repro.analysis.run_sweep_outcomes` would use.  Cache identity
  is the whole consistency story: a crash mid-grid loses nothing that
  was cached, and a resumed run re-serves those points as hits — zero
  recomputes, provable from per-tier ``cache_info()`` counters.
* Resilience is the PR-5 machinery, generalized: a worker that stops
  heartbeating has its leases expired and requeued by the watchdog
  sweep (:meth:`~repro.service.store.JobStore.expire_chunk_leases`);
  store round-trips retry with a seeded
  :class:`~repro.engine.RetryPolicy`; chunks that keep failing are
  parked ``failed`` after ``max_attempts``; and a worker whose chunks
  keep blowing up trips its own :class:`~repro.engine.CircuitBreaker`
  (``fabric-worker:<id>``) and quarantines itself rather than eating
  the queue.
* :func:`run_fabric_sweep` is the one-call coordinator behind
  ``repro sweep --fabric``: submit the job, plan the chunks, spawn N
  worker processes, watch the lease table, and assemble the finished
  :class:`~repro.analysis.SweepResult` *from the cache* — bit-exact
  (``np.array_equal``) with the serial reference path, because workers
  compute each point through the same solo fused path serial sweeps
  use.

Workers compute leased points solo (reference-identical), not through
the columnar batch engine: the fabric's bit-exactness contract is
``fabric == serial`` down to the last ULP, and its speed comes from N
nodes running N chunks concurrently, not from per-point batching.
"""

from __future__ import annotations

import logging
import os
import socket
import time
import uuid
from dataclasses import dataclass, field

from ..errors import FabricError
from .cache import TieredCache
from .resilience import (
    CircuitBreaker,
    RetryPolicy,
    arm_env_fault_plan,
    get_breaker,
    poll_fault,
)

__all__ = [
    "FabricWorker",
    "finalize_fabric_job",
    "WorkerStats",
    "fabric_worker_id",
    "run_fabric_sweep",
    "submit_fabric_job",
]

logger = logging.getLogger(__name__)

#: Exit code of a worker process that hit its --points-limit crash
#: rehearsal (``os._exit``: no cleanup, exactly like a kill -9 — the
#: lease stays held until the watchdog expires it).
CRASH_EXIT_CODE = 43


def fabric_worker_id() -> str:
    """A collision-resistant worker identity (``host-pid-hex4``)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:4]}"


def _fault_seconds(payload, default: float) -> float:
    """A positive seconds value out of a fault payload, else default."""
    try:
        seconds = float(payload)
    except (TypeError, ValueError):
        return default
    return seconds if seconds > 0 else default


@dataclass
class WorkerStats:
    """What one :class:`FabricWorker` run did, for logs and checks."""

    worker_id: str
    chunks_done: int = 0
    chunks_failed: int = 0
    points_computed: int = 0
    points_cached: int = 0
    leases_lost: int = 0
    quarantined: bool = False
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "chunks_done": self.chunks_done,
            "chunks_failed": self.chunks_failed,
            "points_computed": self.points_computed,
            "points_cached": self.points_cached,
            "leases_lost": self.leases_lost,
            "quarantined": self.quarantined,
            "errors": list(self.errors),
        }


class _JobContext:
    """Per-job task/grid rebuild, memoized across a worker's chunks."""

    __slots__ = ("job_id", "task", "grid")

    def __init__(self, record) -> None:
        from ..analysis import LoopSweepTask, override_grid
        from ..service.jobs import device_spec_from_dict

        spec = record.spec
        base = device_spec_from_dict(spec.base)
        self.job_id = record.job_id
        self.task = LoopSweepTask(duration=spec.duration)
        self.grid = override_grid(base, spec.path, list(spec.values))


class FabricWorker:
    """One chunk-leasing execution node.

    Parameters
    ----------
    store:
        A :class:`~repro.service.JobStore` (shared SQLite file) or a
        :class:`~repro.service.RemoteFabricStore` speaking the same
        chunk interface over HTTP to a ``repro serve``.
    cache:
        The :class:`TieredCache` results flow through.  Give remote
        workers an :class:`~repro.engine.HTTPRemoteStore` tier pointed
        at the coordinator's server — the cache *is* the result
        transport.
    worker_id / lease_seconds / poll_interval:
        Identity, lease TTL (heartbeats extend it; must comfortably
        cover one point's compute time), and idle sleep between lease
        attempts.
    max_attempts:
        Lease attempts before a chunk is parked ``failed``.
    breaker_threshold:
        Consecutive chunk failures before this worker quarantines
        itself (its :class:`~repro.engine.CircuitBreaker` opens).
    job_id:
        Restrict leasing to one job (``None`` = any queued chunk).
    points_limit:
        Crash rehearsal: hard-exit the process (``os._exit``) after
        computing this many fresh points — mid-chunk, lease still
        held — to prove resume-with-zero-recomputes.
    """

    def __init__(
        self, store, cache, *,
        worker_id: str | None = None,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.1,
        max_attempts: int = 3,
        breaker_threshold: int = 3,
        job_id: str | None = None,
        points_limit: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.worker_id = worker_id or fabric_worker_id()
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.max_attempts = int(max_attempts)
        self.job_id = job_id
        self.points_limit = points_limit
        self.retry = retry or RetryPolicy(retries=2, base_delay=0.02)
        self.breaker: CircuitBreaker = get_breaker(
            f"fabric-worker:{self.worker_id}", threshold=breaker_threshold
        )
        self.stats = WorkerStats(worker_id=self.worker_id)
        self._contexts: dict[str, _JobContext] = {}

    # -- leasing loop ---------------------------------------------------------

    def run(self, *, max_chunks: int | None = None,
            idle_exit: float | None = None) -> WorkerStats:
        """Lease and execute chunks until told (or starved) to stop.

        Returns after ``max_chunks`` chunks, after ``idle_exit``
        seconds without winning a lease (``None`` = one idle poll),
        or immediately upon self-quarantine.
        """
        idle_since: float | None = None
        while True:
            if not self.breaker.allow():
                self.stats.quarantined = True
                logger.warning("worker %s quarantined: %s", self.worker_id,
                               self.breaker.last_failure_reason)
                return self.stats
            if max_chunks is not None and \
                    self.stats.chunks_done + self.stats.chunks_failed >= max_chunks:
                return self.stats
            # watchdog assist: requeue leases of dead siblings
            self._store_call(self.store.expire_chunk_leases)
            lease = self._store_call(
                self.store.lease_chunk, self.worker_id, self.lease_seconds,
                self.job_id,
            )
            if lease is None:
                now = time.monotonic()
                if idle_exit is None:
                    return self.stats
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= idle_exit:
                    return self.stats
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            self._execute_chunk(lease)

    def _store_call(self, fn, *args):
        """One store round-trip through the seeded retry policy."""
        return self.retry.run(fn, *args, key=self.worker_id)

    # -- one chunk ------------------------------------------------------------

    def _execute_chunk(self, lease) -> None:
        try:
            context = self._context_for(lease.job_id)
            # lease-clock-skew fault: this worker's heartbeats extend
            # the lease by almost nothing, so the watchdog's expiry
            # sweep races every slow point
            ttl = self.lease_seconds
            skew = poll_fault("fabric.lease")
            if skew is not None:
                ttl = _fault_seconds(skew.payload, 0.05)
                logger.warning(
                    "worker %s lease clock skew injected on %s/%d: "
                    "heartbeat TTL collapsed to %.3fs",
                    self.worker_id, lease.job_id, lease.chunk_id, ttl,
                )
            held = self._run_points(context, lease, ttl)
            if held:
                self._flush_cache_barrier(lease)
        except Exception as err:  # noqa: BLE001 - chunk-level capture
            reason = f"{type(err).__name__}: {err}"
            logger.warning("worker %s failed chunk %s/%d: %s",
                           self.worker_id, lease.job_id, lease.chunk_id,
                           reason)
            self.stats.chunks_failed += 1
            self.stats.errors.append(reason)
            self.breaker.record_failure(reason)
            try:
                self._store_call(
                    self.store.fail_chunk, lease.job_id, lease.chunk_id,
                    self.worker_id, reason, self.max_attempts,
                )
            except Exception:  # noqa: BLE001 - lease will expire instead
                logger.exception("could not report chunk failure")
            return
        if not held:
            # lease lost mid-chunk (counted in _run_points): never ack
            # a chunk someone else may be re-running — the cached
            # points stand and the next owner gets hits
            return
        if poll_fault("fabric.complete") is not None:
            # lost-ack fault: the completion lands but the worker never
            # hears back, so it retries — the store's idempotent
            # complete_chunk must acknowledge the duplicate
            self._store_call(
                self.store.complete_chunk, lease.job_id, lease.chunk_id,
                self.worker_id,
            )
            logger.warning(
                "worker %s completion ack lost for %s/%d: retrying "
                "(duplicate completion)",
                self.worker_id, lease.job_id, lease.chunk_id,
            )
        completed = self._store_call(
            self.store.complete_chunk, lease.job_id, lease.chunk_id,
            self.worker_id,
        )
        if completed:
            self.stats.chunks_done += 1
            self.breaker.record_success()
        else:
            # lease expired mid-chunk (slow point, watchdog fired): the
            # points are cached, so whoever re-runs the chunk gets hits
            self.stats.leases_lost += 1
            logger.info("worker %s lost lease on %s/%d after computing it",
                        self.worker_id, lease.job_id, lease.chunk_id)

    def _context_for(self, job_id: str) -> _JobContext:
        context = self._contexts.get(job_id)
        if context is None:
            record = self._store_call(self.store.get, job_id)
            if record is None:
                raise FabricError(f"chunk references unknown job {job_id!r}")
            context = _JobContext(record)
            self._contexts[job_id] = context
        return context

    def _run_points(self, context: _JobContext, lease,
                    lease_ttl: float | None = None) -> bool:
        """Compute/serve the chunk's points; True while the lease held.

        A False return means the lease was lost mid-chunk (heartbeat
        refused, or the heartbeat itself vanished) — the caller must
        NOT complete the chunk: every point reached is already cached,
        and whoever re-leases the chunk re-serves them as hits.
        """
        from ..analysis.sweep import _cache_parameter
        from ..service.store import PointOutcome

        ttl = self.lease_seconds if lease_ttl is None else lease_ttl
        task, grid = context.task, context.grid
        if not 0 <= lease.start <= lease.stop <= len(grid):
            raise FabricError(
                f"chunk [{lease.start}:{lease.stop}) is outside the "
                f"{len(grid)}-point grid of job {lease.job_id!r}"
            )
        outcomes = []
        for index in range(lease.start, lease.stop):
            spec = grid[index]
            key = self.cache.key_for(task, _cache_parameter(spec), None)
            value = self.cache.get(key)
            cached = value is not self.cache.MISS
            if cached:
                self.stats.points_cached += 1
            else:
                # solo fused run: bit-identical to the serial reference
                value = task(spec)
                self.cache.put(key, value)
                self.stats.points_computed += 1
                if poll_fault("fabric.crash") is not None:
                    # die in the worst window: point cached, chunk not
                    # completed — resume must serve it as a hit
                    logger.warning(
                        "worker %s injected crash after caching point %d",
                        self.worker_id, index,
                    )
                    os._exit(CRASH_EXIT_CODE)
                if self.points_limit is not None and \
                        self.stats.points_computed >= self.points_limit:
                    logger.warning("worker %s crash rehearsal after %d points",
                                   self.worker_id, self.stats.points_computed)
                    os._exit(CRASH_EXIT_CODE)
            outcomes.append(PointOutcome(index=index, ok=True, cached=cached))
            beat_lost = poll_fault("fabric.heartbeat") is not None
            if not beat_lost:
                beat_lost = not self._store_call(
                    self.store.heartbeat_chunk, lease.job_id, lease.chunk_id,
                    self.worker_id, ttl,
                )
            if beat_lost:
                # lease lost: stop touching the chunk; cached points stand
                self.stats.leases_lost += 1
                logger.info("worker %s lost lease on %s/%d mid-chunk",
                            self.worker_id, lease.job_id, lease.chunk_id)
                return False
        self._store_call(
            self.store.record_outcomes, lease.job_id, outcomes
        )
        return True

    def _flush_cache_barrier(self, lease) -> None:
        """Push write-behind remote-cache entries before completing.

        During a remote-tier brownout the :class:`TieredCache` parks
        blobs in its pending queue; a chunk may only be acked ``done``
        once every point it computed is visible to the rest of the
        fabric.  Entries that still cannot be pushed fail the chunk —
        it requeues, and the re-run serves local hits and retries the
        push on a (hopefully) recovered tier.
        """
        flush = getattr(self.cache, "flush_remote", None)
        if flush is None:
            return
        pending = flush(force=True)
        if pending:
            raise FabricError(
                f"{pending} cached point(s) still unpushed to the remote "
                f"tier; refusing to complete chunk "
                f"{lease.job_id}/{lease.chunk_id}"
            )


# -- coordinator --------------------------------------------------------------


def submit_fabric_job(store, base_spec, path: str, values, *,
                      duration: float = 0.01, chunk_size: int = 8,
                      tenant: str = "default"):
    """Create (or resume) a fabric job + its chunk rows; the record.

    Resubmitting an identical grid reuses the existing non-terminal
    fabric job — its chunk rows, lease states, and cached points — so
    a crashed coordinator resumes instead of duplicating work.
    """
    from ..analysis import plan_chunks
    from ..service.jobs import JobRecord, JobSpec, JobState, new_job_id

    spec = JobSpec(
        base=base_spec.to_dict(), path=path,
        values=tuple(float(v) for v in values), duration=duration,
        tenant=tenant, fabric=True, chunk_size=int(chunk_size),
    )
    record = None
    for candidate in store.find_by_work_hash(spec.work_hash()):
        if candidate.spec.fabric and not candidate.state.terminal:
            record = candidate
            break
    if record is None:
        record = JobRecord(
            job_id=new_job_id(), spec=spec,
            state=JobState(total=len(spec.values),
                           submitted_at=time.time()),
        )
        store.put(record)
    store.create_chunks(
        record.job_id, plan_chunks(len(spec.values), spec.chunk_size)
    )
    return record


def _worker_process_main(db_path, cache_dir, worker_kwargs) -> None:
    """Entry point of one spawned local fabric worker process."""
    from ..service.store import open_job_store

    os.environ.setdefault("REPRO_KERNEL_THREADS", "1")
    arm_env_fault_plan()  # chaos harness: plan rides in on the env
    store = open_job_store(db_path)
    cache = TieredCache(cache_dir)
    worker = FabricWorker(store, cache, **worker_kwargs)
    worker.run(idle_exit=2.0)


def run_fabric_sweep(
    base_spec, path: str, values, *,
    db, cache_dir,
    duration: float = 0.01,
    workers: int = 2,
    chunk_size: int = 8,
    lease_seconds: float = 30.0,
    max_attempts: int = 3,
    parameter_name: str | None = None,
    wait_timeout: float = 600.0,
    poll_interval: float = 0.1,
    cache: TieredCache | None = None,
):
    """Run one spec sweep across leased fabric workers; a SweepResult.

    The ``repro sweep --fabric`` path: submits (or resumes) the fabric
    job on the store at ``db``, spawns ``workers`` local worker
    processes sharing the tiered cache at ``cache_dir``, expires stale
    leases while waiting, and assembles the finished table from the
    cache.  Bit-exact with the serial path; any point already cached —
    by a previous run, a killed worker, or the service pump — is never
    recomputed.

    ``workers=0`` runs the chunks in-process (no subprocesses), which
    is also the degraded path when a worker cannot be spawned.
    """
    import multiprocessing

    from ..analysis.sweep import _cache_parameter, _collect
    from ..service.store import open_job_store

    store = open_job_store(db)
    if cache is None:
        cache = TieredCache(cache_dir)
    record = submit_fabric_job(
        store, base_spec, path, values, duration=duration,
        chunk_size=chunk_size,
    )
    if record.state.phase == "queued":
        store.claim(record.job_id)

    procs: list = []
    if workers > 0:
        ctx = multiprocessing.get_context("spawn")
        for _ in range(int(workers)):
            proc = ctx.Process(
                target=_worker_process_main,
                args=(str(db), str(cache_dir),
                      {"job_id": record.job_id,
                       "lease_seconds": lease_seconds,
                       "max_attempts": max_attempts}),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

    try:
        deadline = time.monotonic() + wait_timeout
        while True:
            counts = store.chunk_counts(record.job_id)
            total = sum(counts.values())
            settled = counts.get("done", 0) + counts.get("failed", 0)
            if total and settled == total:
                break
            store.expire_chunk_leases()
            if workers > 0 and not any(p.is_alive() for p in procs):
                # every worker died (crash rehearsal, OOM): finish the
                # remaining chunks in-process rather than hanging
                _drain_in_process(store, cache, record.job_id,
                                  lease_seconds, max_attempts)
                continue
            if workers == 0:
                _drain_in_process(store, cache, record.job_id,
                                  lease_seconds, max_attempts)
                continue
            if time.monotonic() > deadline:
                raise FabricError(
                    f"fabric sweep timed out after {wait_timeout}s "
                    f"({settled}/{total} chunks settled)"
                )
            time.sleep(poll_interval)
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)

    failed = [c for c in store.chunks(record.job_id) if c.state == "failed"]
    if failed:
        store.update(record.advanced(
            phase="failed", finished_at=time.time(),
            error=failed[0].error,
        ))
        raise FabricError(
            f"{len(failed)} chunk(s) failed permanently; first error: "
            f"{failed[0].error}"
        )

    result = _assemble_from_cache(
        record, cache, _cache_parameter, _collect,
        parameter_name if parameter_name is not None else path,
    )
    finalize_fabric_job(store, cache, record)
    return result


def _drain_in_process(store, cache, job_id: str, lease_seconds: float,
                      max_attempts: int) -> None:
    """Run remaining chunks of a job in this process (degraded path)."""
    worker = FabricWorker(
        store, cache, job_id=job_id, lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        worker_id=f"{fabric_worker_id()}-inline",
    )
    worker.run(idle_exit=None)


def _assemble_from_cache(record, cache, cache_parameter, collect,
                         parameter_name: str):
    """The finished SweepResult, read point-by-point from the cache."""
    from ..analysis import LoopSweepTask, override_grid
    from ..service.jobs import device_spec_from_dict

    spec = record.spec
    task = LoopSweepTask(duration=spec.duration)
    grid = override_grid(
        device_spec_from_dict(spec.base), spec.path, list(spec.values)
    )
    values = []
    for index, point in enumerate(grid):
        key = cache.key_for(task, cache_parameter(point), None)
        value = cache.get(key)
        if value is cache.MISS:  # pragma: no cover - chunks all done
            raise FabricError(
                f"point {index} of job {record.job_id!r} is marked done "
                "but missing from the cache"
            )
        values.append(value)
    result = collect(grid, values, parameter_name)
    result.parameters = list(spec.values)
    return result


def finalize_fabric_job(store, cache, record) -> None:
    """Settle a fabric job whose chunks are all done (idempotent).

    Writes the pump-compatible result blob to the cache under
    :func:`~repro.service.pump.sweep_result_key` and advances the job
    to ``done`` — the same terminal shape a pump-executed job gets, so
    ``repro status|results`` cannot tell the difference.
    """
    from ..service.pump import _assemble_result, sweep_result_key

    record = store.get(record.job_id) or record
    if record.state.terminal:
        return
    outcomes = store.outcomes(record.job_id)
    values_by_index = {}
    if outcomes:
        from ..analysis import LoopSweepTask, override_grid
        from ..analysis.sweep import _cache_parameter
        from ..service.jobs import device_spec_from_dict

        task = LoopSweepTask(duration=record.spec.duration)
        grid = override_grid(
            device_spec_from_dict(record.spec.base), record.spec.path,
            list(record.spec.values),
        )
        for point_outcome in outcomes:
            key = cache.key_for(
                task, _cache_parameter(grid[point_outcome.index]), None
            )
            value = cache.get(key)
            if value is not cache.MISS:
                values_by_index[point_outcome.index] = value
    finished = [
        _FinishedPoint(
            index=o.index, ok=o.ok and o.index in values_by_index,
            cached=o.cached, retries=o.retries, error=o.error,
            value=values_by_index.get(o.index),
        )
        for o in outcomes
    ]
    result_key = sweep_result_key(record.work_hash)
    if cache.get(result_key) is cache.MISS:
        cache.put(result_key, _assemble_result(record.spec, finished))
    from dataclasses import replace

    final = replace(record, result_key=result_key).advanced(
        phase="done", finished_at=time.time(),
        total=len(record.spec.values),
        completed=len(finished),
        cache_hits=sum(1 for o in finished if o.cached),
    )
    store.update(final)


class _FinishedPoint:
    """Outcome-shaped shim feeding the pump's result assembler."""

    __slots__ = ("index", "ok", "cached", "retries", "error", "value")

    def __init__(self, index, ok, cached, retries, error, value) -> None:
        self.index = index
        self.ok = ok
        self.cached = cached
        self.retries = retries
        self.error = error
        self.value = value
