"""Wall-clock stage timing for benches and the batch engine.

Minimal by design: a :class:`StageTimer` accumulates named wall-clock
intervals (context-manager style), and :func:`speedup` turns a
serial/parallel pair into the headline number a bench reports.  No
threads, no global state — one timer per measurement.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageTiming:
    """One named wall-clock measurement [s]."""

    name: str
    seconds: float


@dataclass
class StageTimer:
    """Accumulates per-stage wall-clock times in insertion order.

    Usage::

        timer = StageTimer()
        with timer.stage("serial"):
            run_serial()
        with timer.stage("parallel"):
            run_parallel()
        print(timer.format_report())
    """

    stages: list[StageTiming] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str):
        """Time the enclosed block under ``name`` (perf_counter based)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Append an externally measured interval."""
        self.stages.append(StageTiming(name=name, seconds=float(seconds)))

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if absent)."""
        return sum(s.seconds for s in self.stages if s.name == name)

    @property
    def total(self) -> float:
        """Sum of all recorded intervals [s]."""
        return sum(s.seconds for s in self.stages)

    def format_report(self) -> str:
        """Aligned stage/seconds table with a total row."""
        if not self.stages:
            return "(no stages timed)"
        width = max(len(s.name) for s in self.stages)
        width = max(width, len("total"))
        lines = [
            f"{s.name:<{width}s}  {s.seconds:9.4f} s" for s in self.stages
        ]
        lines.append(f"{'total':<{width}s}  {self.total:9.4f} s")
        return "\n".join(lines)


def speedup(serial_seconds: float, parallel_seconds: float) -> float:
    """Serial/parallel wall-clock ratio (inf for a 0-second parallel run)."""
    if parallel_seconds <= 0.0:
        return float("inf")
    return serial_seconds / parallel_seconds
