"""Competitive binding: cross-reactivity and specificity.

"Specific analyte detection is achieved by taking advantage of
bio-affinity recognition" — but no antibody is perfectly specific.  A
related molecule with a (weaker) affinity for the same probe competes
for the same sites, and the sensor cannot tell the two coverages apart.
This module models N species competing for one probe layer:

equilibrium (competitive Langmuir isotherm):

    theta_i = (C_i / K_i) / (1 + sum_j C_j / K_j)

kinetics (coupled ODEs, integrated with SciPy):

    d theta_i / dt = k_on,i C_i (1 - sum_j theta_j) - k_off,i theta_i

The specificity benches quantify the classic outcomes: a high-abundance
weak cross-reactant can mimic a trace target at equilibrium, and —
because it also *unbinds* faster — a wash step separates the two, which
is why assay protocols wash.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import AssayError, ConvergenceError
from ..units import require_nonnegative
from .analytes import Analyte


def competitive_equilibrium(
    analytes: list[Analyte], concentrations: list[float]
) -> np.ndarray:
    """Equilibrium coverages of N species on one probe layer.

    Returns ``theta_i`` per species; the free-site fraction is
    ``1 - sum(theta)``.
    """
    if len(analytes) != len(concentrations) or not analytes:
        raise AssayError("need matching non-empty analyte/concentration lists")
    loads = []
    for analyte, c in zip(analytes, concentrations):
        require_nonnegative("concentration", c)
        kd = analyte.dissociation_constant
        if kd == 0.0:
            raise AssayError(
                f"{analyte.name}: irreversible binders (K_D = 0) have no "
                "competitive equilibrium; use the kinetic model"
            )
        loads.append(c / kd)
    total = 1.0 + sum(loads)
    return np.asarray([load / total for load in loads])


def competitive_transient(
    analytes: list[Analyte],
    concentrations: list[float],
    times: np.ndarray,
    initial_coverages: np.ndarray | None = None,
) -> np.ndarray:
    """Coverage-vs-time for N competing species; shape (N, len(times)).

    Concentrations are constant over the segment (chain segments for
    injection/wash protocols, carrying the final coverages across).
    """
    if len(analytes) != len(concentrations) or not analytes:
        raise AssayError("need matching non-empty analyte/concentration lists")
    t = np.asarray(times, dtype=float)
    if len(t) < 1 or np.any(t < 0.0) or np.any(np.diff(t) <= 0.0):
        raise AssayError("times must be non-negative and strictly increasing")
    n = len(analytes)
    theta0 = (
        np.zeros(n)
        if initial_coverages is None
        else np.asarray(initial_coverages, dtype=float)
    )
    if theta0.shape != (n,) or np.any(theta0 < 0.0) or np.sum(theta0) > 1.0:
        raise AssayError(
            "initial coverages must be non-negative with sum <= 1"
        )

    k_on = np.asarray([a.k_on for a in analytes])
    k_off = np.asarray([a.k_off for a in analytes])
    c = np.asarray(concentrations, dtype=float)

    def rhs(_t, theta):
        free = max(0.0, 1.0 - float(np.sum(theta)))
        return k_on * c * free - k_off * np.clip(theta, 0.0, 1.0)

    t_span = (0.0, float(t[-1]) if t[-1] > 0.0 else 1e-9)
    solution = solve_ivp(
        rhs,
        t_span,
        theta0,
        t_eval=np.clip(t, 0.0, t_span[1]),
        method="LSODA",
        rtol=1e-8,
        atol=1e-12,
    )
    if not solution.success:
        raise ConvergenceError(
            f"competitive-binding integration failed: {solution.message}"
        )
    return np.clip(solution.y, 0.0, 1.0)


@dataclass(frozen=True)
class CrossReactivityReport:
    """Specificity analysis of one probe against a cross-reactant."""

    target_coverage: float
    interferent_coverage: float
    selectivity: float
    apparent_excess_fraction: float


def cross_reactivity(
    target: Analyte,
    target_concentration: float,
    interferent: Analyte,
    interferent_concentration: float,
) -> CrossReactivityReport:
    """Equilibrium specificity of a probe layer against an interferent.

    ``selectivity`` is the coverage ratio normalized by the concentration
    ratio (1 = no discrimination; large = specific);
    ``apparent_excess_fraction`` is the fraction of the *measured*
    coverage signal actually caused by the interferent.
    """
    thetas = competitive_equilibrium(
        [target, interferent],
        [target_concentration, interferent_concentration],
    )
    theta_t, theta_i = float(thetas[0]), float(thetas[1])
    conc_ratio = (
        interferent_concentration / target_concentration
        if target_concentration > 0.0
        else np.inf
    )
    coverage_ratio = theta_t / theta_i if theta_i > 0.0 else np.inf
    total = theta_t + theta_i
    return CrossReactivityReport(
        target_coverage=theta_t,
        interferent_coverage=theta_i,
        selectivity=coverage_ratio * conc_ratio,
        apparent_excess_fraction=theta_i / total if total > 0.0 else 0.0,
    )


def weakened_analyte(analyte: Analyte, affinity_penalty: float, name: str | None = None) -> Analyte:
    """A cross-reactant: same molecule class, ``affinity_penalty``x weaker.

    Models the off-target binder by scaling ``k_off`` up (the usual
    physical situation: similar encounter rate, faster escape).
    """
    if affinity_penalty <= 1.0:
        raise AssayError("affinity penalty must exceed 1 (weaker binding)")
    return Analyte(
        name=name or f"{analyte.name}_crossreactant",
        molecular_mass=analyte.molecular_mass,
        k_on=analyte.k_on,
        k_off=analyte.k_off * affinity_penalty,
        surface_stress_full_coverage=analyte.surface_stress_full_coverage,
        full_coverage_density=analyte.full_coverage_density,
    )
