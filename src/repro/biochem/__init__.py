"""Bio-affinity recognition: analytes, binding kinetics, assay protocols."""

from .analytes import (
    Analyte,
    dna_oligo,
    get_analyte,
    list_analytes,
    register_analyte,
)
from .assay import AssayProtocol, AssayStep, AssayTrace, run_assay, run_binding
from .binding import (
    BindingCurve,
    binding_time_constant,
    coverage_transient,
    equilibrium_coverage,
    initial_binding_rate,
    time_to_coverage,
)
from .competition import (
    CrossReactivityReport,
    competitive_equilibrium,
    competitive_transient,
    cross_reactivity,
    weakened_analyte,
)
from .functionalization import FunctionalizedSurface
from .transport import (
    TransportModel,
    effective_time_constant_ratio,
    initial_rate_transport_limited,
    surface_concentration,
    transport_limited_transient,
)

__all__ = [
    "Analyte",
    "AssayProtocol",
    "AssayStep",
    "AssayTrace",
    "BindingCurve",
    "CrossReactivityReport",
    "competitive_equilibrium",
    "competitive_transient",
    "cross_reactivity",
    "weakened_analyte",
    "FunctionalizedSurface",
    "TransportModel",
    "effective_time_constant_ratio",
    "initial_rate_transport_limited",
    "surface_concentration",
    "transport_limited_transient",
    "binding_time_constant",
    "coverage_transient",
    "dna_oligo",
    "equilibrium_coverage",
    "get_analyte",
    "initial_binding_rate",
    "list_analytes",
    "register_analyte",
    "run_assay",
    "run_binding",
    "time_to_coverage",
]
