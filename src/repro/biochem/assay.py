"""Assay protocols: concentration-vs-time programs and their binding traces.

A real cantilever immunoassay is a sequence of liquid-handling steps:
baseline buffer, sample injection, optionally a wash, sometimes a second
injection (titration).  This module describes such protocols as ordered
segments of constant analyte concentration and evaluates the exact
piecewise-exponential Langmuir coverage across them, producing the
coverage/mass/surface-stress time series that drive both sensor systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AssayError
from ..units import require_nonnegative, require_positive
from .analytes import Analyte
from .binding import BindingCurve, coverage_transient
from .functionalization import FunctionalizedSurface


@dataclass(frozen=True)
class AssayStep:
    """One constant-concentration segment of an assay protocol.

    Parameters
    ----------
    label:
        Human-readable name ("baseline", "inject 10 nM", "wash").
    duration:
        Segment length [s].
    concentration:
        Bulk analyte concentration during the segment [molecules/m^3];
        0 for buffer/wash steps.
    """

    label: str
    duration: float
    concentration: float

    def __post_init__(self) -> None:
        require_positive("duration", self.duration)
        require_nonnegative("concentration", self.concentration)


@dataclass(frozen=True)
class AssayProtocol:
    """Ordered sequence of assay steps.

    Use the convenience constructors for the two standard shapes:
    :meth:`injection` (baseline - sample - wash) and
    :meth:`titration` (baseline, then increasing concentrations).
    """

    steps: tuple[AssayStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise AssayError("an assay protocol needs at least one step")

    @property
    def total_duration(self) -> float:
        """Protocol length [s]."""
        return sum(step.duration for step in self.steps)

    def step_boundaries(self) -> list[float]:
        """Cumulative start times of each step plus the final end time."""
        times = [0.0]
        for step in self.steps:
            times.append(times[-1] + step.duration)
        return times

    def concentration_at(self, times: np.ndarray) -> np.ndarray:
        """Concentration program sampled at arbitrary times [s]."""
        t = np.asarray(times, dtype=float)
        bounds = self.step_boundaries()
        out = np.zeros_like(t)
        for step, start, end in zip(self.steps, bounds[:-1], bounds[1:]):
            mask = (t >= start) & (t < end)
            out[mask] = step.concentration
        out[t >= bounds[-1]] = self.steps[-1].concentration
        return out

    # -- standard protocol shapes --------------------------------------------

    @classmethod
    def injection(
        cls,
        concentration: float,
        *,
        baseline: float = 300.0,
        exposure: float = 1800.0,
        wash: float = 600.0,
    ) -> "AssayProtocol":
        """Baseline -> sample injection -> buffer wash."""
        return cls(
            steps=(
                AssayStep("baseline", baseline, 0.0),
                AssayStep("inject", exposure, concentration),
                AssayStep("wash", wash, 0.0),
            )
        )

    @classmethod
    def titration(
        cls,
        concentrations: list[float],
        *,
        baseline: float = 300.0,
        exposure_each: float = 900.0,
    ) -> "AssayProtocol":
        """Baseline followed by successive concentration steps."""
        if not concentrations:
            raise AssayError("titration needs at least one concentration")
        steps = [AssayStep("baseline", baseline, 0.0)]
        for i, c in enumerate(concentrations):
            steps.append(AssayStep(f"step{i + 1}", exposure_each, c))
        return cls(steps=tuple(steps))


def run_binding(
    analyte: Analyte,
    protocol: AssayProtocol,
    sample_interval: float = 1.0,
    initial_coverage: float = 0.0,
) -> BindingCurve:
    """Evaluate the exact Langmuir coverage across a whole protocol.

    Each constant-concentration segment uses the closed-form exponential
    solution, chained so coverage is continuous at step boundaries.
    """
    require_positive("sample_interval", sample_interval)
    all_t: list[np.ndarray] = []
    all_theta: list[np.ndarray] = []
    all_c: list[np.ndarray] = []

    t_offset = 0.0
    theta = initial_coverage
    for step in protocol.steps:
        n = max(2, int(round(step.duration / sample_interval)) + 1)
        local_t = np.linspace(0.0, step.duration, n)
        local_theta = coverage_transient(
            analyte, step.concentration, local_t, initial_coverage=theta
        )
        all_t.append(local_t[:-1] + t_offset)
        all_theta.append(local_theta[:-1])
        all_c.append(np.full(n - 1, step.concentration))
        theta = float(local_theta[-1])
        t_offset += step.duration

    all_t.append(np.asarray([t_offset]))
    all_theta.append(np.asarray([theta]))
    all_c.append(np.asarray([protocol.steps[-1].concentration]))

    return BindingCurve(
        times=np.concatenate(all_t),
        coverage=np.concatenate(all_theta),
        concentration=np.concatenate(all_c),
    )


@dataclass(frozen=True)
class AssayTrace:
    """Mechanical input time series produced by an assay on one surface.

    Attributes
    ----------
    times:
        Sample times [s].
    coverage:
        Fractional coverage.
    added_mass:
        Bound mass [kg] at each time.
    surface_stress:
        Differential surface stress [N/m] at each time.
    """

    times: np.ndarray
    coverage: np.ndarray
    added_mass: np.ndarray
    surface_stress: np.ndarray


def run_assay(
    surface: FunctionalizedSurface,
    protocol: AssayProtocol,
    sample_interval: float = 1.0,
) -> AssayTrace:
    """Run a protocol on a functionalized surface.

    Reference (blocked) surfaces short-circuit to an all-zero trace —
    nothing binds, so nothing needs integrating.
    """
    if surface.is_reference:
        bounds = protocol.step_boundaries()
        n = max(2, int(round(bounds[-1] / sample_interval)) + 1)
        times = np.linspace(0.0, bounds[-1], n)
        zeros = np.zeros_like(times)
        return AssayTrace(
            times=times, coverage=zeros, added_mass=zeros, surface_stress=zeros
        )

    curve = run_binding(surface.analyte, protocol, sample_interval)
    return AssayTrace(
        times=curve.times,
        coverage=curve.coverage,
        added_mass=np.asarray(surface.added_mass(curve.coverage)),
        surface_stress=np.asarray(surface.surface_stress(curve.coverage)),
    )
