"""Cantilever surface functionalization: coverage to mechanical inputs.

"The cantilevers are functionalized for the capturing of specific
analytes" — this module is that functional layer.  It owns the probe
chemistry on one cantilever's top face and converts a fractional analyte
coverage ``theta`` into the two quantities the mechanics understands:

* added mass  ``dm = theta * Gamma_max * A * m_molecule``  [kg]
* differential surface stress  ``d sigma = theta * sigma_max``  [N/m]

A probe-immobilization efficiency < 1 models the real-world loss between
a perfect monolayer and what wet chemistry delivers; a *reference*
(unfunctionalized or blocked) cantilever uses efficiency 0 and produces
no specific signal — the paper's 4-cantilever array exists largely so
reference beams can cancel drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mechanics.geometry import CantileverGeometry
from ..units import require_fraction
from .analytes import Analyte


@dataclass(frozen=True)
class FunctionalizedSurface:
    """Probe layer on the top face of one cantilever.

    Parameters
    ----------
    analyte:
        The target molecule this surface captures.
    geometry:
        The host cantilever (provides the functionalizable area).
    immobilization_efficiency:
        Fraction of the ideal full-coverage site density actually
        available; 0 turns the beam into a reference cantilever.
    """

    analyte: Analyte
    geometry: CantileverGeometry
    immobilization_efficiency: float = 0.7

    def __post_init__(self) -> None:
        require_fraction(
            "immobilization_efficiency", self.immobilization_efficiency
        )

    @property
    def is_reference(self) -> bool:
        """True for a blocked/reference beam that captures nothing."""
        return self.immobilization_efficiency == 0.0

    @property
    def site_count(self) -> float:
        """Number of available probe sites on the beam."""
        return (
            self.analyte.full_coverage_density
            * self.immobilization_efficiency
            * self.geometry.planform_area
        )

    @property
    def saturation_mass(self) -> float:
        """Added mass at full coverage [kg]."""
        return self.site_count * self.analyte.molecular_mass

    @property
    def saturation_surface_stress(self) -> float:
        """Surface stress at full coverage [N/m]."""
        return (
            self.analyte.surface_stress_full_coverage
            * self.immobilization_efficiency
        )

    # -- coverage -> mechanical inputs ---------------------------------------

    def added_mass(self, coverage: float | np.ndarray) -> float | np.ndarray:
        """Bound analyte mass [kg] at fractional coverage ``theta``."""
        theta = np.clip(np.asarray(coverage, dtype=float), 0.0, 1.0)
        result = theta * self.saturation_mass
        return float(result) if result.ndim == 0 else result

    def surface_stress(self, coverage: float | np.ndarray) -> float | np.ndarray:
        """Differential surface stress [N/m] at coverage ``theta``.

        Linear in coverage — the standard first-order model; the full-
        coverage value already includes the immobilization efficiency.
        """
        theta = np.clip(np.asarray(coverage, dtype=float), 0.0, 1.0)
        result = theta * self.saturation_surface_stress
        return float(result) if result.ndim == 0 else result

    def bound_molecules(self, coverage: float) -> float:
        """Number of bound analyte molecules at coverage ``theta``."""
        return float(np.clip(coverage, 0.0, 1.0)) * self.site_count
