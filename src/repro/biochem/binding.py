"""Langmuir binding kinetics of analyte capture.

Specific capture of analyte by an immobilized probe layer is modeled as
first-order Langmuir adsorption: with fractional coverage ``theta`` of
the available probe sites and bulk analyte concentration ``C``
[molecules/m^3],

    d theta / dt = k_on C (1 - theta) - k_off theta.

For piecewise-constant concentration (the injection/wash segments of an
assay) the ODE has the closed-form solution

    theta(t) = theta_eq + (theta_0 - theta_eq) exp(-t / tau)
    theta_eq = C / (C + K_D),   1/tau = k_on C + k_off

which the library uses instead of numerical integration: it is exact,
fast, and cannot drift out of [0, 1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AssayError
from ..units import require_fraction, require_nonnegative
from .analytes import Analyte


def equilibrium_coverage(analyte: Analyte, concentration: float) -> float:
    """Equilibrium coverage ``theta_eq = C / (C + K_D)`` (Langmuir isotherm)."""
    require_nonnegative("concentration", concentration)
    kd = analyte.dissociation_constant
    if concentration == 0.0 and kd == 0.0:
        return 0.0
    return concentration / (concentration + kd)


def binding_time_constant(analyte: Analyte, concentration: float) -> float:
    """Exponential time constant ``tau = 1 / (k_on C + k_off)`` [s].

    Infinite when both the concentration and ``k_off`` are zero (nothing
    moves); callers treating tau as a rate should use
    :func:`coverage_transient` instead, which handles that case.
    """
    require_nonnegative("concentration", concentration)
    rate = analyte.k_on * concentration + analyte.k_off
    return math.inf if rate == 0.0 else 1.0 / rate


def coverage_transient(
    analyte: Analyte,
    concentration: float,
    times: np.ndarray,
    initial_coverage: float = 0.0,
) -> np.ndarray:
    """Exact coverage-vs-time for a constant-concentration segment.

    Parameters
    ----------
    times:
        Sample times [s], measured from the start of the segment; must be
        non-negative.
    initial_coverage:
        Coverage at ``t = 0``.
    """
    require_fraction("initial_coverage", initial_coverage)
    t = np.asarray(times, dtype=float)
    if np.any(t < 0.0):
        raise AssayError("segment times must be non-negative")
    rate = analyte.k_on * concentration + analyte.k_off
    if rate == 0.0:
        return np.full_like(t, initial_coverage)
    theta_eq = equilibrium_coverage(analyte, concentration)
    return theta_eq + (initial_coverage - theta_eq) * np.exp(-rate * t)


def time_to_coverage(
    analyte: Analyte,
    concentration: float,
    target_coverage: float,
    initial_coverage: float = 0.0,
) -> float:
    """Time [s] for coverage to reach a target during constant exposure.

    Raises :class:`AssayError` if the target is not reachable (beyond the
    equilibrium coverage from the starting point).
    """
    require_fraction("target_coverage", target_coverage)
    require_fraction("initial_coverage", initial_coverage)
    rate = analyte.k_on * concentration + analyte.k_off
    theta_eq = equilibrium_coverage(analyte, concentration)
    num = theta_eq - initial_coverage
    den = theta_eq - target_coverage
    if rate == 0.0 or num == 0.0 or num * den <= 0.0:
        if target_coverage == initial_coverage:
            return 0.0
        raise AssayError(
            f"coverage {target_coverage} unreachable from {initial_coverage} "
            f"at equilibrium {theta_eq:.4g}"
        )
    return math.log(num / den) / rate


@dataclass(frozen=True)
class BindingCurve:
    """A sampled coverage-vs-time trace with its driving concentration."""

    times: np.ndarray
    coverage: np.ndarray
    concentration: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.coverage) == len(self.concentration)):
            raise AssayError("binding-curve arrays must have equal length")

    @property
    def final_coverage(self) -> float:
        """Coverage at the last sample."""
        return float(self.coverage[-1])


def initial_binding_rate(analyte: Analyte, concentration: float) -> float:
    """``d theta/dt`` at zero coverage [1/s]: the kinetic-regime slope.

    In the mass-transport-free Langmuir picture the early-time signal of
    any cantilever assay is linear with this rate, so low-concentration
    quantification reads the slope rather than waiting for equilibrium.
    """
    require_nonnegative("concentration", concentration)
    return analyte.k_on * concentration
