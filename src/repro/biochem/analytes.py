"""Analyte and probe-molecule database.

The paper motivates the sensors with immunoassays ("for the detection of
a specific antigen in the patient's sample, the corresponding antibody is
immobilized on the cantilever surface") and DNA capture.  This module
describes the molecular players: their mass (what the resonant sensor
weighs), the surface stress their binding generates (what the static
sensor feels), and their binding kinetics (how fast either signal
develops).

Values are representative literature numbers — e.g. IgG at 150 kDa,
antibody-antigen K_D in the nM range, DNA hybridization surface stress of
a few mN/m (Fritz et al., Science 288, 2000) — chosen so that simulated
assays land in the regimes the real devices operate in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import DALTON
from ..errors import MaterialError
from ..units import require_positive, require_nonnegative


@dataclass(frozen=True)
class Analyte:
    """A detectable molecule and its probe-binding characteristics.

    Parameters
    ----------
    name:
        Registry key.
    molecular_mass:
        Mass of one molecule [kg].
    k_on:
        Association rate constant [m^3 / (molecule * s)].
        (Divide literature 1/(M s) values by ``AVOGADRO * 1e3``.)
    k_off:
        Dissociation rate constant [1/s].
    surface_stress_full_coverage:
        Differential surface stress at full monolayer coverage [N/m];
        positive = tensile.  Compressive (negative) values are typical
        for DNA hybridization.
    full_coverage_density:
        Molecules per square metre at a full monolayer.
    """

    name: str
    molecular_mass: float
    k_on: float
    k_off: float
    surface_stress_full_coverage: float
    full_coverage_density: float

    def __post_init__(self) -> None:
        require_positive("molecular_mass", self.molecular_mass)
        require_positive("k_on", self.k_on)
        require_nonnegative("k_off", self.k_off)
        require_positive("full_coverage_density", self.full_coverage_density)

    @property
    def dissociation_constant(self) -> float:
        """Equilibrium ``K_D = k_off / k_on`` [molecules/m^3]."""
        return self.k_off / self.k_on

    @property
    def dissociation_constant_molar(self) -> float:
        """``K_D`` expressed in mol/L for comparison with literature."""
        from ..constants import AVOGADRO

        return self.dissociation_constant / (AVOGADRO * 1e3)

    @property
    def full_coverage_mass_density(self) -> float:
        """Areal mass at full coverage [kg/m^2]."""
        return self.molecular_mass * self.full_coverage_density


def _per_molar_second(value: float) -> float:
    """Convert a rate constant from 1/(M s) to m^3/(molecule s)."""
    from ..constants import AVOGADRO

    return value / (AVOGADRO * 1e3)


def _builtin_analytes() -> dict[str, Analyte]:
    kda = 1e3 * DALTON
    return {
        a.name: a
        for a in (
            # IgG antibody captured by immobilized protein A / antigen.
            Analyte(
                name="igg",
                molecular_mass=150.0 * kda,
                k_on=_per_molar_second(1e5),
                k_off=1e-4,
                surface_stress_full_coverage=-4e-3,
                full_coverage_density=1.2e16,  # ~3 mg/m^2 monolayer
            ),
            # Small antigen (e.g. PSA ~ 30 kDa) captured by an antibody layer.
            Analyte(
                name="psa",
                molecular_mass=30.0 * kda,
                k_on=_per_molar_second(2e5),
                k_off=5e-4,
                surface_stress_full_coverage=-2e-3,
                full_coverage_density=2.5e16,  # ~1.2 mg/m^2
            ),
            # C-reactive protein, a standard blood-panel marker (pentamer).
            Analyte(
                name="crp",
                molecular_mass=115.0 * kda,
                k_on=_per_molar_second(3e5),
                k_off=2e-4,
                surface_stress_full_coverage=-3e-3,
                full_coverage_density=1.0e16,  # ~1.9 mg/m^2
            ),
            # 20-mer DNA oligonucleotide hybridizing to a thiolated probe.
            Analyte(
                name="dna_20mer",
                molecular_mass=20 * 650.0 * DALTON,
                k_on=_per_molar_second(1e6),
                k_off=1e-3,
                surface_stress_full_coverage=-5e-3,
                full_coverage_density=3.0e16,  # dense SAM-like packing
            ),
            # Streptavidin on biotinylated surface: near-irreversible anchor.
            Analyte(
                name="streptavidin",
                molecular_mass=53.0 * kda,
                k_on=_per_molar_second(4.5e7),
                k_off=5.4e-6,
                surface_stress_full_coverage=-6e-3,
                full_coverage_density=2.8e16,  # ~2.5 mg/m^2
            ),
        )
    }


_REGISTRY: dict[str, Analyte] = _builtin_analytes()


def get_analyte(name: str) -> Analyte:
    """Look up an analyte by name; raises :class:`MaterialError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MaterialError(f"unknown analyte {name!r}; known: {known}") from None


def register_analyte(analyte: Analyte, *, overwrite: bool = False) -> None:
    """Add a user-defined analyte to the registry."""
    if analyte.name in _REGISTRY and not overwrite:
        raise MaterialError(
            f"analyte {analyte.name!r} already registered; pass overwrite=True"
        )
    _REGISTRY[analyte.name] = analyte


def list_analytes() -> list[str]:
    """Names of all registered analytes, sorted."""
    return sorted(_REGISTRY)


def dna_oligo(bases: int, name: str | None = None) -> Analyte:
    """Construct a single-stranded DNA oligo analyte of given length.

    Mass uses 650 Da per base (duplex-forming strand, sodium salt);
    hybridization kinetics scale weakly with length and are kept at the
    20-mer reference values.
    """
    if bases < 4:
        raise MaterialError("DNA oligos shorter than 4 bases are not modeled")
    ref = get_analyte("dna_20mer")
    return Analyte(
        name=name or f"dna_{bases}mer",
        molecular_mass=bases * 650.0 * DALTON,
        k_on=ref.k_on,
        k_off=ref.k_off,
        surface_stress_full_coverage=ref.surface_stress_full_coverage,
        full_coverage_density=ref.full_coverage_density,
    )
