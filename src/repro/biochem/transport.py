"""Mass-transport-limited binding: when diffusion, not affinity, sets the rate.

The pure Langmuir model of :mod:`repro.biochem.binding` assumes the
analyte concentration at the cantilever surface equals the bulk value.
In a real flow cell, binding *consumes* analyte faster than diffusion
replenishes it, and the surface concentration drops — the famous
transport limitation of surface assays (Squires, Messinger & Manalis,
Nat. Biotech. 2008).

Model: a stagnant boundary layer of thickness ``delta`` couples surface
to bulk with mass-transfer coefficient ``k_m = D / delta``
[m/s].  Quasi-static flux balance at the surface,

    k_m (C_bulk - C_s) = Gamma_max (k_on C_s (1 - theta) - k_off theta),

solves for ``C_s`` in closed form at every instant, giving an ODE for
``theta`` that is integrated with SciPy.  The dimensionless Damkoehler
number

    Da = k_on Gamma_max / k_m

tells the regime: ``Da << 1`` recovers reaction-limited Langmuir
kinetics; ``Da >> 1`` makes the early-time binding rate
``k_m C_bulk / Gamma_max`` — independent of affinity, which is why
transport-limited assays cannot distinguish strong from weak binders by
kinetics alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import AssayError, ConvergenceError
from ..units import require_fraction, require_nonnegative, require_positive
from .analytes import Analyte

#: Typical protein diffusivity in aqueous buffer [m^2/s].
PROTEIN_DIFFUSIVITY: float = 4.0e-11

#: Typical small-oligo DNA diffusivity [m^2/s].
DNA_DIFFUSIVITY: float = 1.0e-10


@dataclass(frozen=True)
class TransportModel:
    """Boundary-layer transport parameters for one assay cell.

    Parameters
    ----------
    diffusivity:
        Analyte diffusion coefficient ``D`` [m^2/s].
    boundary_layer:
        Effective stagnant-layer thickness ``delta`` [m]; tens of um for
        a slow flow cell, a few um under vigorous flow.
    site_density:
        Available probe surface density ``Gamma_max`` [1/m^2] (already
        including immobilization efficiency).
    """

    diffusivity: float = PROTEIN_DIFFUSIVITY
    boundary_layer: float = 30e-6
    site_density: float = 1e16

    def __post_init__(self) -> None:
        require_positive("diffusivity", self.diffusivity)
        require_positive("boundary_layer", self.boundary_layer)
        require_positive("site_density", self.site_density)

    @property
    def mass_transfer_coefficient(self) -> float:
        """``k_m = D / delta`` [m/s]."""
        return self.diffusivity / self.boundary_layer

    def damkoehler(self, analyte: Analyte) -> float:
        """``Da = k_on Gamma_max / k_m`` — transport limitation index."""
        return (
            analyte.k_on * self.site_density / self.mass_transfer_coefficient
        )


def surface_concentration(
    analyte: Analyte,
    transport: TransportModel,
    bulk_concentration: float,
    coverage: float,
) -> float:
    """Quasi-static analyte concentration at the surface [molecules/m^3].

    Closed-form solution of the flux balance; always in
    ``[0, max(C_bulk, C_eq)]``.
    """
    require_nonnegative("bulk_concentration", bulk_concentration)
    require_fraction("coverage", coverage)
    k_m = transport.mass_transfer_coefficient
    gamma = transport.site_density
    numerator = k_m * bulk_concentration + gamma * analyte.k_off * coverage
    denominator = k_m + gamma * analyte.k_on * (1.0 - coverage)
    return numerator / denominator


def transport_limited_transient(
    analyte: Analyte,
    transport: TransportModel,
    bulk_concentration: float,
    times: np.ndarray,
    initial_coverage: float = 0.0,
) -> np.ndarray:
    """Coverage-vs-time with the boundary-layer limitation.

    Integrates ``d theta/dt = k_on C_s (1-theta) - k_off theta`` with the
    quasi-static ``C_s`` from :func:`surface_concentration`.

    Raises
    ------
    ConvergenceError
        If the stiff integrator fails (it should not for physical
        parameters).
    """
    require_fraction("initial_coverage", initial_coverage)
    t = np.asarray(times, dtype=float)
    if len(t) < 1 or np.any(t < 0.0) or np.any(np.diff(t) <= 0.0):
        raise AssayError("times must be non-negative and strictly increasing")

    def rhs(_t, y):
        theta = min(max(y[0], 0.0), 1.0)
        c_s = surface_concentration(
            analyte, transport, bulk_concentration, theta
        )
        return [analyte.k_on * c_s * (1.0 - theta) - analyte.k_off * theta]

    t_span = (0.0, float(t[-1]) if t[-1] > 0.0 else 1e-9)
    solution = solve_ivp(
        rhs,
        t_span,
        [initial_coverage],
        t_eval=np.clip(t, 0.0, t_span[1]),
        method="LSODA",
        rtol=1e-8,
        atol=1e-12,
    )
    if not solution.success:
        raise ConvergenceError(
            f"transport-limited integration failed: {solution.message}"
        )
    return np.clip(solution.y[0], 0.0, 1.0)


def initial_rate_transport_limited(
    analyte: Analyte, transport: TransportModel, bulk_concentration: float
) -> float:
    """Early-time ``d theta/dt`` [1/s] including the transport limit.

    Interpolates between the reaction-limited rate ``k_on C`` (Da -> 0)
    and the flux-limited rate ``k_m C / Gamma_max`` (Da -> inf):
    exactly ``k_on C_s(theta=0)``.
    """
    c_s = surface_concentration(analyte, transport, bulk_concentration, 0.0)
    return analyte.k_on * c_s


def effective_time_constant_ratio(
    analyte: Analyte, transport: TransportModel
) -> float:
    """Slow-down factor of the observed kinetics, ``1 + Da`` (approx).

    The standard first-order result: transport stretches the apparent
    binding time constant by roughly one plus the Damkoehler number.
    """
    return 1.0 + transport.damkoehler(analyte)
