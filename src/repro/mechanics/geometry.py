"""Cantilever geometry description.

A cantilever is a clamped-free rectangular beam of length ``L`` (from the
clamped edge at ``x = 0`` to the free tip at ``x = L``), width ``w``, and
a through-thickness layer stack.  The paper's devices are crystalline-
silicon beams (thickness set by the n-well etch-stop) optionally carrying
residual dielectric or metal layers, so the geometry object stores a
:class:`~repro.mechanics.composite.LayerStack` rather than a single
thickness.  For the common single-material case use
:meth:`CantileverGeometry.uniform`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from ..materials import Material, get_material
from ..units import require_positive
from .composite import Layer, LayerStack


@dataclass(frozen=True)
class CantileverGeometry:
    """Rectangular clamped-free cantilever.

    Parameters
    ----------
    length:
        Beam length ``L`` [m], clamped edge to free tip.
    width:
        Beam width ``w`` [m].
    stack:
        Through-thickness layer stack, bottom to top.

    Notes
    -----
    A plausibility window of aspect ratios is enforced: a "cantilever" with
    ``L < t`` is not a beam and every formula downstream (Euler-Bernoulli,
    Stoney, Sader) would silently produce nonsense for it.
    """

    length: float
    width: float
    stack: LayerStack

    def __post_init__(self) -> None:
        require_positive("length", self.length)
        require_positive("width", self.width)
        if self.thickness <= 0.0:
            raise GeometryError("layer stack must have positive total thickness")
        if self.length < 2.0 * self.thickness:
            raise GeometryError(
                f"length ({self.length:.3g} m) must be at least twice the "
                f"thickness ({self.thickness:.3g} m) for beam theory to apply"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        length: float,
        width: float,
        thickness: float,
        material: Material | str = "silicon",
    ) -> "CantileverGeometry":
        """Single-material cantilever (the released all-silicon beam)."""
        if isinstance(material, str):
            material = get_material(material)
        stack = LayerStack([Layer(material=material, thickness=thickness)])
        return cls(length=length, width=width, stack=stack)

    # -- derived scalars ----------------------------------------------------

    @property
    def thickness(self) -> float:
        """Total stack thickness [m]."""
        return self.stack.total_thickness

    @property
    def planform_area(self) -> float:
        """Top-surface area ``L * w`` [m^2] — the functionalizable area."""
        return self.length * self.width

    @property
    def cross_section_area(self) -> float:
        """Cross-section area ``w * t`` [m^2]."""
        return self.width * self.thickness

    @property
    def mass(self) -> float:
        """Total beam mass [kg]."""
        return self.stack.mass_per_area * self.planform_area

    @property
    def mass_per_length(self) -> float:
        """Mass per unit length ``rho A`` [kg/m]."""
        return self.stack.mass_per_area * self.width

    @property
    def flexural_rigidity(self) -> float:
        """Composite flexural rigidity ``EI`` [N*m^2] about the neutral axis."""
        return self.stack.flexural_rigidity_per_width * self.width

    @property
    def is_wide(self) -> bool:
        """True when ``w >= 5 t``: plate modulus is the better choice."""
        return self.width >= 5.0 * self.thickness

    def scaled(
        self,
        length_factor: float = 1.0,
        width_factor: float = 1.0,
        thickness_factor: float = 1.0,
    ) -> "CantileverGeometry":
        """Return a geometrically scaled copy (for sweep studies)."""
        return CantileverGeometry(
            length=self.length * require_positive("length_factor", length_factor),
            width=self.width * require_positive("width_factor", width_factor),
            stack=self.stack.scaled(
                require_positive("thickness_factor", thickness_factor)
            ),
        )
