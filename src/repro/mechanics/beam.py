"""Euler-Bernoulli statics of the clamped-free cantilever.

Static deflection under tip loads, distributed loads, and end moments —
the building blocks both for the surface-stress bending model
(:mod:`repro.mechanics.surface_stress`) and for calibration/actuation
studies (Lorentz force applied along the beam).

Sign convention: ``z`` positive upward (toward the functionalized top
surface); a positive tip force deflects the tip upward.
"""

from __future__ import annotations

import numpy as np

from .geometry import CantileverGeometry


def spring_constant(geometry: CantileverGeometry) -> float:
    """Static tip spring constant ``k = 3 EI / L^3`` [N/m]."""
    return 3.0 * geometry.flexural_rigidity / geometry.length**3


def tip_deflection_point_force(geometry: CantileverGeometry, force: float) -> float:
    """Tip deflection under a point force at the tip, ``F L^3 / (3 EI)`` [m]."""
    return force * geometry.length**3 / (3.0 * geometry.flexural_rigidity)


def tip_deflection_distributed_force(
    geometry: CantileverGeometry, force_per_length: float
) -> float:
    """Tip deflection under a uniform line load ``q`` [N/m]: ``q L^4 / (8 EI)``."""
    return (
        force_per_length
        * geometry.length**4
        / (8.0 * geometry.flexural_rigidity)
    )


def tip_deflection_end_moment(geometry: CantileverGeometry, moment: float) -> float:
    """Tip deflection under a moment applied at the free end: ``M L^2 / (2 EI)``."""
    return moment * geometry.length**2 / (2.0 * geometry.flexural_rigidity)


def deflection_profile_point_force(
    geometry: CantileverGeometry, force: float, x: np.ndarray
) -> np.ndarray:
    """Deflection ``z(x)`` under a tip point force.

    ``z(x) = F x^2 (3L - x) / (6 EI)`` for ``0 <= x <= L``.
    """
    x = _validated_positions(geometry, x)
    ei = geometry.flexural_rigidity
    return force * x**2 * (3.0 * geometry.length - x) / (6.0 * ei)


def deflection_profile_distributed_force(
    geometry: CantileverGeometry, force_per_length: float, x: np.ndarray
) -> np.ndarray:
    """Deflection ``z(x)`` under a uniform line load ``q`` [N/m].

    ``z(x) = q x^2 (6L^2 - 4Lx + x^2) / (24 EI)``.
    """
    x = _validated_positions(geometry, x)
    ei = geometry.flexural_rigidity
    length = geometry.length
    return (
        force_per_length
        * x**2
        * (6.0 * length**2 - 4.0 * length * x + x**2)
        / (24.0 * ei)
    )


def bending_moment_point_force(
    geometry: CantileverGeometry, force: float, x: np.ndarray
) -> np.ndarray:
    """Internal bending moment ``M(x) = F (L - x)`` for a tip point force [N*m].

    Maximum at the clamped edge — the reason the resonant-mode Wheatstone
    bridge sits there (paper, Section 3).
    """
    x = _validated_positions(geometry, x)
    return force * (geometry.length - x)


def surface_strain_from_moment(
    geometry: CantileverGeometry, moment: np.ndarray | float
) -> np.ndarray | float:
    """Longitudinal strain at the top surface for a bending moment [N*m].

    ``epsilon = M c / EI`` with ``c`` the distance from the neutral axis
    to the top surface.
    """
    c = geometry.thickness - geometry.stack.neutral_axis
    return np.asarray(moment) * c / geometry.flexural_rigidity


def static_deflection_under_gravity(geometry: CantileverGeometry) -> float:
    """Sag of the tip under the beam's own weight [m].

    A sanity quantity: micromachined cantilevers sag by picometres, which
    is why gravity never appears in cantilever-sensor error budgets.
    """
    from ..constants import STANDARD_GRAVITY

    q = geometry.mass_per_length * STANDARD_GRAVITY
    return tip_deflection_distributed_force(geometry, q)


def _validated_positions(geometry: CantileverGeometry, x: np.ndarray) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(x, dtype=float))
    if np.any(arr < -1e-15) or np.any(arr > geometry.length * (1.0 + 1e-12)):
        raise ValueError(
            f"positions must lie within [0, L={geometry.length:.3g} m]"
        )
    return np.clip(arr, 0.0, geometry.length)
