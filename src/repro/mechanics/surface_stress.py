"""Static cantilever bending from analyte-induced surface stress (Fig. 1).

When analyte molecules bind to the functionalized top surface, the
in-plane surface stress of that face changes by ``d sigma_s`` [N/m].
For a thin beam the differential surface stress between top and bottom
faces bends the beam to a uniform curvature — the Stoney-type result

    kappa = 6 (1 - nu) d sigma_s / (E t^2)

(with the plate factor ``(1 - nu)`` for wide beams), giving a tip
deflection ``z = kappa L^2 / 2`` and a *uniform* longitudinal surface
strain along the beam.  The uniform strain is why the static system's
Wheatstone bridge is distributed over the cantilever length (paper,
Section 3): unlike a point-force load there is no unique stress maximum
at the clamp, so a larger bridge area lowers 1/f noise at no signal cost.

Composite beams use the transformed-section rigidity and the stress
couple produced by the surface-stress change at the top face.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import require_positive
from .geometry import CantileverGeometry


def curvature(geometry: CantileverGeometry, surface_stress: float) -> float:
    """Beam curvature [1/m] produced by differential surface stress [N/m].

    The surface stress acts as a line force per unit width at the top
    surface, at lever arm ``c_top`` from the composite neutral axis; the
    moment per width ``d sigma_s * c_top`` over the rigidity per width
    gives the curvature.  For a uniform single-material beam this reduces
    exactly to Stoney's ``6 d sigma_s / (E t^2)`` (uniaxial form); wide
    beams pick up the biaxial factor ``(1 - nu)`` because the surface
    stress is isotropic in-plane and transverse bending is suppressed,
    recovering Stoney's plate form ``6 (1 - nu) d sigma_s / (E t^2)``.
    """
    stack = geometry.stack
    c_top = stack.total_thickness - stack.neutral_axis
    kappa = surface_stress * c_top / stack.flexural_rigidity_per_width
    if geometry.is_wide:
        nu = stack.layers[-1].material.poisson_ratio
        kappa *= 1.0 - nu
    return kappa


def tip_deflection(geometry: CantileverGeometry, surface_stress: float) -> float:
    """Tip deflection ``z = kappa L^2 / 2`` [m] for a surface stress [N/m].

    Positive surface-stress change (tensile increase on top) bends the
    beam *away* from the functionalized side; we report the deflection
    with that sign (positive = downward curl for tensile top stress is a
    matter of convention — here positive stress gives positive deflection
    magnitude with curvature toward the bottom, reported as positive).
    """
    return curvature(geometry, surface_stress) * geometry.length**2 / 2.0


def deflection_profile(
    geometry: CantileverGeometry, surface_stress: float, x: np.ndarray
) -> np.ndarray:
    """Deflection ``z(x) = kappa x^2 / 2``: parabolic for uniform curvature."""
    x = np.asarray(x, dtype=float)
    return curvature(geometry, surface_stress) * x**2 / 2.0


def surface_strain(geometry: CantileverGeometry, surface_stress: float) -> float:
    """Uniform longitudinal strain at the top surface, ``kappa * c_top``.

    This is the strain the distributed piezoresistive bridge of the static
    system sees; it is constant along the beam for uniform surface stress.
    """
    stack = geometry.stack
    c_top = stack.total_thickness - stack.neutral_axis
    return curvature(geometry, surface_stress) * c_top


def surface_bending_stress(
    geometry: CantileverGeometry, surface_stress: float
) -> float:
    """Longitudinal bending stress [Pa] at the top surface.

    ``sigma = E_top * epsilon`` with the top layer's modulus; what the
    piezoresistive coefficients multiply.
    """
    e_top = geometry.stack.layers[-1].material.youngs_modulus
    return e_top * surface_strain(geometry, surface_stress)


def stoney_uniform(
    youngs_modulus: float,
    poisson_ratio: float,
    thickness: float,
    surface_stress: float,
    *,
    wide: bool = True,
) -> float:
    """Textbook Stoney curvature for a uniform beam [1/m].

    ``kappa = 6 (1 - nu) d sigma / (E t^2)`` for wide beams (plate), or
    ``6 d sigma / (E t^2)`` for narrow (uniaxial) beams.  Provided as a
    closed-form anchor for tests and quick estimates.
    """
    require_positive("youngs_modulus", youngs_modulus)
    require_positive("thickness", thickness)
    factor = (1.0 - poisson_ratio) if wide else 1.0
    return 6.0 * factor * surface_stress / (youngs_modulus * thickness**2)


@dataclass(frozen=True)
class StaticResponse:
    """Complete static response of a cantilever to a surface-stress step."""

    surface_stress: float
    curvature: float
    tip_deflection: float
    surface_strain: float
    surface_bending_stress: float


def static_response(
    geometry: CantileverGeometry, surface_stress: float
) -> StaticResponse:
    """Evaluate all static-response quantities at once."""
    return StaticResponse(
        surface_stress=surface_stress,
        curvature=curvature(geometry, surface_stress),
        tip_deflection=tip_deflection(geometry, surface_stress),
        surface_strain=surface_strain(geometry, surface_stress),
        surface_bending_stress=surface_bending_stress(geometry, surface_stress),
    )
