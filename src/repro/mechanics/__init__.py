"""Cantilever beam mechanics: geometry, statics, modes, and dynamics."""

from .composite import Layer, LayerStack
from .geometry import CantileverGeometry
from . import beam, duffing, modal, resonance, surface_stress, thermal_noise
from .dynamics import ModalResonator, ResonatorState
from .modal import Mode, analyze_modes, natural_frequency
from .resonance import (
    ResonantResponse,
    frequency_shift,
    frequency_with_added_mass,
    mass_from_frequency_shift,
    mass_responsivity,
    minimum_detectable_mass,
    resonant_response,
)
from .surface_stress import StaticResponse, static_response, stoney_uniform

__all__ = [
    "CantileverGeometry",
    "Layer",
    "LayerStack",
    "ModalResonator",
    "Mode",
    "ResonantResponse",
    "ResonatorState",
    "StaticResponse",
    "analyze_modes",
    "beam",
    "duffing",
    "frequency_shift",
    "frequency_with_added_mass",
    "mass_from_frequency_shift",
    "mass_responsivity",
    "minimum_detectable_mass",
    "modal",
    "natural_frequency",
    "resonance",
    "resonant_response",
    "static_response",
    "stoney_uniform",
    "surface_stress",
    "thermal_noise",
]
