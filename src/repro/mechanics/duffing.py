"""Geometric (Duffing) nonlinearity of the driven cantilever.

At large amplitude a clamped-free beam stiffens: mid-plane stretching
adds a cubic restoring force, turning the modal equation into

    m x'' + c x' + k x (1 + (x / x_c)^2 ...) = F(t)
    i.e.  m x'' + c x' + k x + k3 x^3 = F(t)

The practical consequences for the resonant biosensor:

* the **backbone curve** — the free-vibration frequency rises with
  amplitude, ``f(a) = f0 (1 + kappa_b a^2)`` with
  ``kappa_b = 3 k3 / (8 k)`` (first-order averaging);
* **amplitude-to-frequency conversion** — any amplitude noise or drift
  of the oscillation converts into frequency error at slope
  ``df/da = 2 f0 kappa_b a``, indistinguishable from binding.  This is
  the deep reason the paper's non-linear amplitude limiter (CLM5) must
  hold the amplitude *constant*, not merely bounded.

For cantilevers the standard geometric coefficient is
``k3 = alpha_NL k / t^2`` with ``alpha_NL ~ 0.3-0.5`` for mode 1
(hardening); the default uses 0.4.

The integrator: the linear part advances with the exact ZOH propagator
of :class:`ModalResonator`; the cubic force is applied as an extra
held force evaluated at the step start (first-order splitting), which
the tests validate against the backbone to < 3 % at a = t/3.
"""

from __future__ import annotations

import math

import numpy as np

from ..units import require_nonnegative, require_positive
from .dynamics import ModalResonator
from .geometry import CantileverGeometry
from .modal import analyze_modes

#: Default geometric-nonlinearity coefficient for cantilever mode 1.
GEOMETRIC_ALPHA: float = 0.4


def cubic_stiffness(geometry: CantileverGeometry, alpha: float = GEOMETRIC_ALPHA) -> float:
    """Cubic modal stiffness ``k3 = alpha k / t^2`` [N/m^3]."""
    require_positive("alpha", alpha)
    mode = analyze_modes(geometry, 1)[0]
    return alpha * mode.effective_stiffness / geometry.thickness**2


def backbone_frequency(
    frequency_0: float, stiffness: float, cubic: float, amplitude: float
) -> float:
    """Free-vibration frequency at a given amplitude [Hz].

    First-order averaging: ``f(a) = f0 (1 + 3 k3 a^2 / 8 k)``.
    """
    require_positive("frequency_0", frequency_0)
    require_positive("stiffness", stiffness)
    require_nonnegative("amplitude", amplitude)
    return frequency_0 * (1.0 + 3.0 * cubic * amplitude**2 / (8.0 * stiffness))


def amplitude_to_frequency_slope(
    frequency_0: float, stiffness: float, cubic: float, amplitude: float
) -> float:
    """``df/da`` [Hz/m] at an operating amplitude — the AM-to-FM gain.

    Multiplied by the oscillator's amplitude noise this is frequency
    noise; multiplied by an amplitude *drift* it is a fake binding
    signal.
    """
    return frequency_0 * 3.0 * cubic * amplitude / (4.0 * stiffness)


def critical_amplitude(geometry: CantileverGeometry, quality_factor: float,
                       alpha: float = GEOMETRIC_ALPHA) -> float:
    """Amplitude where the response curve first folds (bistability) [m].

    ``a_c = t sqrt(8 / (3 alpha sqrt(3) Q))`` (from the standard Duffing
    bifurcation condition ``kappa_b a^2 Q ~ 0.54``); operating well below
    it keeps the resonance single-valued.
    """
    require_positive("quality_factor", quality_factor)
    return geometry.thickness * math.sqrt(
        8.0 / (3.0 * math.sqrt(3.0) * alpha * quality_factor)
    )


class DuffingResonator(ModalResonator):
    """Modal resonator with a cubic (hardening) stiffness term.

    The linear part uses the parent's exact ZOH propagator; the cubic
    restoring force ``-k3 x^3`` enters as an extra held force per step.

    Parameters
    ----------
    cubic_stiffness:
        ``k3`` [N/m^3]; 0 recovers the linear resonator exactly.
    """

    def __init__(
        self,
        effective_mass: float,
        effective_stiffness: float,
        quality_factor: float,
        timestep: float,
        cubic_stiffness: float = 0.0,
    ) -> None:
        super().__init__(
            effective_mass, effective_stiffness, quality_factor, timestep
        )
        self.cubic_stiffness = require_nonnegative(
            "cubic_stiffness", cubic_stiffness
        )

    @classmethod
    def from_geometry(
        cls,
        geometry: CantileverGeometry,
        quality_factor: float,
        mode: int = 1,
        steps_per_cycle: int = 40,
        alpha: float = GEOMETRIC_ALPHA,
    ) -> "DuffingResonator":
        """Build with the geometric cubic coefficient of the beam."""
        modal = analyze_modes(geometry, mode)[mode - 1]
        timestep = 1.0 / (modal.frequency * steps_per_cycle)
        return cls(
            effective_mass=modal.effective_mass,
            effective_stiffness=modal.effective_stiffness,
            quality_factor=quality_factor,
            timestep=timestep,
            cubic_stiffness=alpha * modal.effective_stiffness / geometry.thickness**2,
        )

    def step(self, force: float) -> float:
        x = self.state.displacement
        nonlinear_force = -self.cubic_stiffness * x**3
        return super().step(force + nonlinear_force)

    def backbone(self, amplitude: float) -> float:
        """Free-vibration frequency at an amplitude [Hz] (averaging)."""
        return backbone_frequency(
            self.natural_frequency,
            self.effective_stiffness,
            self.cubic_stiffness,
            amplitude,
        )

    def am_to_fm_slope(self, amplitude: float) -> float:
        """``df/da`` [Hz/m] at an amplitude."""
        return amplitude_to_frequency_slope(
            self.natural_frequency,
            self.effective_stiffness,
            self.cubic_stiffness,
            amplitude,
        )
