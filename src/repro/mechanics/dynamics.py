"""Time-domain dynamics of the cantilever as a modal resonator.

The feedback loop of Fig. 5 contains the cantilever as the
frequency-selective element, so the closed-loop simulation needs a
time-stepping model of one vibration mode:

    m_eff x'' + c x' + k_eff x = F(t)

with ``x`` the tip displacement, ``F`` the tip-referenced modal force,
and ``c = sqrt(k m) / Q`` set by the (fluid) quality factor.

The integrator uses the *exact* zero-order-hold discretization of the
linear state-space model (matrix exponential), so it is unconditionally
stable and phase-exact at any step size — important because the loop
simulation runs hundreds of thousands of cycles and a Runge-Kutta phase
drift would masquerade as a frequency shift, i.e. as fake analyte.
Parameters (mass, stiffness, damping) may be updated between steps to
model analyte binding during oscillation; the propagator is re-derived
lazily.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from ..units import require_positive
from .geometry import CantileverGeometry
from .modal import analyze_modes


@dataclass
class ResonatorState:
    """Displacement [m] and velocity [m/s] of the modal coordinate."""

    displacement: float = 0.0
    velocity: float = 0.0


class ModalResonator:
    """Single-mode damped harmonic oscillator with exact ZOH stepping.

    Parameters
    ----------
    effective_mass:
        Modal mass [kg].
    effective_stiffness:
        Modal stiffness [N/m].
    quality_factor:
        Q of the mode (sets viscous damping ``c = sqrt(k m) / Q``).
    timestep:
        Integration step [s]; should be well below ``1 / (20 f0)`` for a
        smooth waveform (the propagator itself is exact at any step).
    """

    def __init__(
        self,
        effective_mass: float,
        effective_stiffness: float,
        quality_factor: float,
        timestep: float,
    ) -> None:
        self._m = require_positive("effective_mass", effective_mass)
        self._k = require_positive("effective_stiffness", effective_stiffness)
        self._q = require_positive("quality_factor", quality_factor)
        self._h = require_positive("timestep", timestep)
        self.state = ResonatorState()
        self._propagator: tuple[np.ndarray, np.ndarray] | None = None
        self._scalars: tuple[float, ...] | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_geometry(
        cls,
        geometry: CantileverGeometry,
        quality_factor: float,
        mode: int = 1,
        steps_per_cycle: int = 40,
    ) -> "ModalResonator":
        """Build the modal resonator of a cantilever's *n*-th mode.

        ``steps_per_cycle`` sets the timestep from the natural frequency.
        """
        if steps_per_cycle < 4:
            raise GeometryError("need at least 4 steps per cycle")
        modal = analyze_modes(geometry, mode)[mode - 1]
        timestep = 1.0 / (modal.frequency * steps_per_cycle)
        return cls(
            effective_mass=modal.effective_mass,
            effective_stiffness=modal.effective_stiffness,
            quality_factor=quality_factor,
            timestep=timestep,
        )

    # -- parameters -----------------------------------------------------------

    @property
    def effective_mass(self) -> float:
        """Modal mass [kg]."""
        return self._m

    @property
    def effective_stiffness(self) -> float:
        """Modal stiffness [N/m]."""
        return self._k

    @property
    def quality_factor(self) -> float:
        """Quality factor of the mode."""
        return self._q

    @property
    def timestep(self) -> float:
        """Integration step [s]."""
        return self._h

    @property
    def damping_coefficient(self) -> float:
        """Viscous damping ``c = sqrt(k m) / Q`` [N*s/m]."""
        return math.sqrt(self._k * self._m) / self._q

    @property
    def natural_frequency(self) -> float:
        """Undamped natural frequency [Hz]."""
        return math.sqrt(self._k / self._m) / (2.0 * math.pi)

    @property
    def damped_frequency(self) -> float:
        """Damped free-vibration frequency [Hz] (0 when overdamped)."""
        zeta = 1.0 / (2.0 * self._q)
        if zeta >= 1.0:
            return 0.0
        return self.natural_frequency * math.sqrt(1.0 - zeta**2)

    def set_parameters(
        self,
        effective_mass: float | None = None,
        effective_stiffness: float | None = None,
        quality_factor: float | None = None,
    ) -> None:
        """Update physical parameters mid-simulation (analyte binding).

        State (displacement, velocity) is preserved; the exact propagator
        is rebuilt on the next step.
        """
        if effective_mass is not None:
            self._m = require_positive("effective_mass", effective_mass)
        if effective_stiffness is not None:
            self._k = require_positive("effective_stiffness", effective_stiffness)
        if quality_factor is not None:
            self._q = require_positive("quality_factor", quality_factor)
        self._propagator = None
        self._scalars = None

    # -- integration ----------------------------------------------------------

    def _build_propagator(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact ZOH discretization (Ad, Bd) of the continuous system.

        Continuous:  d/dt [x, v] = A [x, v] + B F  with
        ``A = [[0, 1], [-k/m, -c/m]]``, ``B = [0, 1/m]``.
        Discrete:  ``s+ = Ad s + Bd F`` with ``Ad = expm(A h)`` and
        ``Bd = A^-1 (Ad - I) B`` (A is invertible because k > 0).
        """
        from scipy.linalg import expm

        m, k, h = self._m, self._k, self._h
        c = self.damping_coefficient
        a = np.array([[0.0, 1.0], [-k / m, -c / m]])
        b = np.array([0.0, 1.0 / m])
        ad = expm(a * h)
        bd = np.linalg.solve(a, (ad - np.eye(2)) @ b)
        return ad, bd

    def propagator(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached exact-ZOH ``(Ad, Bd)``; rebuilt after parameter updates.

        This is the public face of the discretization — the fused loop
        kernel reads it to embed the mode as flat coefficients.
        """
        if self._propagator is None:
            self._propagator = self._build_propagator()
            ad, bd = self._propagator
            self._scalars = (
                float(ad[0, 0]), float(ad[0, 1]),
                float(ad[1, 0]), float(ad[1, 1]),
                float(bd[0]), float(bd[1]),
            )
        return self._propagator

    def step(self, force: float) -> float:
        """Advance one timestep with the force held constant; return x."""
        if self._scalars is None:
            self.propagator()
        a11, a12, a21, a22, b1, b2 = self._scalars
        x = self.state.displacement
        v = self.state.velocity
        self.state.displacement = a11 * x + a12 * v + b1 * force
        self.state.velocity = a21 * x + a22 * v + b2 * force
        return self.state.displacement

    def run(self, force: np.ndarray) -> np.ndarray:
        """Integrate a whole force waveform; returns displacement samples."""
        force = np.asarray(force, dtype=float)
        out = np.empty_like(force)
        for i, f in enumerate(force):
            out[i] = self.step(float(f))
        return out

    def ring_down(self, cycles: float) -> np.ndarray:
        """Free decay from the current state over ``cycles`` natural periods."""
        n = max(1, int(round(cycles / (self.natural_frequency * self._h))))
        return self.run(np.zeros(n))

    def reset(self, displacement: float = 0.0, velocity: float = 0.0) -> None:
        """Reset the mechanical state."""
        self.state = ResonatorState(displacement=displacement, velocity=velocity)

    # -- frequency-domain helpers ----------------------------------------------

    def transfer_function(self, frequency: np.ndarray) -> np.ndarray:
        """Complex force-to-displacement response ``X/F`` at frequencies [Hz].

        ``H(f) = 1 / (k - m w^2 + j w c)``.
        """
        w = 2.0 * math.pi * np.asarray(frequency, dtype=float)
        return 1.0 / (self._k - self._m * w**2 + 1j * w * self.damping_coefficient)

    def resonance_peak_frequency(self) -> float:
        """Frequency of maximum displacement amplitude [Hz].

        ``f_peak = f0 sqrt(1 - 1/(2 Q^2))``; 0 when the peak vanishes
        (Q <= 1/sqrt(2)).
        """
        term = 1.0 - 1.0 / (2.0 * self._q**2)
        if term <= 0.0:
            return 0.0
        return self.natural_frequency * math.sqrt(term)
