"""Thermomechanical (Brownian) noise — the transducer's physical floor.

The cantilever is a damped mechanical resonator in thermal equilibrium,
so the fluctuation-dissipation theorem forces it to move on its own:
the Langevin force PSD is

    S_F = 4 k_B T c = 4 k_B T sqrt(k m_eff) / Q     [N^2/Hz]

No readout can resolve signals below the motion this force produces,
which makes these formulas the reference line every electronics noise
budget in the library is compared against:

* static mode — the below-resonance displacement noise floor
  ``sqrt(S_F) / k`` and its equivalent surface stress;
* resonant mode — the phase diffusion of the oscillation, which sets
  the frequency stability at a given drive amplitude (Robins/Leeson
  form) and hence the thermomechanical mass-resolution limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import BOLTZMANN, ROOM_TEMPERATURE
from ..units import require_positive


def langevin_force_psd(
    effective_mass: float,
    effective_stiffness: float,
    quality_factor: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """One-sided thermal force PSD ``4 k_B T sqrt(k m) / Q`` [N^2/Hz]."""
    require_positive("effective_mass", effective_mass)
    require_positive("effective_stiffness", effective_stiffness)
    require_positive("quality_factor", quality_factor)
    require_positive("temperature", temperature)
    damping = math.sqrt(effective_stiffness * effective_mass) / quality_factor
    return 4.0 * BOLTZMANN * temperature * damping


def displacement_noise_psd(
    frequency: np.ndarray,
    effective_mass: float,
    effective_stiffness: float,
    quality_factor: float,
    temperature: float = ROOM_TEMPERATURE,
) -> np.ndarray:
    """Thermomechanical displacement noise PSD [m^2/Hz] vs frequency.

    ``S_x(f) = S_F |H(f)|^2`` with the resonator's force-to-displacement
    response; peaks at resonance, flattens to ``S_F / k^2`` below it.
    """
    s_f = langevin_force_psd(
        effective_mass, effective_stiffness, quality_factor, temperature
    )
    w = 2.0 * math.pi * np.asarray(frequency, dtype=float)
    damping = math.sqrt(effective_stiffness * effective_mass) / quality_factor
    h2 = 1.0 / (
        (effective_stiffness - effective_mass * w**2) ** 2 + (w * damping) ** 2
    )
    return s_f * h2


def static_displacement_floor(
    effective_stiffness: float,
    effective_mass: float,
    quality_factor: float,
    bandwidth: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """RMS below-resonance Brownian deflection [m] in a bandwidth [Hz].

    Uses the flat low-frequency plateau ``S_x = S_F / k^2``; valid while
    the measurement band sits well below resonance — the static sensor's
    operating condition.
    """
    require_positive("bandwidth", bandwidth)
    s_f = langevin_force_psd(
        effective_mass, effective_stiffness, quality_factor, temperature
    )
    return math.sqrt(s_f * bandwidth) / effective_stiffness


def rms_thermal_displacement(
    effective_stiffness: float, temperature: float = ROOM_TEMPERATURE
) -> float:
    """Total (all-band) equipartition rms motion ``sqrt(kT/k)`` [m]."""
    require_positive("effective_stiffness", effective_stiffness)
    return math.sqrt(BOLTZMANN * temperature / effective_stiffness)


def noise_equivalent_surface_stress(
    geometry,
    quality_factor: float,
    bandwidth: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """Surface stress [N/m] whose deflection equals the Brownian floor.

    The static system's thermomechanical limit of detection: combine
    with the readout-noise equivalent stress to see which dominates.
    """
    from .beam import spring_constant
    from .modal import analyze_modes
    from .surface_stress import tip_deflection

    mode = analyze_modes(geometry, 1)[0]
    floor = static_displacement_floor(
        spring_constant(geometry),
        mode.effective_mass,
        quality_factor,
        bandwidth,
        temperature,
    )
    per_unit = abs(tip_deflection(geometry, 1.0))
    return floor / per_unit


@dataclass(frozen=True)
class OscillatorStability:
    """Thermomechanical frequency-stability summary of a driven resonator."""

    fractional_frequency_noise: float
    frequency_noise: float
    mass_resolution: float


def thermomechanical_frequency_stability(
    geometry,
    fluid_mode,
    drive_amplitude: float,
    averaging_time: float,
    temperature: float = ROOM_TEMPERATURE,
) -> OscillatorStability:
    """Thermal-noise-limited oscillator stability (Robins formula).

    For a self-oscillating resonator at amplitude ``a`` the Allan
    deviation floor from additive thermal motion is

        sigma_y = sqrt( k_B T / (k_eff a^2) ) * sqrt(1 / (2 Q^2 w0 tau))

    — the standard driven-resonator result (Ekinci/Roukes form).  The
    corresponding mass resolution uses the sensor's responsivity.

    Parameters
    ----------
    fluid_mode:
        A :class:`repro.fluidics.immersion.FluidLoadedMode` (or anything
        with ``frequency``, ``quality_factor``, ``effective_mass``).
    drive_amplitude:
        Steady oscillation tip amplitude [m].
    averaging_time:
        Counter gate / averaging time [s].
    """
    require_positive("drive_amplitude", drive_amplitude)
    require_positive("averaging_time", averaging_time)
    w0 = 2.0 * math.pi * fluid_mode.frequency
    k_eff = fluid_mode.effective_mass * w0**2
    energy_ratio = BOLTZMANN * temperature / (k_eff * drive_amplitude**2)
    q = fluid_mode.quality_factor
    sigma_y = math.sqrt(energy_ratio) * math.sqrt(
        1.0 / (2.0 * q**2 * w0 * averaging_time)
    )
    from .modal import effective_mass_fraction

    responsivity = (
        fluid_mode.frequency
        * effective_mass_fraction(1)
        / (2.0 * fluid_mode.effective_mass)
    )
    df = sigma_y * fluid_mode.frequency
    return OscillatorStability(
        fractional_frequency_noise=sigma_y,
        frequency_noise=df,
        mass_resolution=df / responsivity,
    )
