"""Composite (multilayer) beam cross-sections.

The released cantilever of a post-CMOS process is rarely a single
material: depending on which front-side etch steps are used, the beam can
be bare crystalline silicon, or silicon plus residual field oxide,
inter-metal dielectric, passivation nitride, or an aluminium coil layer.
The bending stiffness and mass of such a stack follow from the classical
transformed-section method: the neutral axis is the modulus-weighted
centroid, and the flexural rigidity sums each layer's contribution about
that axis.

Everything here is *per unit width*; multiply by the beam width to get
beam-level quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import GeometryError
from ..materials import Material, get_material
from ..units import require_positive


@dataclass(frozen=True)
class Layer:
    """One layer of a through-thickness stack.

    Parameters
    ----------
    material:
        Layer material (or registry name).
    thickness:
        Layer thickness [m].
    """

    material: Material
    thickness: float

    def __post_init__(self) -> None:
        if isinstance(self.material, str):
            object.__setattr__(self, "material", get_material(self.material))
        require_positive("thickness", self.thickness)


class LayerStack:
    """Ordered stack of layers, bottom (z = 0) to top.

    The stack exposes the transformed-section properties a beam model
    needs: modulus-weighted neutral axis, flexural rigidity per width,
    mass per area, and the extensional stiffness used for surface-stress
    bending of composite beams.
    """

    def __init__(self, layers: Sequence[Layer] | Iterable[Layer]) -> None:
        self._layers: tuple[Layer, ...] = tuple(layers)
        if not self._layers:
            raise GeometryError("a layer stack needs at least one layer")

    # -- basic structure ----------------------------------------------------

    @property
    def layers(self) -> tuple[Layer, ...]:
        """Layers bottom-to-top."""
        return self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    @property
    def total_thickness(self) -> float:
        """Total stack thickness [m]."""
        return sum(layer.thickness for layer in self._layers)

    def interfaces(self) -> list[float]:
        """z-coordinates of layer boundaries, ``[0, z1, ..., t_total]``."""
        zs = [0.0]
        for layer in self._layers:
            zs.append(zs[-1] + layer.thickness)
        return zs

    # -- transformed-section mechanics ---------------------------------------

    @property
    def extensional_stiffness_per_width(self) -> float:
        """``sum(E_i t_i)`` [N/m]: axial stiffness per unit width."""
        return sum(
            layer.material.youngs_modulus * layer.thickness for layer in self._layers
        )

    @property
    def neutral_axis(self) -> float:
        """Modulus-weighted centroid height above the bottom surface [m]."""
        weighted = 0.0
        zs = self.interfaces()
        for layer, z_low, z_high in zip(self._layers, zs[:-1], zs[1:]):
            mid = 0.5 * (z_low + z_high)
            weighted += layer.material.youngs_modulus * layer.thickness * mid
        return weighted / self.extensional_stiffness_per_width

    @property
    def flexural_rigidity_per_width(self) -> float:
        """``EI`` per unit width [N*m] about the stack's neutral axis.

        Each layer contributes its own-axis term ``E t^3 / 12`` plus a
        parallel-axis term ``E t d^2`` with ``d`` the layer-centroid offset
        from the neutral axis.
        """
        z_na = self.neutral_axis
        rigidity = 0.0
        zs = self.interfaces()
        for layer, z_low, z_high in zip(self._layers, zs[:-1], zs[1:]):
            e = layer.material.youngs_modulus
            t = layer.thickness
            mid = 0.5 * (z_low + z_high)
            rigidity += e * (t**3 / 12.0 + t * (mid - z_na) ** 2)
        return rigidity

    @property
    def mass_per_area(self) -> float:
        """``sum(rho_i t_i)`` [kg/m^2]."""
        return sum(layer.material.density * layer.thickness for layer in self._layers)

    @property
    def effective_youngs_modulus(self) -> float:
        """Modulus of the uniform beam with the same ``EI`` and thickness [Pa].

        Defined by ``E_eff t^3 / 12 = flexural_rigidity_per_width``; useful
        for plugging a composite stack into single-material formulas such
        as Stoney's equation.
        """
        t = self.total_thickness
        return 12.0 * self.flexural_rigidity_per_width / t**3

    @property
    def effective_density(self) -> float:
        """Density of the uniform beam with the same mass and thickness."""
        return self.mass_per_area / self.total_thickness

    # -- residual stress -----------------------------------------------------

    @property
    def residual_moment_per_width(self) -> float:
        """Bending moment per width [N] from as-deposited film stresses.

        Each layer's intrinsic stress ``sigma_i`` acting over thickness
        ``t_i`` at offset ``d_i`` from the neutral axis produces a moment
        ``sigma_i t_i d_i``; a non-zero total is what curls real released
        cantilevers even before any analyte arrives.
        """
        z_na = self.neutral_axis
        moment = 0.0
        zs = self.interfaces()
        for layer, z_low, z_high in zip(self._layers, zs[:-1], zs[1:]):
            mid = 0.5 * (z_low + z_high)
            moment += layer.material.intrinsic_stress * layer.thickness * (mid - z_na)
        return moment

    def residual_curvature(self) -> float:
        """Beam curvature [1/m] induced by the residual film stresses."""
        return self.residual_moment_per_width / self.flexural_rigidity_per_width

    # -- utilities -----------------------------------------------------------

    def scaled(self, thickness_factor: float) -> "LayerStack":
        """Stack with every layer thickness multiplied by ``factor``."""
        require_positive("thickness_factor", thickness_factor)
        return LayerStack(
            Layer(material=layer.material, thickness=layer.thickness * thickness_factor)
            for layer in self._layers
        )

    def with_layer_on_top(self, layer: Layer) -> "LayerStack":
        """Stack with an extra layer added on top (e.g. a gold coating)."""
        return LayerStack(self._layers + (layer,))

    def describe(self) -> str:
        """Human-readable stack inventory, bottom to top."""
        lines = []
        for i, layer in enumerate(self._layers):
            lines.append(
                f"  [{i}] {layer.material.name:<16s} {layer.thickness * 1e6:8.3f} um"
            )
        lines.append(f"  total thickness {self.total_thickness * 1e6:.3f} um")
        return "\n".join(lines)
