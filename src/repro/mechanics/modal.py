"""Modal analysis of the clamped-free beam.

Mode shapes, natural frequencies, and modal (effective) masses of the
Euler-Bernoulli cantilever.  The resonant biosensor works on mode 1, but
higher modes matter for two reasons the library exercises: mass
responsivity grows with mode number, and the feedback loop must not lock
onto a higher mode (the high-pass/band-limiting choices in Fig. 5 set
which mode wins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import CLAMPED_FREE_EIGENVALUES
from ..errors import GeometryError
from .geometry import CantileverGeometry


def eigenvalue(mode: int) -> float:
    """Clamped-free eigenvalue ``lambda_n`` (mode numbering starts at 1).

    The first five are tabulated; higher modes use the asymptotic
    ``lambda_n ~ (2n - 1) pi / 2``, which is accurate to < 1e-9 by n = 6.
    """
    if mode < 1:
        raise GeometryError(f"mode number must be >= 1, got {mode}")
    if mode <= len(CLAMPED_FREE_EIGENVALUES):
        return CLAMPED_FREE_EIGENVALUES[mode - 1]
    return (2 * mode - 1) * math.pi / 2.0


def mode_shape_coefficient(mode: int) -> float:
    """``sigma_n = (cosh l + cos l) / (sinh l + sin l)`` for mode *n*."""
    lam = eigenvalue(mode)
    if lam > 30.0:
        return 1.0  # cosh/sinh overflow-safe asymptote
    return (math.cosh(lam) + math.cos(lam)) / (math.sinh(lam) + math.sin(lam))


def mode_shape(mode: int, xi: np.ndarray) -> np.ndarray:
    """Mode shape ``phi_n(xi)`` on normalized position ``xi = x / L`` in [0, 1].

    Normalized so that ``phi_n(1) = 2`` in the raw form below; use
    :func:`mode_shape_tip_normalized` for the tip-unity convention that the
    effective-mass bookkeeping in this library assumes.
    """
    lam = eigenvalue(mode)
    sigma = mode_shape_coefficient(mode)
    xi = np.asarray(xi, dtype=float)
    if np.any(xi < -1e-12) or np.any(xi > 1.0 + 1e-12):
        raise GeometryError("normalized position must lie in [0, 1]")
    arg = lam * np.clip(xi, 0.0, 1.0)
    return (
        np.cosh(arg) - np.cos(arg) - sigma * (np.sinh(arg) - np.sin(arg))
    )


def mode_shape_tip_normalized(mode: int, xi: np.ndarray) -> np.ndarray:
    """Mode shape scaled so the tip displacement is exactly 1."""
    tip = mode_shape(mode, np.asarray([1.0]))[0]
    return mode_shape(mode, xi) / tip


def effective_mass_fraction(mode: int, samples: int = 20001) -> float:
    """Modal mass / total mass for tip-normalized mode *n*.

    ``m_eff = m * integral(phi_n(xi)^2 d xi)`` with ``phi_n(1) = 1``.
    Mode 1 gives the textbook 0.2500 (exactly 1/4 for the ideal clamped-
    free beam); a lumped tip-mass model would use 33/140 ~ 0.2357 from the
    static deflection shape instead.
    """
    xi = np.linspace(0.0, 1.0, samples)
    phi = mode_shape_tip_normalized(mode, xi)
    return float(np.trapezoid(phi**2, xi))


@dataclass(frozen=True)
class Mode:
    """One vibration mode of a specific cantilever.

    Attributes
    ----------
    number:
        Mode index (1 = fundamental).
    frequency:
        Natural frequency in vacuum [Hz].
    effective_mass:
        Tip-normalized modal mass [kg].
    effective_stiffness:
        ``k_eff = m_eff (2 pi f)^2`` [N/m].
    """

    number: int
    frequency: float
    effective_mass: float
    effective_stiffness: float


def natural_frequency(geometry: CantileverGeometry, mode: int = 1) -> float:
    """Vacuum natural frequency of mode *n* [Hz].

    ``f_n = (lambda_n^2 / 2 pi) sqrt(EI / (rho A)) / L^2`` with composite
    ``EI`` and mass-per-length from the layer stack.
    """
    lam = eigenvalue(mode)
    ei = geometry.flexural_rigidity
    mu = geometry.mass_per_length
    return (lam**2 / (2.0 * math.pi)) * math.sqrt(ei / mu) / geometry.length**2


def analyze_modes(geometry: CantileverGeometry, count: int = 3) -> list[Mode]:
    """First ``count`` modes of a cantilever with modal masses/stiffnesses."""
    if count < 1:
        raise GeometryError(f"mode count must be >= 1, got {count}")
    modes = []
    total_mass = geometry.mass
    for n in range(1, count + 1):
        f_n = natural_frequency(geometry, n)
        m_eff = effective_mass_fraction(n) * total_mass
        k_eff = m_eff * (2.0 * math.pi * f_n) ** 2
        modes.append(
            Mode(
                number=n,
                frequency=f_n,
                effective_mass=m_eff,
                effective_stiffness=k_eff,
            )
        )
    return modes


def modal_participation_of_uniform_load(mode: int, samples: int = 20001) -> float:
    """``integral(phi_n) / integral(phi_n^2)`` for tip-normalized phi.

    The modal force produced by a uniformly distributed drive (such as the
    Lorentz force of a coil running along the cantilever edges) is this
    factor times ``q L`` referenced to tip motion.
    """
    xi = np.linspace(0.0, 1.0, samples)
    phi = mode_shape_tip_normalized(mode, xi)
    return float(np.trapezoid(phi, xi) / np.trapezoid(phi**2, xi))
