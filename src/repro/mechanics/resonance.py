"""Resonant-mode mass sensing (Fig. 2).

Analyte mass bound to the cantilever lowers the resonant frequency.  For
a small added mass the fractional shift is

    df / f0 = -1/2 * dm_eff / m_eff

where both masses are *modal*: a mass element at position ``x`` counts
with weight ``phi_n(x)^2``.  Mass spread uniformly over the
functionalized surface therefore produces a smaller shift than the same
mass concentrated at the tip (ratio = mean of ``phi^2`` = 1/4 for mode 1
tip-normalized), and the library keeps the two cases distinct because a
real immunoassay coats the whole beam.

Also provided: the exact (not first-order) frequency with added mass,
the mass responsivity [Hz/kg], and the minimum detectable mass given a
frequency-noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from ..errors import GeometryError
from ..units import require_nonnegative
from .geometry import CantileverGeometry
from .modal import (
    analyze_modes,
    effective_mass_fraction,
    mode_shape_tip_normalized,
    natural_frequency,
)


def modal_added_mass(
    geometry: CantileverGeometry,
    added_mass: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> float:
    """Convert physically added mass to tip-referenced modal added mass [kg].

    Parameters
    ----------
    added_mass:
        Total bound mass [kg].
    distribution:
        ``"tip"`` — point mass at the free end (weight 1);
        ``"uniform"`` — spread evenly over the beam (weight = mean phi^2).
    """
    require_nonnegative("added_mass", added_mass)
    if distribution == "tip":
        return added_mass
    if distribution == "uniform":
        return added_mass * effective_mass_fraction(mode)
    raise GeometryError(
        f"distribution must be 'tip' or 'uniform', got {distribution!r}"
    )


def frequency_with_added_mass(
    geometry: CantileverGeometry,
    added_mass: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> float:
    """Exact resonant frequency with added mass [Hz].

    ``f = f0 * sqrt(m_eff / (m_eff + dm_eff))`` — exact within the
    single-mode (Rayleigh) approximation, reducing to the first-order
    ``-dm/2m`` shift for small mass.
    """
    f0 = natural_frequency(geometry, mode)
    m_eff = effective_mass_fraction(mode) * geometry.mass
    dm_eff = modal_added_mass(geometry, added_mass, mode, distribution)
    return f0 * math.sqrt(m_eff / (m_eff + dm_eff))


def frequency_shift(
    geometry: CantileverGeometry,
    added_mass: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> float:
    """Frequency shift ``f(dm) - f0`` [Hz]; negative for added mass."""
    return frequency_with_added_mass(
        geometry, added_mass, mode, distribution
    ) - natural_frequency(geometry, mode)


def mass_responsivity(
    geometry: CantileverGeometry, mode: int = 1, distribution: str = "uniform"
) -> float:
    """Small-signal responsivity ``df/dm`` [Hz/kg] (negative).

    ``df/dm = -f0 w_dist / (2 m_eff)`` with ``w_dist`` the distribution
    weight (1 for tip mass, 1/4 for uniform coverage on mode 1).
    """
    f0 = natural_frequency(geometry, mode)
    m_eff = effective_mass_fraction(mode) * geometry.mass
    weight = 1.0 if distribution == "tip" else effective_mass_fraction(mode)
    if distribution not in ("tip", "uniform"):
        raise GeometryError(
            f"distribution must be 'tip' or 'uniform', got {distribution!r}"
        )
    return -f0 * weight / (2.0 * m_eff)


def minimum_detectable_mass(
    geometry: CantileverGeometry,
    frequency_noise: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> float:
    """Smallest resolvable mass [kg] for an rms frequency noise [Hz].

    ``dm_min = frequency_noise / |df/dm|`` — the limit-of-detection figure
    every cantilever-sensor paper quotes.
    """
    require_nonnegative("frequency_noise", frequency_noise)
    return frequency_noise / abs(mass_responsivity(geometry, mode, distribution))


def mass_from_frequency_shift(
    geometry: CantileverGeometry,
    measured_shift: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> float:
    """Invert a measured frequency shift [Hz] to bound mass [kg].

    Exact inversion of :func:`frequency_with_added_mass`:
    ``dm_eff = m_eff ((f0/f)^2 - 1)``, then un-weight the distribution.
    Positive shifts (frequency increase) return negative mass, letting
    callers detect desorption.
    """
    f0 = natural_frequency(geometry, mode)
    f = f0 + measured_shift
    if f <= 0.0:
        raise GeometryError("measured shift implies non-positive frequency")
    m_eff = effective_mass_fraction(mode) * geometry.mass
    dm_eff = m_eff * ((f0 / f) ** 2 - 1.0)
    weight = 1.0 if distribution == "tip" else effective_mass_fraction(mode)
    return dm_eff / weight


@dataclass(frozen=True)
class ResonantResponse:
    """Complete resonant response of a cantilever to an added mass."""

    added_mass: float
    base_frequency: float
    loaded_frequency: float
    frequency_shift: float
    responsivity: float


def resonant_response(
    geometry: CantileverGeometry,
    added_mass: float,
    mode: int = 1,
    distribution: str = "uniform",
) -> ResonantResponse:
    """Evaluate all resonant-response quantities at once."""
    f0 = natural_frequency(geometry, mode)
    f = frequency_with_added_mass(geometry, added_mass, mode, distribution)
    return ResonantResponse(
        added_mass=added_mass,
        base_frequency=f0,
        loaded_frequency=f,
        frequency_shift=f - f0,
        responsivity=mass_responsivity(geometry, mode, distribution),
    )
