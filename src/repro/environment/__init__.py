"""Environmental effects: temperature drift channels of the chip."""

from .compensation import DualOscillatorReadout
from .self_heating import (
    WATER_CONVECTION,
    SelfHeatingReport,
    bridge_self_heating,
    dry_temperature_rise,
    thermal_time_constant,
    wet_temperature_profile,
    wet_temperature_rise,
)
from .temperature import (
    SILICON_DE_OVER_E,
    ThermalErrorBudget,
    bimorph_curvature_per_kelvin,
    bimorph_tip_drift,
    bridge_offset_drift,
    equivalent_surface_stress_drift,
    frequency_drift,
    frequency_temperature_coefficient,
    thermal_error_budget,
    water_at,
)

__all__ = [
    "DualOscillatorReadout",
    "SelfHeatingReport",
    "WATER_CONVECTION",
    "bridge_self_heating",
    "dry_temperature_rise",
    "thermal_time_constant",
    "wet_temperature_profile",
    "wet_temperature_rise",
    "SILICON_DE_OVER_E",
    "ThermalErrorBudget",
    "bimorph_curvature_per_kelvin",
    "bimorph_tip_drift",
    "bridge_offset_drift",
    "equivalent_surface_stress_drift",
    "frequency_drift",
    "frequency_temperature_coefficient",
    "thermal_error_budget",
    "water_at",
]
