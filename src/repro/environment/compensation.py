"""Temperature compensation by dual-oscillator ratio readout.

The resonant sensor's -31 ppm/K frequency TC turns a 0.1 K cell
excursion into a ~28 mHz error — the size of a 35 pg binding signal.
The array architecture offers the cure: run a *reference* cantilever
(blocked surface, same die, same temperature) as a second oscillator
and read the frequency **ratio**.  Both frequencies share the
multiplicative temperature factor, so it cancels exactly to first
order, while binding only moves the sensing beam.

    f_s(T, m) / f_r(T) = [f_s0 (1 + TCF dT) (1 + S_m dm)] /
                         [f_r0 (1 + TCF dT)]
                       = (f_s0 / f_r0)(1 + S_m dm)

The module evaluates both the raw and ratio readouts over a temperature
excursion + binding scenario, quantifying the rejection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from ..mechanics.geometry import CantileverGeometry
from ..units import require_positive
from .temperature import frequency_temperature_coefficient


@dataclass(frozen=True)
class DualOscillatorReadout:
    """Sensing + reference oscillator pair on one die.

    Parameters
    ----------
    sensing_frequency / reference_frequency:
        Nominal oscillation frequencies [Hz]; they need not match (and
        deliberately should not, to avoid injection locking).
    tcf:
        Shared fractional temperature coefficient [1/K].
    tcf_mismatch:
        Residual fractional TCF difference between the two beams
        (process gradients across the die); sets the compensation floor.
    """

    sensing_frequency: float
    reference_frequency: float
    tcf: float
    tcf_mismatch: float = 1e-7

    def __post_init__(self) -> None:
        require_positive("sensing_frequency", self.sensing_frequency)
        require_positive("reference_frequency", self.reference_frequency)

    @classmethod
    def for_geometry(
        cls,
        geometry: CantileverGeometry,
        sensing_frequency: float,
        reference_detune: float = 0.02,
        tcf_mismatch: float = 1e-7,
    ) -> "DualOscillatorReadout":
        """Build the pair from the device geometry's TCF.

        The reference beam is drawn slightly shorter so the two
        oscillators sit ``reference_detune`` apart in frequency.
        """
        return cls(
            sensing_frequency=sensing_frequency,
            reference_frequency=sensing_frequency * (1.0 + reference_detune),
            tcf=frequency_temperature_coefficient(geometry),
            tcf_mismatch=tcf_mismatch,
        )

    # -- readouts -------------------------------------------------------------

    def raw_sensing_frequency(
        self, delta_temperature: float, fractional_mass_shift: float = 0.0
    ) -> float:
        """Sensing oscillator frequency [Hz] with temperature + binding."""
        return (
            self.sensing_frequency
            * (1.0 + self.tcf * delta_temperature)
            * (1.0 + fractional_mass_shift)
        )

    def raw_reference_frequency(self, delta_temperature: float) -> float:
        """Reference oscillator frequency [Hz] (temperature only)."""
        return self.reference_frequency * (
            1.0 + (self.tcf + self.tcf_mismatch) * delta_temperature
        )

    def ratio_readout(
        self, delta_temperature: float, fractional_mass_shift: float = 0.0
    ) -> float:
        """The compensated observable: frequency ratio, normalized to 1.

        Returns ``(f_s / f_r) / (f_s0 / f_r0)``; deviations from 1 are
        (to the mismatch floor) pure binding signal.
        """
        fs = self.raw_sensing_frequency(delta_temperature, fractional_mass_shift)
        fr = self.raw_reference_frequency(delta_temperature)
        return (fs / fr) / (self.sensing_frequency / self.reference_frequency)

    # -- figures of merit --------------------------------------------------------

    def raw_thermal_error(self, delta_temperature: float) -> float:
        """Fractional frequency error of the raw readout for an excursion."""
        return abs(self.tcf * delta_temperature)

    def compensated_thermal_error(self, delta_temperature: float) -> float:
        """Residual fractional error of the ratio readout.

        First-order exact cancellation leaves only the TCF mismatch.
        """
        return abs(
            self.ratio_readout(delta_temperature, 0.0) - 1.0
        )

    def rejection_ratio(self, delta_temperature: float) -> float:
        """Thermal-error suppression factor of the ratio readout."""
        raw = self.raw_thermal_error(delta_temperature)
        residual = self.compensated_thermal_error(delta_temperature)
        return math.inf if residual == 0.0 else raw / residual
