"""Bridge self-heating of the thermally isolated cantilever.

The released beam is an excellent thermal insulator by construction: its
only solid heat path is the beam cross-section back to the clamp.  The
static system's Wheatstone bridge dissipates ~1 mW *on the beam*, so the
beam warms up — and Section 8's error channels (bimorph bending, TCF,
TCR drift) turn that Kelvin-scale rise into signal-sized error.  This is
a design force behind several choices the paper makes:

* the resonant bridge sits at the **clamped edge** (heat exits without
  crossing the beam) and dissipates 3.6x less (PMOS);
* the **mux** gives each static bridge a 25 % duty cycle;
* the beam operates **in liquid**, which cools it convectively.

Models:

* dry (vacuum/air) conduction-only temperature profile — uniform line
  heating ``p`` gives ``T(x) = (p/kappa A)(Lx - x^2/2)``, so the tip
  rise is ``P L / 2 kappa A`` and the beam-average ``P L / 3 kappa A``;
* liquid-cooled fin equation ``kappa A T'' - h P_w T + p = 0`` with
  convection coefficient ``h`` and wetted perimeter ``P_w``:
  ``T(x) = (p/h P_w) [1 - cosh(m (L - x)) / cosh(m L)]``,
  ``m = sqrt(h P_w / kappa A)``;
* lumped thermal time constant ``tau = R_th C_th``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MaterialError
from ..mechanics.geometry import CantileverGeometry
from ..units import require_nonnegative, require_positive

#: Representative microscale convection coefficient of water [W/(m^2 K)].
WATER_CONVECTION: float = 5000.0


def _conduction_parameters(geometry: CantileverGeometry) -> tuple[float, float]:
    """(kappa*A [W m/K], wetted perimeter [m]) of the beam section."""
    kappa_a = 0.0
    for layer in geometry.stack.layers:
        k = layer.material.thermal_conductivity
        if k <= 0.0:
            raise MaterialError(
                f"material {layer.material.name!r} has no thermal "
                "conductivity; register it with thermal_conductivity set"
            )
        kappa_a += k * layer.thickness * geometry.width
    perimeter = 2.0 * (geometry.width + geometry.thickness)
    return kappa_a, perimeter


def dry_temperature_rise(
    geometry: CantileverGeometry, power: float, position: str = "average"
) -> float:
    """Conduction-only beam heating [K] for on-beam power [W].

    ``position``: ``"tip"`` (= P L / 2 kappa A), ``"average"``
    (= P L / 3 kappa A), both for power dissipated uniformly along the
    beam (the distributed static bridge).
    """
    require_nonnegative("power", power)
    kappa_a, _ = _conduction_parameters(geometry)
    base = power * geometry.length / kappa_a
    if position == "tip":
        return base / 2.0
    if position == "average":
        return base / 3.0
    raise MaterialError(f"position must be 'tip' or 'average', got {position!r}")


def wet_temperature_profile(
    geometry: CantileverGeometry,
    power: float,
    convection: float = WATER_CONVECTION,
    positions: np.ndarray | None = None,
) -> np.ndarray:
    """Fin-equation temperature rise along the liquid-immersed beam [K].

    Uniform line heating with convective loss to the liquid; the clamp is
    the isothermal heat sink.
    """
    require_nonnegative("power", power)
    require_positive("convection", convection)
    kappa_a, perimeter = _conduction_parameters(geometry)
    length = geometry.length
    x = (
        np.linspace(0.0, length, 101)
        if positions is None
        else np.asarray(positions, dtype=float)
    )
    p_line = power / length
    hp = convection * perimeter
    m = math.sqrt(hp / kappa_a)
    return (p_line / hp) * (
        1.0 - np.cosh(m * (length - x)) / math.cosh(m * length)
    )


def wet_temperature_rise(
    geometry: CantileverGeometry,
    power: float,
    convection: float = WATER_CONVECTION,
    position: str = "average",
) -> float:
    """Liquid-cooled beam heating [K] (tip or beam-average)."""
    profile = wet_temperature_profile(geometry, power, convection)
    if position == "tip":
        return float(profile[-1])
    if position == "average":
        return float(np.mean(profile))
    raise MaterialError(f"position must be 'tip' or 'average', got {position!r}")


def thermal_time_constant(geometry: CantileverGeometry) -> float:
    """Lumped beam thermal time constant ``R_th C_th`` [s] (dry).

    ``R_th = L / 3 kappa A`` (average-temperature resistance) and
    ``C_th = sum(rho c_p V)``; milliseconds for these beams — fast
    against assay timescales, slow against the chopper.
    """
    kappa_a, _ = _conduction_parameters(geometry)
    r_th = geometry.length / (3.0 * kappa_a)
    c_th = 0.0
    for layer in geometry.stack.layers:
        c_p = layer.material.specific_heat
        if c_p <= 0.0:
            raise MaterialError(
                f"material {layer.material.name!r} has no specific heat"
            )
        volume = layer.thickness * geometry.width * geometry.length
        c_th += layer.material.density * c_p * volume
    return r_th * c_th


@dataclass(frozen=True)
class SelfHeatingReport:
    """Self-heating of one bridge configuration on one beam."""

    power: float
    duty_cycle: float
    dry_rise_avg: float
    wet_rise_avg: float
    wet_rise_tip: float
    time_constant: float

    @property
    def effective_wet_rise(self) -> float:
        """Duty-cycled average rise in liquid [K] — the operating number."""
        return self.wet_rise_avg * self.duty_cycle


def bridge_self_heating(
    geometry: CantileverGeometry,
    bridge_power: float,
    duty_cycle: float = 1.0,
    convection: float = WATER_CONVECTION,
    on_beam_fraction: float = 1.0,
) -> SelfHeatingReport:
    """Evaluate the self-heating of a bridge on (or off) the beam.

    Parameters
    ----------
    bridge_power:
        Total bridge dissipation [W].
    duty_cycle:
        Fraction of time the bridge is biased (the mux scan of Fig. 4
        gives each channel ~1/4).
    on_beam_fraction:
        Fraction of the power dissipated *on the released beam*: ~1 for
        the distributed static bridge, ~0 for the resonant bridge at the
        clamped edge (its heat exits through the bulk).
    """
    from ..units import require_fraction

    require_fraction("duty_cycle", duty_cycle)
    require_fraction("on_beam_fraction", on_beam_fraction)
    p_beam = bridge_power * on_beam_fraction
    return SelfHeatingReport(
        power=bridge_power,
        duty_cycle=duty_cycle,
        dry_rise_avg=dry_temperature_rise(geometry, p_beam, "average"),
        wet_rise_avg=wet_temperature_rise(geometry, p_beam, convection, "average"),
        wet_rise_tip=wet_temperature_rise(geometry, p_beam, convection, "tip"),
        time_constant=thermal_time_constant(geometry),
    )
