"""Temperature effects: the slow enemy of both sensor modes.

A biosensor lives in a liquid cell whose temperature wanders by tens of
millikelvin per minute, and every part of the chip responds:

* **mechanics** — silicon softens with temperature
  (``dE/E/dT ~ -64 ppm/K``), shifting the resonant frequency by
  ``TCF ~ +1/2 dE/E + alpha/2 ~ -31 ppm/K``; a composite (coated) beam
  additionally *bends* like a bimetal strip, producing fake static
  signal;
* **transduction** — the bridge elements' TCR is huge (2500 ppm/K), so
  any TCR mismatch between arms converts temperature directly into
  offset drift;
* **fluidics** — water's viscosity drops ~2 %/K, moving both Q and the
  fluid-loaded frequency.

These models quantify each channel, so the benches can show what the
paper's array referencing (blocked beams seeing the same temperature)
actually buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..materials import Liquid
from ..materials.liquids import glycerol_water_mixture
from ..mechanics.composite import LayerStack
from ..mechanics.geometry import CantileverGeometry
from ..units import require_positive

#: Temperature coefficient of silicon's Young's modulus [1/K].
SILICON_DE_OVER_E: float = -64e-6


def frequency_temperature_coefficient(
    geometry: CantileverGeometry,
    de_over_e: float = SILICON_DE_OVER_E,
) -> float:
    """Fractional resonant-frequency drift per kelvin [1/K].

    ``f ~ sqrt(E) t / L^2`` gives ``TCF = dE/(2E) + alpha/2`` (thickness
    grows like ``alpha``, length like ``alpha``: ``t/L^2`` contributes
    ``-alpha``; plus ``sqrt(1/rho)`` contributing ``+3 alpha/2``), which
    for silicon is dominated by the modulus term: about -31 ppm/K.
    """
    alpha = geometry.stack.layers[0].material.thermal_expansion
    return de_over_e / 2.0 + alpha / 2.0


def frequency_drift(
    geometry: CantileverGeometry, delta_temperature: float
) -> float:
    """Resonant-frequency change [Hz] for a temperature change [K]."""
    from ..mechanics.modal import natural_frequency

    f0 = natural_frequency(geometry)
    return f0 * frequency_temperature_coefficient(geometry) * delta_temperature


def bimorph_curvature_per_kelvin(stack: LayerStack) -> float:
    """Thermal-mismatch curvature rate [1/(m K)] of a layer stack.

    Each layer develops a thermal stress ``E_i (alpha_ref - alpha_i)``
    per kelvin relative to the stack's strain-weighted mean expansion;
    the resulting moment over the stack rigidity is the bimetal-strip
    curvature.  Exactly zero for single-material beams — the quantitative
    reason the paper releases *bare silicon* cantilevers for the static
    system.
    """
    # strain-matching reference expansion (modulus-thickness weighted)
    total = stack.extensional_stiffness_per_width
    alpha_ref = (
        sum(
            l.material.youngs_modulus * l.thickness * l.material.thermal_expansion
            for l in stack.layers
        )
        / total
    )
    z_na = stack.neutral_axis
    moment_per_k = 0.0
    zs = stack.interfaces()
    for layer, z_low, z_high in zip(stack.layers, zs[:-1], zs[1:]):
        mid = 0.5 * (z_low + z_high)
        sigma_per_k = layer.material.youngs_modulus * (
            alpha_ref - layer.material.thermal_expansion
        )
        moment_per_k += sigma_per_k * layer.thickness * (mid - z_na)
    return moment_per_k / stack.flexural_rigidity_per_width


def bimorph_tip_drift(
    geometry: CantileverGeometry, delta_temperature: float
) -> float:
    """Thermal tip deflection [m] of a (possibly composite) beam.

    ``z = kappa_T dT L^2 / 2``; fake signal indistinguishable from
    surface stress without a reference beam.
    """
    kappa = bimorph_curvature_per_kelvin(geometry.stack) * delta_temperature
    return kappa * geometry.length**2 / 2.0


def equivalent_surface_stress_drift(
    geometry: CantileverGeometry, delta_temperature: float
) -> float:
    """Surface stress [N/m] that would produce the bimorph drift.

    Puts the thermal error in the static sensor's signal units so it can
    be compared against binding signals (mN/m scale) directly.
    """
    from ..mechanics.surface_stress import tip_deflection

    drift = bimorph_tip_drift(geometry, delta_temperature)
    per_unit = tip_deflection(geometry, 1.0)
    return drift / per_unit


def bridge_offset_drift(
    bias_voltage: float,
    tcr: float,
    tcr_mismatch_fraction: float,
    delta_temperature: float,
) -> float:
    """Bridge output drift [V] from TCR mismatch between the arms.

    With all four arms at TCR but one arm's coefficient off by the
    fractional mismatch, the bridge unbalances by
    ``V_b / 4 * tcr * mismatch * dT`` — at 2500 ppm/K and 1 % matching
    this is ~20 uV/K on 3.3 V, i.e. a binding-signal-sized error for a
    1 K excursion.  Referencing kills it because the reference beam's
    bridge drifts identically.
    """
    require_positive("bias_voltage", bias_voltage)
    return bias_voltage / 4.0 * tcr * tcr_mismatch_fraction * delta_temperature


def water_at(temperature: float) -> Liquid:
    """Water density/viscosity at a temperature [K].

    Reuses the validated pure-water limits of the glycerol-mixture
    correlation (Cheng 2008).
    """
    return glycerol_water_mixture(0.0, temperature=temperature)


@dataclass(frozen=True)
class ThermalErrorBudget:
    """All thermal error channels of one device for a given excursion."""

    delta_temperature: float
    frequency_drift_hz: float
    bimorph_tip_drift_m: float
    equivalent_stress_drift: float
    bridge_offset_drift_v: float


def thermal_error_budget(
    geometry: CantileverGeometry,
    delta_temperature: float,
    bias_voltage: float = 3.3,
    tcr: float = 2.5e-3,
    tcr_mismatch_fraction: float = 0.01,
) -> ThermalErrorBudget:
    """Evaluate every thermal error channel at once."""
    return ThermalErrorBudget(
        delta_temperature=delta_temperature,
        frequency_drift_hz=frequency_drift(geometry, delta_temperature),
        bimorph_tip_drift_m=bimorph_tip_drift(geometry, delta_temperature),
        equivalent_stress_drift=equivalent_surface_stress_drift(
            geometry, delta_temperature
        ),
        bridge_offset_drift_v=bridge_offset_drift(
            bias_voltage, tcr, tcr_mismatch_fraction, delta_temperature
        ),
    )
