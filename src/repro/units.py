"""Unit helpers and argument validation.

The library is strict-SI internally.  These helpers convert the
laboratory units that appear in the cantilever-biosensor literature
(micrometres, millinewton-per-metre surface stress, picograms,
nanomolar concentrations, kilodalton masses) to SI and back, and provide
small validators used by constructors throughout the package.
"""

from __future__ import annotations

import math

from .constants import AVOGADRO, DALTON
from .errors import UnitError

# ---------------------------------------------------------------------------
# conversions to SI
# ---------------------------------------------------------------------------


def um(value: float) -> float:
    """Micrometres to metres."""
    return value * 1e-6


def nm(value: float) -> float:
    """Nanometres to metres."""
    return value * 1e-9


def mm(value: float) -> float:
    """Millimetres to metres."""
    return value * 1e-3


def mN_per_m(value: float) -> float:
    """Millinewton-per-metre (surface stress) to N/m."""
    return value * 1e-3

def pg(value: float) -> float:
    """Picograms to kilograms."""
    return value * 1e-15


def ng(value: float) -> float:
    """Nanograms to kilograms."""
    return value * 1e-12


def kda(value: float) -> float:
    """Kilodaltons (molecular mass) to kilograms per molecule."""
    return value * 1e3 * DALTON


def nM(value: float) -> float:  # noqa: N802 - conventional unit symbol
    """Nanomolar concentration to molecules per cubic metre."""
    return value * 1e-9 * AVOGADRO * 1e3


def molar(value: float) -> float:
    """Molar concentration (mol/L) to molecules per cubic metre."""
    return value * AVOGADRO * 1e3


# ---------------------------------------------------------------------------
# conversions from SI (used by reports and benches)
# ---------------------------------------------------------------------------


def to_um(metres: float) -> float:
    """Metres to micrometres."""
    return metres * 1e6


def to_nm(metres: float) -> float:
    """Metres to nanometres."""
    return metres * 1e9


def to_pg(kilograms: float) -> float:
    """Kilograms to picograms."""
    return kilograms * 1e15


def to_mN_per_m(newtons_per_metre: float) -> float:
    """N/m to mN/m."""
    return newtons_per_metre * 1e3


def to_khz(hertz: float) -> float:
    """Hertz to kilohertz."""
    return hertz * 1e-3


def to_uV(volts: float) -> float:  # noqa: N802 - conventional unit symbol
    """Volts to microvolts."""
    return volts * 1e6


# ---------------------------------------------------------------------------
# validators
# ---------------------------------------------------------------------------


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number > 0, else raise UnitError."""
    if not _is_finite_number(value) or value <= 0.0:
        raise UnitError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def require_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise UnitError."""
    if not _is_finite_number(value) or value < 0.0:
        raise UnitError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def require_fraction(name: str, value: float) -> float:
    """Return ``value`` if it lies in [0, 1], else raise UnitError."""
    if not _is_finite_number(value) or not 0.0 <= value <= 1.0:
        raise UnitError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if it lies in [low, high], else raise UnitError."""
    if not _is_finite_number(value) or not low <= value <= high:
        raise UnitError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)


def _is_finite_number(value: object) -> bool:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)
