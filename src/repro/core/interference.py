"""Monolithic vs. external readout: the paper's integration claim.

"The monolithic integrated readout allows for a high signal-to-noise
ratio, lowers the sensitivity to external interference and enables
autonomous device operation."

The physical content: a microvolt-level bridge signal travelling to an
*external* amplifier crosses bond wires, package leads, and centimetres
of board trace.  That path picks up ambient interference (mains hum, RF,
digital switching) both as common mode — large loop area — and, through
unavoidable path asymmetry, converted into differential error.  The
on-chip path is hundreds of micrometres long, symmetric to lithographic
precision, and shares the sensor's substrate shielding.

The model compares the same bridge + amplifier through two
:class:`ReadoutPath` parameter sets and reports output SNR versus
interference amplitude — the CLM1 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from ..circuits.amplifier import DifferenceAmplifier
from ..circuits.signal import Signal
from ..units import require_nonnegative, require_positive


@dataclass(frozen=True)
class ReadoutPath:
    """Coupling parameters of one bridge-to-amplifier connection.

    Parameters
    ----------
    name:
        Label for reports.
    common_mode_coupling:
        Fraction of the interferer's amplitude arriving as common mode
        at the amplifier input.
    asymmetry:
        Fractional mismatch of the two signal wires; common-mode pickup
        times asymmetry appears directly as differential error.
    parasitic_capacitance:
        Wiring capacitance [F]; with the bridge's output resistance it
        forms the input pole that band-limits the signal.
    """

    name: str
    common_mode_coupling: float
    asymmetry: float
    parasitic_capacitance: float

    def __post_init__(self) -> None:
        require_nonnegative("common_mode_coupling", self.common_mode_coupling)
        require_nonnegative("asymmetry", self.asymmetry)
        require_nonnegative("parasitic_capacitance", self.parasitic_capacitance)

    def differential_pickup(self) -> float:
        """Interferer-to-differential-input gain."""
        return self.common_mode_coupling * self.asymmetry

    def input_pole(self, source_resistance: float) -> float:
        """Input-pole frequency [Hz] from wiring capacitance."""
        require_positive("source_resistance", source_resistance)
        if self.parasitic_capacitance == 0.0:
            return math.inf
        return 1.0 / (
            2.0 * math.pi * source_resistance * self.parasitic_capacitance
        )


#: On-chip path: hundreds of micrometres of matched metal over a quiet
#: substrate.  Residual coupling through the substrate and supply.
MONOLITHIC_PATH = ReadoutPath(
    name="monolithic",
    common_mode_coupling=1e-4,
    asymmetry=1e-3,
    parasitic_capacitance=0.5e-12,
)

#: External path: bond wires + package + 10 cm of board trace to a
#: discrete instrumentation amplifier.
EXTERNAL_PATH = ReadoutPath(
    name="external",
    common_mode_coupling=3e-2,
    asymmetry=2e-2,
    parasitic_capacitance=20e-12,
)


@dataclass(frozen=True)
class InterferenceResult:
    """SNR comparison at one interference level."""

    path_name: str
    signal_rms: float
    error_rms: float
    snr_db: float


def evaluate_path(
    path: ReadoutPath,
    amplifier: DifferenceAmplifier,
    bridge_signal: Signal,
    interferer: Signal,
) -> InterferenceResult:
    """Output SNR of one readout path under interference.

    The bridge signal plus the path's differential pickup of the
    interferer form the differential input; the common-mode pickup
    leaks through the amplifier's CMRR.  SNR compares the amplified
    signal against everything else in the output.
    """
    diff_pickup = path.differential_pickup()
    differential = Signal(
        bridge_signal.samples + diff_pickup * interferer.samples,
        bridge_signal.sample_rate,
    )
    common_mode = Signal(
        path.common_mode_coupling * interferer.samples,
        bridge_signal.sample_rate,
    )
    amplifier.reset()
    output = amplifier.process_with_common_mode(differential, common_mode)
    amplifier.reset()
    clean = amplifier.process(bridge_signal)
    amplifier.reset()

    out = output.settle(0.2)
    ref = clean.settle(0.2)
    error = Signal(out.samples - ref.samples, out.sample_rate)
    signal_rms = ref.std()
    error_rms = error.rms()
    snr = (
        20.0 * math.log10(signal_rms / error_rms)
        if error_rms > 0.0
        else math.inf
    )
    return InterferenceResult(
        path_name=path.name,
        signal_rms=signal_rms,
        error_rms=error_rms,
        snr_db=snr,
    )


def compare_paths(
    bridge_signal: Signal,
    interferer: Signal,
    amplifier_factory=None,
) -> tuple[InterferenceResult, InterferenceResult]:
    """(monolithic, external) SNR results for the same signals.

    A fresh noiseless amplifier per path keeps the comparison about the
    *paths*; pass a factory for noisy amplifiers.
    """
    if amplifier_factory is None:
        def amplifier_factory() -> DifferenceAmplifier:
            return DifferenceAmplifier(
                gain=100.0, gbw=2e6, cmrr_db=90.0, noise_density=0.0
            )

    mono = evaluate_path(
        MONOLITHIC_PATH, amplifier_factory(), bridge_signal, interferer
    )
    ext = evaluate_path(
        EXTERNAL_PATH, amplifier_factory(), bridge_signal, interferer
    )
    return mono, ext
