"""Paper-calibrated default configurations.

One place holding the "device as published" parameter set: the 0.8 um
process with its 5 um n-well etch stop, a 500 x 100 um released silicon
cantilever, the diffused bridge of the static system, the PMOS bridge of
the resonant system, and the two readout chains of Figs. 4 and 5.  Every
example and bench starts from these factories so results are comparable
across the repository.
"""

from __future__ import annotations

import numpy as np

from ..circuits.amplifier import Amplifier
from ..circuits.chopper import ChopperAmplifier
from ..circuits.filters import LowPassFilter
from ..circuits.offset_dac import OffsetCompensationDAC
from ..fabrication.process import PostCMOSFlow
from ..fabrication.release import ReleasedCantilever, fabricate_cantilever
from ..mechanics.geometry import CantileverGeometry
from ..transduction.mos_resistor import MOSBridgeTransistor
from ..transduction.noise import HOOGE_ALPHA_DIFFUSED, HOOGE_ALPHA_MOS
from ..transduction.piezoresistor import DiffusedResistor
from ..transduction.wheatstone import WheatstoneBridge, matched_bridge

#: Drawn cantilever dimensions of the reference device [m].
CANTILEVER_LENGTH: float = 500e-6
CANTILEVER_WIDTH: float = 100e-6

#: Supply/bridge bias of the 0.8 um chip [V].
SUPPLY_VOLTAGE: float = 3.3

#: Chopper carrier of the static first stage [Hz].
CHOP_FREQUENCY: float = 10e3

#: Sample rate used for full-rate circuit simulation [Hz].
CIRCUIT_SAMPLE_RATE: float = 200e3


def reference_cantilever(
    keep_dielectrics: bool = False,
) -> ReleasedCantilever:
    """Fabricate the reference 500 x 100 x 5 um cantilever."""
    flow = PostCMOSFlow(keep_dielectrics_on_beam=keep_dielectrics)
    return fabricate_cantilever(CANTILEVER_LENGTH, CANTILEVER_WIDTH, flow)


def reference_geometry() -> CantileverGeometry:
    """Geometry of the reference released beam (bare silicon)."""
    return reference_cantilever().geometry


def static_bridge(
    mismatch_sigma: float = 2e-3, seed: int | None = 42
) -> WheatstoneBridge:
    """Diffused-resistor bridge of the static system.

    2e-3 (0.2 %) per-element mismatch is a realistic matched-diffusion
    figure and produces the millivolt-scale offset the offset DAC of
    Fig. 4 is sized for.
    """
    element = DiffusedResistor(nominal_resistance=10e3)
    return matched_bridge(
        element,
        bias_voltage=SUPPLY_VOLTAGE,
        mismatch_sigma=mismatch_sigma,
        hooge_alpha=HOOGE_ALPHA_DIFFUSED,
        seed=seed,
    )


def resonant_bridge(
    mismatch_sigma: float = 5e-3, seed: int | None = 43
) -> WheatstoneBridge:
    """PMOS-in-triode bridge of the resonant system."""
    element = MOSBridgeTransistor()
    return matched_bridge(
        element,
        bias_voltage=SUPPLY_VOLTAGE,
        mismatch_sigma=mismatch_sigma,
        hooge_alpha=HOOGE_ALPHA_MOS,
        seed=seed,
    )


def first_stage_amplifier(rng: np.random.Generator | None = None) -> Amplifier:
    """The core amplifier inside the chopper stage.

    Millivolt offset and a kilohertz-range 1/f corner — ordinary 0.8 um
    CMOS figures, i.e. exactly what makes chopping necessary.
    """
    return Amplifier(
        gain=100.0,
        gbw=2e6,
        input_offset=2e-3,
        noise_density=25e-9,
        noise_corner=2e3,
        rails=(-2.5, 2.5),
        rng=rng,
    )


def static_readout_blocks(
    rng: np.random.Generator | None = None,
) -> dict[str, object]:
    """All blocks of the Fig. 4 chain, keyed by stage name.

    Stage order: ``chopper`` -> ``lowpass`` -> ``offset_dac`` ->
    ``gain2`` -> ``gain3``.

    The ``rng`` fallback is a *fixed-seed* generator: two chains built
    without an explicit generator produce identical noise realizations,
    which keeps sweeps deterministic and their results cacheable.
    """
    rng = rng if rng is not None else np.random.default_rng(2024)
    return {
        "chopper": ChopperAmplifier(first_stage_amplifier(rng), CHOP_FREQUENCY),
        "lowpass": LowPassFilter(cutoff=100.0, order=2),
        "offset_dac": OffsetCompensationDAC(full_scale=1.0, bits=10),
        "gain2": Amplifier(
            gain=10.0, gbw=2e6, input_offset=0.5e-3,
            noise_density=15e-9, noise_corner=1e3, rng=rng,
        ),
        "gain3": Amplifier(
            gain=5.0, gbw=2e6, input_offset=0.5e-3,
            noise_density=15e-9, noise_corner=1e3, rng=rng,
        ),
    }
