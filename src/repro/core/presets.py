"""Paper-calibrated default configurations (thin spec shims).

The "device as published" parameter set now lives in
:mod:`repro.config.reference` as typed ``REFERENCE_*`` spec constants;
this module keeps the historical factory API as thin shims that delegate
to :func:`repro.config.build` on those specs.  New code should compose
specs directly::

    from repro.config import REFERENCE_STATIC_SENSOR, build
    sensor = build(REFERENCE_STATIC_SENSOR.with_overrides(
        {"cantilever.length_um": 350}
    ))

.. deprecated:: 1.1
   The factories below are shims for backwards compatibility; they build
   bit-identical devices to the spec path and will keep working, but the
   spec constants are the single source of truth.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..config.builders import (
    build_bridge,
    build_cantilever,
    build_first_stage,
    build_static_readout,
)
from ..config.reference import (
    REFERENCE_CANTILEVER,
    REFERENCE_PROCESS,
    REFERENCE_RESONANT_BRIDGE,
    REFERENCE_STATIC_BRIDGE,
    REFERENCE_STATIC_READOUT,
)
from ..fabrication.release import ReleasedCantilever
from ..mechanics.geometry import CantileverGeometry
from ..transduction.wheatstone import WheatstoneBridge
from ..units import um

#: Drawn cantilever dimensions of the reference device [m] (from the spec).
CANTILEVER_LENGTH: float = um(REFERENCE_CANTILEVER.length_um)
CANTILEVER_WIDTH: float = um(REFERENCE_CANTILEVER.width_um)

#: Supply/bridge bias of the 0.8 um chip [V] (from the spec).
SUPPLY_VOLTAGE: float = REFERENCE_STATIC_BRIDGE.bias_voltage_v

#: Chopper carrier of the static first stage [Hz] (from the spec).
CHOP_FREQUENCY: float = REFERENCE_STATIC_READOUT.chop_frequency_hz

#: Sample rate used for full-rate circuit simulation [Hz] (from the spec).
CIRCUIT_SAMPLE_RATE: float = REFERENCE_STATIC_READOUT.sample_rate_hz


def reference_cantilever(
    keep_dielectrics: bool = False,
) -> ReleasedCantilever:
    """Fabricate the reference 500 x 100 x 5 um cantilever (spec shim)."""
    process = replace(REFERENCE_PROCESS, keep_dielectrics=keep_dielectrics)
    return build_cantilever(REFERENCE_CANTILEVER, process)


def reference_geometry() -> CantileverGeometry:
    """Geometry of the reference released beam (bare silicon)."""
    return reference_cantilever().geometry


def static_bridge(
    mismatch_sigma: float = 2e-3, seed: int | None = 42
) -> WheatstoneBridge:
    """Diffused-resistor bridge of the static system (spec shim).

    2e-3 (0.2 %) per-element mismatch is a realistic matched-diffusion
    figure and produces the millivolt-scale offset the offset DAC of
    Fig. 4 is sized for.
    """
    return build_bridge(
        replace(
            REFERENCE_STATIC_BRIDGE, mismatch_sigma=mismatch_sigma, seed=seed
        )
    )


def resonant_bridge(
    mismatch_sigma: float = 5e-3, seed: int | None = 43
) -> WheatstoneBridge:
    """PMOS-in-triode bridge of the resonant system (spec shim)."""
    return build_bridge(
        replace(
            REFERENCE_RESONANT_BRIDGE, mismatch_sigma=mismatch_sigma, seed=seed
        )
    )


def first_stage_amplifier(rng: np.random.Generator | None = None):
    """The core amplifier inside the chopper stage (spec shim).

    Millivolt offset and a kilohertz-range 1/f corner — ordinary 0.8 um
    CMOS figures, i.e. exactly what makes chopping necessary.
    """
    return build_first_stage(REFERENCE_STATIC_READOUT, rng=rng)


def static_readout_blocks(
    rng: np.random.Generator | None = None,
) -> dict[str, object]:
    """All blocks of the Fig. 4 chain, keyed by stage name (spec shim).

    Stage order: ``chopper`` -> ``lowpass`` -> ``offset_dac`` ->
    ``gain2`` -> ``gain3``.

    The ``rng`` fallback is a *fixed-seed* generator (the spec's
    ``rng_seed``): two chains built without an explicit generator produce
    identical noise realizations, which keeps sweeps deterministic and
    their results cacheable.
    """
    return build_static_readout(REFERENCE_STATIC_READOUT, rng=rng)
