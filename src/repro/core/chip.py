"""The single-chip biosensor: 4-cantilever array + multiplexed readout.

"An array of four cantilevers is connected to the readout amplifiers by
an analog multiplexer."  The array exists for two reasons the chip model
makes concrete: multiple assays in parallel (different probes per beam)
and *referencing* — blocked beams see every common-mode disturbance
(temperature, nonspecific adsorption, drift) but no specific binding,
so the channel difference isolates the biology.

The chip owns the fabricated cantilevers, their functionalization, the
shared Fig. 4 readout (characterized once), the mux scan schedule, and
the differential post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..biochem.analytes import Analyte
from ..biochem.assay import AssayProtocol
from ..biochem.functionalization import FunctionalizedSurface
from ..circuits.mux import AnalogMultiplexer
from ..circuits.signal import Signal
from ..engine.resilience import poll_fault
from ..errors import AssayError, WatchdogTimeout
from ..fabrication.release import ReleasedCantilever
from ..units import require_positive
from . import presets
from .health import (
    STATUS_FAILED,
    ChannelHealth,
    HealthReport,
    diagnose_trace,
)
from .static_sensor import StaticCantileverSensor

#: CMOS supply rail [V] an open bridge resistor pins a channel against
#: (the readout saturates when one bridge arm floats).
SUPPLY_RAIL = 3.3


@dataclass(frozen=True)
class ChannelConfig:
    """Functionalization plan for one array channel.

    ``analyte = None`` makes the channel a blocked reference beam.
    """

    analyte: Analyte | None
    immobilization_efficiency: float = 0.7
    label: str = ""


@dataclass(frozen=True)
class ArrayAssayResult:
    """Per-channel and differential outputs of an array assay.

    ``health`` classifies every channel (see
    :class:`~repro.core.health.HealthReport`); a failed channel's trace
    is NaN-poisoned, a degraded channel's trace keeps its (symptomatic)
    data.  ``None`` only for results built by old callers.
    """

    times: np.ndarray
    channel_outputs: dict[int, np.ndarray]
    channel_labels: dict[int, str]
    reference_channels: tuple[int, ...]
    health: HealthReport | None = None

    def referenced(self, channel: int) -> np.ndarray:
        """Channel output minus the mean of the reference channels.

        This is the drift-cancelled trace the array architecture buys.
        """
        if channel in self.reference_channels:
            raise AssayError(f"channel {channel} is itself a reference")
        if not self.reference_channels:
            raise AssayError("no reference channels configured")
        reference = np.mean(
            [self.channel_outputs[r] for r in self.reference_channels], axis=0
        )
        return self.channel_outputs[channel] - reference


class BiosensorChip:
    """Four static cantilevers, an analog mux, and one shared readout.

    Parameters
    ----------
    channels:
        Functionalization plan, one entry per channel.  Required — a
        chip without a channel plan has no defined assay.
    cantilever:
        The fabricated beam replicated across the array (one mask, four
        copies — how the real chip is drawn).
    temperature_drift:
        Common-mode output drift rate [V/s] applied to *all* channels
        (what referencing exists to cancel).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        channels: list[ChannelConfig],
        cantilever: ReleasedCantilever | None = None,
        temperature_drift: float = 0.0,
        seed: int = 99,
    ) -> None:
        self.cantilever = (
            cantilever if cantilever is not None else presets.reference_cantilever()
        )
        if channels is None:
            raise AssayError(
                "a chip needs an explicit channel plan (use ChannelConfig; "
                "analyte=None marks a reference beam)"
            )
        if len(channels) != 4:
            raise AssayError(f"the array has exactly 4 channels, got {len(channels)}")
        self.channels = list(channels)
        self.temperature_drift = float(temperature_drift)
        self.seed = seed
        self.mux = AnalogMultiplexer(channel_count=4)

        self.sensors: list[StaticCantileverSensor] = []
        for i, config in enumerate(self.channels):
            if config.analyte is None:
                # reference beam: efficiency 0 surface with any chemistry
                surface = FunctionalizedSurface(
                    analyte=_reference_analyte(),
                    geometry=self.cantilever.geometry,
                    immobilization_efficiency=0.0,
                )
            else:
                surface = FunctionalizedSurface(
                    analyte=config.analyte,
                    geometry=self.cantilever.geometry,
                    immobilization_efficiency=config.immobilization_efficiency,
                )
            self.sensors.append(
                StaticCantileverSensor(
                    surface,
                    bridge=presets.static_bridge(seed=seed + i),
                    seed=seed + 10 * i,
                )
            )

    @classmethod
    def from_spec(cls, spec) -> "BiosensorChip":
        """Build the 4-channel array chip from a :class:`ChipSpec`.

        Each :class:`~repro.config.specs.ChannelSpec` names its analyte
        by registry key (``analyte=None`` marks a blocked reference
        beam).  Deterministic: equal specs build bit-identical chips.
        """
        from ..biochem.analytes import get_analyte
        from ..config.builders import build_cantilever

        channels = [
            ChannelConfig(
                analyte=(
                    get_analyte(ch.analyte) if ch.analyte is not None else None
                ),
                immobilization_efficiency=ch.immobilization_efficiency,
                label=ch.label,
            )
            for ch in spec.channels
        ]
        return cls(
            channels,
            cantilever=build_cantilever(spec.cantilever, spec.process),
            temperature_drift=spec.temperature_drift_v_per_s,
            seed=spec.seed,
        )

    @property
    def reference_channels(self) -> tuple[int, ...]:
        """Indices of the blocked reference beams."""
        return tuple(
            i for i, c in enumerate(self.channels) if c.analyte is None
        )

    def calibrate(self) -> list[float]:
        """Auto-zero every channel; returns residual offsets [V]."""
        return [sensor.calibrate_offset() for sensor in self.sensors]

    def run_array_assay(
        self,
        protocol: AssayProtocol,
        sample_interval: float = 2.0,
        include_noise: bool = True,
        workers: int | None = None,
        backend: str = "thread",
        timeout: float | None = None,
        retry=None,
    ) -> ArrayAssayResult:
        """Run the protocol on all four channels through the shared chain.

        The channels always flow through ONE
        :meth:`repro.engine.BatchExecutor.map` call — the batch; with
        ``workers`` <= 1 (default) the executor degrades to its serial
        path with zero pool overhead, ``workers`` > 1 fans the channels
        out (``backend="thread"`` by default: the sensors are live
        objects, so threads — not processes — are the right pool).
        Every channel is seeded independently (``seed + 100 + i``), so
        the batched run is bit-identical to the serial one.

        One sick channel never kills the assay: a channel whose task
        crashed or overran ``timeout`` (after exhausting ``retry``, a
        :class:`~repro.engine.resilience.RetryPolicy` or int) comes
        back NaN-poisoned and flagged ``failed`` in ``result.health``;
        a channel with a recognized device symptom (railed against the
        supply, frozen flat) keeps its trace and is flagged
        ``degraded``.  The other channels' data is untouched.
        """
        require_positive("sample_interval", sample_interval)
        from ..engine import BatchExecutor

        def run_channel(index: int):
            return self.sensors[index].run_assay(
                protocol,
                sample_interval=sample_interval,
                include_noise=include_noise,
                seed=self.seed + 100 + index,
            )

        channel_indices = range(len(self.sensors))
        executor = BatchExecutor(
            workers=workers if workers is not None else 1,
            backend=backend,
            timeout=timeout,
            retry=retry,
        )
        outcomes = executor.map(run_channel, channel_indices)

        times = next(
            (o.value.times for o in outcomes if o.ok), None
        )
        if times is None:
            # every channel failed: synthesize the protocol's sample grid
            # so the NaN traces still have the right shape
            end = protocol.step_boundaries()[-1]
            n = max(2, int(round(end / sample_interval)) + 1)
            times = np.linspace(0.0, end, n)

        outputs: dict[int, np.ndarray] = {}
        labels: dict[int, str] = {}
        verdicts: list[ChannelHealth] = []
        for outcome in outcomes:
            i = outcome.index
            labels[i] = self.channels[i].label or f"ch{i}"
            if not outcome.ok:
                outputs[i] = np.full(len(times), np.nan)
                reason = (
                    "timeout"
                    if isinstance(outcome.error, WatchdogTimeout)
                    else "task-error"
                )
                verdicts.append(ChannelHealth(
                    channel=i, status=STATUS_FAILED, reason=reason,
                    detail=str(outcome.error), label=labels[i],
                    retries=outcome.retries,
                ))
                continue
            result = outcome.value
            drifted = result.output_voltage + self.temperature_drift * result.times
            drifted = self._apply_device_fault(drifted)
            outputs[i] = drifted
            verdicts.append(diagnose_trace(
                drifted, channel=i, label=labels[i], rail=SUPPLY_RAIL,
                expect_variation=include_noise, retries=outcome.retries,
            ))
        return ArrayAssayResult(
            times=times,
            channel_outputs=outputs,
            channel_labels=labels,
            reference_channels=self.reference_channels,
            health=HealthReport(channels=tuple(verdicts)),
        )

    @staticmethod
    def _apply_device_fault(trace: np.ndarray) -> np.ndarray:
        """Inject armed array device faults as their electrical symptoms.

        Both sites are polled once per channel, in channel order, so a
        :class:`~repro.engine.resilience.FaultSpec` with ``at=k``
        targets channel ``k``.  An open bridge resistor floats one
        bridge arm, saturating the readout against the supply (the
        whole trace pins at :data:`SUPPLY_RAIL`); a stuck/unreleased
        beam never transduces, freezing the channel at its first
        reading.  The diagnostics must recognize the *symptom* — the
        injection carries no out-of-band marker.
        """
        if poll_fault("chip.bridge-open") is not None:
            return np.full_like(trace, SUPPLY_RAIL)
        if poll_fault("chip.stuck") is not None:
            return np.full_like(trace, trace[0] if len(trace) else 0.0)
        return trace

    def scan_bridges(
        self, dwell_time: float = 5e-3, duration: float = 0.05
    ) -> tuple[Signal, list]:
        """Mux scan of the four raw bridge outputs (full-rate, FIG4 bench).

        Each channel contributes its static mismatch offset — the scan
        shows the settling transients and per-channel levels the shared
        chain must handle.
        """
        rate = presets.CIRCUIT_SAMPLE_RATE
        signals = [
            Signal.constant(sensor.bridge_voltage(0.0), duration, rate)
            for sensor in self.sensors
        ]
        return self.mux.scan(signals, dwell_time)


def _reference_analyte() -> Analyte:
    """Inert placeholder chemistry for blocked reference beams."""
    from ..biochem.analytes import get_analyte

    return get_analyte("igg")
