"""The static cantilever biosensor (Fig. 1 mechanics + Fig. 4 readout).

One functionalized cantilever read out by the chopper-stabilized chain:
analyte coverage produces surface stress, the distributed diffused
bridge converts the resulting uniform surface strain into microvolts,
and the Fig. 4 chain (chopper amp -> low-pass -> offset DAC -> two gain
stages) turns that into the volt-scale output an ADC digitizes.

Two time scales coexist: the chopper runs at 10 kHz while an assay runs
for tens of minutes, so simulating the full chain sample-by-sample over
an assay is both impossible and pointless.  The sensor therefore
characterizes the chain once at full rate — DC transfer and output noise
in the signal band — and applies that calibrated transfer to the slow
assay trace, adding output noise of the measured rms.  The full-rate
path stays available (:meth:`process_waveform`) for the FIG4 benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..biochem.assay import AssayProtocol, AssayTrace, run_assay
from ..biochem.functionalization import FunctionalizedSurface
from ..circuits.block import Chain
from ..circuits.signal import Signal
from ..errors import CircuitError
from ..mechanics.geometry import CantileverGeometry
from ..mechanics.surface_stress import surface_bending_stress
from ..transduction.wheatstone import WheatstoneBridge
from ..units import require_positive
from . import presets


@dataclass(frozen=True)
class StaticAssayResult:
    """Output of a static-mode assay run."""

    times: np.ndarray
    coverage: np.ndarray
    surface_stress: np.ndarray
    bridge_voltage: np.ndarray
    output_voltage: np.ndarray

    @property
    def final_output(self) -> float:
        """Output at the end of the protocol [V]."""
        return float(self.output_voltage[-1])

    def output_step(self, baseline_samples: int = 30) -> float:
        """Signal step: final output minus the initial baseline mean [V]."""
        return self.final_output - float(
            np.mean(self.output_voltage[:baseline_samples])
        )


class StaticCantileverSensor:
    """A functionalized static cantilever with the Fig. 4 readout chain.

    Parameters
    ----------
    surface:
        Functionalized surface (provides geometry + analyte chemistry).
    bridge:
        Distributed diffused-resistor bridge; defaults to the preset.
    blocks:
        Readout chain stages keyed as in
        :func:`repro.core.presets.static_readout_blocks`.
    sample_rate:
        Full-rate circuit simulation rate [Hz].
    seed:
        RNG seed for the chain's noise realizations.
    """

    def __init__(
        self,
        surface: FunctionalizedSurface,
        bridge: WheatstoneBridge | None = None,
        blocks: dict | None = None,
        sample_rate: float = presets.CIRCUIT_SAMPLE_RATE,
        seed: int = 2024,
    ) -> None:
        self.surface = surface
        self.geometry: CantileverGeometry = surface.geometry
        self.bridge = bridge if bridge is not None else presets.static_bridge()
        rng = np.random.default_rng(seed)
        self.blocks = (
            blocks if blocks is not None else presets.static_readout_blocks(rng)
        )
        self.sample_rate = require_positive("sample_rate", sample_rate)
        self._chain = Chain(list(self.blocks.values()))
        self._dc_gain: float | None = None
        self._noise_rms: float | None = None

    @classmethod
    def from_spec(cls, spec) -> "StaticCantileverSensor":
        """Build the full static system from a :class:`StaticSensorSpec`.

        Fabricates the spec'd beam, functionalizes it for the spec'd
        analyte, and assembles the spec'd bridge and Fig. 4 chain.
        Deterministic: equal specs build bit-identical sensors.
        """
        from ..biochem.analytes import get_analyte
        from ..biochem.functionalization import FunctionalizedSurface
        from ..config.builders import (
            build_bridge,
            build_cantilever,
            build_static_readout,
        )

        cantilever = build_cantilever(spec.cantilever, spec.process)
        surface = FunctionalizedSurface(
            analyte=get_analyte(spec.analyte),
            geometry=cantilever.geometry,
            immobilization_efficiency=spec.immobilization_efficiency,
        )
        return cls(
            surface,
            bridge=build_bridge(spec.bridge),
            blocks=build_static_readout(spec.readout),
            sample_rate=spec.readout.sample_rate_hz,
            seed=spec.readout.rng_seed,
        )

    # -- transduction -------------------------------------------------------------

    def bridge_voltage(self, surface_stress: float) -> float:
        """Bridge differential output [V] for a surface stress [N/m].

        Includes the bridge's mismatch offset — the readout chain must
        deal with it, exactly as on silicon.
        """
        sigma_l = surface_bending_stress(self.geometry, surface_stress)
        return self.bridge.output_voltage(sigma_l)

    def stress_responsivity(self) -> float:
        """Bridge volts per N/m of surface stress [V/(N/m)]."""
        probe = 1e-5  # N/m, deep in the linear regime
        return (
            self.bridge_voltage(probe) - self.bridge_voltage(-probe)
        ) / (2.0 * probe)

    # -- chain characterization ------------------------------------------------------

    def characterize_chain(
        self, duration: float = 0.6, test_level: float = 100e-6
    ) -> tuple[float, float]:
        """(DC gain, output noise rms) of the readout chain.

        Runs the full-rate chain twice: once on a DC test level to get
        the end-to-end transfer (chopping and filtering included), once
        on zero input to get the output noise in the signal band.  The
        chain's own offsets cancel in the two-point gain measurement.
        """
        self._chain.reset()
        level = Signal.constant(test_level, duration, self.sample_rate)
        out_hi = self._chain.process(level).settle(0.5).mean()
        self._chain.reset()
        zero = Signal.constant(0.0, duration, self.sample_rate)
        out_zero_signal = self._chain.process(zero).settle(0.5)
        self._chain.reset()

        dc_gain = (out_hi - out_zero_signal.mean()) / test_level
        if abs(dc_gain) < 1e-9:
            raise CircuitError("readout chain shows no DC transfer")
        noise_rms = out_zero_signal.std()
        self._dc_gain = float(dc_gain)
        self._noise_rms = float(noise_rms)
        return self._dc_gain, self._noise_rms

    @property
    def dc_gain(self) -> float:
        """Calibrated end-to-end DC gain (characterizing on first use)."""
        if self._dc_gain is None:
            self.characterize_chain()
        return self._dc_gain  # type: ignore[return-value]

    @property
    def output_noise_rms(self) -> float:
        """Output noise rms in the signal band [V]."""
        if self._noise_rms is None:
            self.characterize_chain()
        return self._noise_rms  # type: ignore[return-value]

    # -- offset management ------------------------------------------------------------

    def calibrate_offset(self) -> float:
        """Auto-zero: program the offset DAC to null the baseline output.

        Measures the zero-analyte output (bridge mismatch offset times
        first-stage gain), refers it to the DAC plane (after the chopper
        and low-pass, before the final gain stages), and programs the
        DAC.  Returns the residual output offset [V].
        """
        dac = self.blocks["offset_dac"]
        dac.set_code(0)
        baseline_bridge = self.bridge_voltage(0.0)
        # what arrives at the DAC plane: bridge offset x chopper stage gain
        pre_dac_gain = self.dc_gain / (
            self.blocks["gain2"].gain * self.blocks["gain3"].gain
        )
        dac.calibrate(baseline_bridge * pre_dac_gain)
        return self.output_for_stress(0.0)

    def output_for_stress(self, surface_stress: float) -> float:
        """Predicted DC output [V] for a static surface stress [N/m]."""
        dac = self.blocks["offset_dac"]
        post_gain = self.blocks["gain2"].gain * self.blocks["gain3"].gain
        pre_dac_gain = self.dc_gain / post_gain
        v_pre_dac = self.bridge_voltage(surface_stress) * pre_dac_gain
        return (v_pre_dac - dac.compensation) * post_gain

    # -- full-rate path ------------------------------------------------------------------

    def process_waveform(self, bridge_signal: Signal) -> Signal:
        """Run an arbitrary bridge waveform through the full-rate chain."""
        self._chain.reset()
        out = self._chain.process(bridge_signal)
        self._chain.reset()
        return out

    # -- assay ---------------------------------------------------------------------------

    def run_assay(
        self,
        protocol: AssayProtocol,
        sample_interval: float = 2.0,
        include_noise: bool = True,
        seed: int = 77,
    ) -> StaticAssayResult:
        """Run a full assay and return the sensor's output trace.

        Uses the calibrated DC transfer on the slow binding trace plus
        output noise at the characterized rms; run
        :meth:`calibrate_offset` first for a zero-based output.
        """
        trace: AssayTrace = run_assay(self.surface, protocol, sample_interval)
        bridge = np.asarray(
            [self.bridge_voltage(s) for s in trace.surface_stress]
        )
        output = np.asarray(
            [self.output_for_stress(s) for s in trace.surface_stress]
        )
        if include_noise:
            rng = np.random.default_rng(seed)
            output = output + rng.normal(0.0, self.output_noise_rms, len(output))
        return StaticAssayResult(
            times=trace.times,
            coverage=trace.coverage,
            surface_stress=trace.surface_stress,
            bridge_voltage=bridge,
            output_voltage=output,
        )
