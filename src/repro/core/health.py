"""Per-channel health classification for array measurements.

Real monolithic arrays ship with dead channels — open bridge resistors,
unreleased (stuck) beams, loops that never satisfy Barkhausen — and a
four-channel assay with one broken beam is still three good channels of
data.  This module is the vocabulary the array front-ends
(:meth:`~repro.core.chip.BiosensorChip.run_array_assay`,
:meth:`~repro.core.resonant_chip.ResonantArrayChip.measure_frequencies`)
use to *keep going*: instead of raising on the first sick channel they
classify every channel and return a :class:`HealthReport` alongside the
data, with failed channels' traces poisoned to NaN so nothing downstream
can mistake them for measurements.

Classification works on observable symptoms, not fault-injection
oracles: a railed trace is railed whether a test injected the open
bridge or the silicon really has one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "ChannelHealth",
    "HealthReport",
    "diagnose_loop_record",
    "diagnose_trace",
]

#: Channel delivered a trustworthy measurement.
STATUS_OK = "ok"
#: Channel produced data, but a recognized failure symptom taints it.
STATUS_DEGRADED = "degraded"
#: Channel produced no usable data (its trace is NaN-poisoned).
STATUS_FAILED = "failed"

_STATUS_RANK = {STATUS_OK: 0, STATUS_DEGRADED: 1, STATUS_FAILED: 2}


@dataclass(frozen=True)
class ChannelHealth:
    """Verdict for one array channel.

    Parameters
    ----------
    channel:
        Array index of the channel.
    status:
        :data:`STATUS_OK`, :data:`STATUS_DEGRADED`, or
        :data:`STATUS_FAILED`.
    reason:
        Symptom slug for non-ok channels — ``"diverged"``, ``"railed"``,
        ``"stuck"``, ``"no-oscillation"``, ``"task-error"``,
        ``"timeout"``.
    detail:
        Human-readable elaboration (captured error message, metric).
    label:
        The channel's assay label, when the front-end has one.
    retries:
        How many retry attempts the channel consumed before this
        verdict.
    """

    channel: int
    status: str = STATUS_OK
    reason: str | None = None
    detail: str = ""
    label: str = ""
    retries: int = 0

    def __post_init__(self) -> None:
        if self.status not in _STATUS_RANK:
            raise ValueError(
                f"unknown health status {self.status!r}; expected one of "
                f"{tuple(_STATUS_RANK)}"
            )

    @property
    def ok(self) -> bool:
        """True when the channel's data is fully trustworthy."""
        return self.status == STATUS_OK

    def describe(self) -> str:
        """One-line rendering: ``ch2: degraded (railed)``."""
        name = self.label or f"ch{self.channel}"
        if self.ok:
            return f"{name}: ok"
        text = f"{name}: {self.status} ({self.reason})"
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass(frozen=True)
class HealthReport:
    """All channel verdicts of one array measurement, in channel order."""

    channels: tuple[ChannelHealth, ...]

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)

    def __getitem__(self, channel: int) -> ChannelHealth:
        for h in self.channels:
            if h.channel == channel:
                return h
        raise KeyError(f"no health entry for channel {channel}")

    @property
    def ok(self) -> bool:
        """True when every channel is healthy."""
        return all(h.ok for h in self.channels)

    @property
    def worst(self) -> str:
        """The most severe status present (``"ok"`` for an empty report)."""
        if not self.channels:
            return STATUS_OK
        return max((h.status for h in self.channels), key=_STATUS_RANK.get)

    def sick(self) -> tuple[ChannelHealth, ...]:
        """The non-ok channels, in channel order."""
        return tuple(h for h in self.channels if not h.ok)

    def ok_channels(self) -> tuple[int, ...]:
        """Indices of the healthy channels."""
        return tuple(h.channel for h in self.channels if h.ok)

    def summary(self) -> str:
        """``"4 channels: 3 ok, 1 degraded (ch2: railed)"``-style line."""
        n = len(self.channels)
        counts = []
        for status in (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED):
            k = sum(1 for h in self.channels if h.status == status)
            if k:
                counts.append(f"{k} {status}")
        text = f"{n} channel{'s' if n != 1 else ''}: {', '.join(counts) or 'none'}"
        sick = self.sick()
        if sick:
            text += f" ({'; '.join(h.describe() for h in sick)})"
        return text


def diagnose_trace(
    values: np.ndarray,
    *,
    channel: int = 0,
    label: str = "",
    rail: float | None = None,
    rail_tolerance: float = 1e-6,
    expect_variation: bool = False,
    retries: int = 0,
) -> ChannelHealth:
    """Classify one slow assay trace (e.g. a static channel's output).

    Symptoms checked, most severe first:

    * non-finite samples → ``failed (diverged)``;
    * every sample pinned within ``rail_tolerance`` of ``±rail`` →
      ``degraded (railed)`` — the open-bridge-resistor signature, the
      readout saturated against a supply;
    * exactly zero variation across the trace, when
      ``expect_variation`` says a live channel cannot be flat (noise
      enabled, stimulus applied) → ``degraded (stuck)`` — the
      unreleased-beam signature.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0 or not np.isfinite(values).all():
        bad = int(values.size - np.isfinite(values).sum()) if values.size else 0
        return ChannelHealth(
            channel=channel, status=STATUS_FAILED, reason="diverged",
            detail=f"{bad}/{values.size} non-finite samples",
            label=label, retries=retries,
        )
    if rail is not None and np.all(
        np.abs(np.abs(values) - abs(rail)) <= rail_tolerance
    ):
        return ChannelHealth(
            channel=channel, status=STATUS_DEGRADED, reason="railed",
            detail=f"output pinned at {values[0]:+.3g} V supply rail",
            label=label, retries=retries,
        )
    if expect_variation and values.size > 1 and np.ptp(values) == 0.0:
        return ChannelHealth(
            channel=channel, status=STATUS_DEGRADED, reason="stuck",
            detail=f"zero variation across {values.size} samples",
            label=label, retries=retries,
        )
    return ChannelHealth(channel=channel, label=label, retries=retries)


def diagnose_loop_record(
    record,
    *,
    channel: int = 0,
    label: str = "",
    min_amplitude: float = 1e-10,
    retries: int = 0,
) -> ChannelHealth:
    """Classify one closed-loop run (a :class:`LoopRecord`).

    * non-finite displacement or bridge samples → ``failed (diverged)``
      (a blown-up integration or NaN-poisoned record);
    * steady tip amplitude below ``min_amplitude`` metres →
      ``degraded (no-oscillation)`` — the loop never satisfied
      Barkhausen (gain starved, overdamped liquid);
    * otherwise ok.

    The 1e-10 m floor sits four orders below any real oscillation
    amplitude and three above numerical dust, so the verdict does not
    wobble with backend rounding.
    """
    displacement = np.asarray(record.displacement, dtype=float)
    bridge = np.asarray(record.bridge_voltage, dtype=float)
    if not (np.isfinite(displacement).all() and np.isfinite(bridge).all()):
        bad = int(
            (~np.isfinite(displacement)).sum() + (~np.isfinite(bridge)).sum()
        )
        return ChannelHealth(
            channel=channel, status=STATUS_FAILED, reason="diverged",
            detail=f"{bad} non-finite samples in recorded waveforms",
            label=label, retries=retries,
        )
    amplitude = float(record.steady_amplitude())
    if amplitude < min_amplitude:
        return ChannelHealth(
            channel=channel, status=STATUS_DEGRADED, reason="no-oscillation",
            detail=f"steady amplitude {amplitude:.2e} m below "
                   f"{min_amplitude:.0e} m floor",
            label=label, retries=retries,
        )
    return ChannelHealth(channel=channel, label=label, retries=retries)
