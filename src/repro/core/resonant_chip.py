"""Dual-oscillator resonant chip: sensing + reference beams on one die.

The resonant analogue of the static array's referencing.  Two
cantilever oscillators share the die (hence the temperature) and the
Fig. 5 loop architecture; one is functionalized, the other blocked.
The digital backend reads both counters and reports the frequency
ratio, cancelling the common -31 ppm/K temperature coefficient while
binding moves only the sensing beam.

The chip composes two full :class:`ResonantCantileverSensor` instances —
their loops really run (`measure_frequencies`), and assay-length records
use the same calibrated tracking model, with a shared temperature
profile applied to both beams through the common TCF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..biochem.assay import AssayProtocol
from ..biochem.functionalization import FunctionalizedSurface
from ..engine.resilience import poll_fault
from ..environment.temperature import frequency_temperature_coefficient
from ..errors import OscillationError
from ..materials.liquids import Liquid
from ..units import require_positive
from .health import (
    STATUS_DEGRADED,
    ChannelHealth,
    HealthReport,
    diagnose_loop_record,
)
from .resonant_sensor import ResonantCantileverSensor


@dataclass(frozen=True)
class CompensatedAssayResult:
    """Raw and ratio-compensated traces of a dual-oscillator assay."""

    times: np.ndarray
    temperature: np.ndarray
    sensing_frequency: np.ndarray
    reference_frequency: np.ndarray
    ratio: np.ndarray
    true_binding_ratio: np.ndarray
    gate_time: float

    @property
    def raw_shift(self) -> float:
        """Start-to-end sensing-beam frequency change [Hz] (drift + binding)."""
        return float(self.sensing_frequency[-1] - self.sensing_frequency[0])

    @property
    def compensated_shift_fraction(self) -> float:
        """Start-to-end fractional change of the ratio readout."""
        return float(self.ratio[-1] / self.ratio[0] - 1.0)


class ResonantArrayChip:
    """Sensing + blocked-reference resonant cantilevers on one die.

    Parameters
    ----------
    surface:
        Functionalized surface of the sensing beam; the reference beam
        reuses its geometry with a blocked (efficiency-0) coating.
    liquid:
        Shared operating liquid.
    reference_detune:
        Drawn-length detune of the reference beam so the two oscillators
        never injection-lock; its frequency sits this fraction higher.
    tcf_mismatch:
        Residual TCF difference between the beams [1/K] (across-die
        process gradient); the compensation floor.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        surface: FunctionalizedSurface,
        liquid: Liquid,
        reference_detune: float = 0.02,
        tcf_mismatch: float = 1e-7,
        seed: int = 777,
    ) -> None:
        require_positive("reference_detune", reference_detune)
        self.surface = surface
        self.liquid = liquid
        self.tcf = frequency_temperature_coefficient(surface.geometry)
        self.tcf_mismatch = float(tcf_mismatch)

        self.sensing = ResonantCantileverSensor(surface, liquid, seed=seed)
        reference_geometry = surface.geometry.scaled(
            length_factor=1.0 / math.sqrt(1.0 + reference_detune)
        )
        blocked = FunctionalizedSurface(
            analyte=surface.analyte,
            geometry=reference_geometry,
            immobilization_efficiency=0.0,
        )
        self.reference = ResonantCantileverSensor(blocked, liquid, seed=seed + 1)
        #: :class:`~repro.core.health.HealthReport` of the last
        #: :meth:`measure_frequencies` call (channel 0 = sensing,
        #: channel 1 = reference); ``None`` before the first call.
        self.last_health: HealthReport | None = None

    # -- live measurement ----------------------------------------------------

    def measure_frequencies(
        self, gate_time: float = 0.05, gates: int = 3, batch: bool = True
    ) -> tuple[float, float]:
        """Run both loops and count both beams: (f_sensing, f_reference).

        With ``batch=True`` (default) the sensing and reference loops
        run as ONE batched kernel call (see
        :func:`repro.feedback.run_batch`) — bit-identical to the serial
        pair of :meth:`ResonantCantileverSensor.measure_frequency`
        runs, which the tests pin.

        A beam that fails to oscillate (gain starvation, heavy damping,
        an injected ``loop.no-startup`` fault) or returns a damaged
        record does not raise: its frequency comes back NaN and the
        verdict lands in :attr:`last_health` — the other beam's reading
        stays valid, exactly like a yield-limited real array.
        """
        if batch:
            from ..feedback.loop import run_batch

            duration = ResonantCantileverSensor.measurement_duration(
                gate_time, gates
            )
            loops = [self.sensing.build_loop(), self.reference.build_loop()]
            for loop in loops:
                # polled in channel order (0 = sensing, 1 = reference), so
                # a FaultSpec with at=k starves channel k's loop gain —
                # the physically honest no-startup symptom: Barkhausen
                # unsatisfied, amplitude never grows past noise
                if poll_fault("loop.no-startup") is not None:
                    loop.limiter.small_signal_gain = 1e-6
            rec_s, rec_r = run_batch(
                loops, duration, backend=self.sensing.loop_backend
            )
            f_s, h_s = self._count_channel(
                self.sensing, rec_s, gate_time, 0, "sensing"
            )
            f_r, h_r = self._count_channel(
                self.reference, rec_r, gate_time, 1, "reference"
            )
            self.last_health = HealthReport(channels=(h_s, h_r))
            return f_s, f_r
        f_s, h_s = self._measure_solo(self.sensing, gate_time, gates, 0, "sensing")
        f_r, h_r = self._measure_solo(
            self.reference, gate_time, gates, 1, "reference"
        )
        self.last_health = HealthReport(channels=(h_s, h_r))
        return f_s, f_r

    @staticmethod
    def _count_channel(
        sensor: ResonantCantileverSensor,
        record,
        gate_time: float,
        channel: int,
        label: str,
    ) -> tuple[float, ChannelHealth]:
        """Count one beam's record, degrading instead of raising."""
        verdict = diagnose_loop_record(record, channel=channel, label=label)
        if not verdict.ok:
            return float("nan"), verdict
        try:
            frequency, _ = sensor.count_record(record, gate_time)
        except OscillationError as err:
            return float("nan"), ChannelHealth(
                channel=channel, status=STATUS_DEGRADED,
                reason="no-oscillation", detail=str(err), label=label,
            )
        return frequency, verdict

    @staticmethod
    def _measure_solo(
        sensor: ResonantCantileverSensor,
        gate_time: float,
        gates: int,
        channel: int,
        label: str,
    ) -> tuple[float, ChannelHealth]:
        try:
            frequency, _ = sensor.measure_frequency(
                gate_time=gate_time, gates=gates
            )
        except OscillationError as err:
            return float("nan"), ChannelHealth(
                channel=channel, status=STATUS_DEGRADED,
                reason="no-oscillation", detail=str(err), label=label,
            )
        return frequency, ChannelHealth(channel=channel, label=label)

    # -- compensated assay -----------------------------------------------------

    def run_compensated_assay(
        self,
        protocol: AssayProtocol,
        temperature_profile,
        gate_time: float = 10.0,
        include_noise: bool = False,
    ) -> CompensatedAssayResult:
        """Track an assay under a wandering cell temperature.

        Parameters
        ----------
        temperature_profile:
            Callable ``T(t) -> delta_temperature`` [K] relative to the
            calibration point; applied to *both* beams (common mode) with
            the sensing beam using ``tcf`` and the reference beam
            ``tcf + tcf_mismatch``.
        """
        sensing_result = self.sensing.run_tracking_assay(
            protocol, gate_time=gate_time, include_noise=include_noise
        )
        times = sensing_result.times
        delta_t = np.asarray([temperature_profile(t) for t in times], dtype=float)

        f_sense = sensing_result.measured_frequency * (1.0 + self.tcf * delta_t)
        f_ref0 = self.reference.frequency_for_added_mass(0.0)
        f_ref = f_ref0 * (1.0 + (self.tcf + self.tcf_mismatch) * delta_t)
        if include_noise:
            rng = np.random.default_rng(99)
            f_ref = np.round(
                (f_ref + rng.normal(0.0, 0.05 / gate_time, len(f_ref)))
                * gate_time
            ) / gate_time

        ratio = f_sense / f_ref
        true_binding = (
            sensing_result.true_frequency
            / sensing_result.true_frequency[0]
        )
        return CompensatedAssayResult(
            times=times,
            temperature=delta_t,
            sensing_frequency=f_sense,
            reference_frequency=f_ref,
            ratio=ratio,
            true_binding_ratio=true_binding,
            gate_time=gate_time,
        )
