"""The paper's systems, assembled from the substrate packages."""

from . import presets
from .chip import SUPPLY_RAIL, ArrayAssayResult, BiosensorChip, ChannelConfig
from .health import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    ChannelHealth,
    HealthReport,
    diagnose_loop_record,
    diagnose_trace,
)
from .interference import (
    EXTERNAL_PATH,
    MONOLITHIC_PATH,
    InterferenceResult,
    ReadoutPath,
    compare_paths,
    evaluate_path,
)
from .resonant_chip import CompensatedAssayResult, ResonantArrayChip
from .resonant_sensor import ResonantAssayResult, ResonantCantileverSensor
from .static_sensor import StaticAssayResult, StaticCantileverSensor

__all__ = [
    "ArrayAssayResult",
    "BiosensorChip",
    "ChannelConfig",
    "ChannelHealth",
    "HealthReport",
    "STATUS_DEGRADED",
    "STATUS_FAILED",
    "STATUS_OK",
    "SUPPLY_RAIL",
    "diagnose_loop_record",
    "diagnose_trace",
    "EXTERNAL_PATH",
    "InterferenceResult",
    "MONOLITHIC_PATH",
    "ReadoutPath",
    "CompensatedAssayResult",
    "ResonantArrayChip",
    "ResonantAssayResult",
    "ResonantCantileverSensor",
    "StaticAssayResult",
    "StaticCantileverSensor",
    "compare_paths",
    "evaluate_path",
    "presets",
]
