"""The resonant cantilever biosensor (Fig. 2 mechanics + Fig. 5 loop).

A functionalized cantilever oscillating in liquid inside the closed
feedback loop, read out by the digital counter.  Bound analyte mass
lowers the modal resonance; the loop tracks it; the counter reports it.

As with the static sensor, two time scales coexist: the oscillator runs
at ~9 kHz (360 kHz simulation rate) while binding takes minutes.  The
sensor therefore:

* runs the *full closed loop* for short windows
  (:meth:`measure_frequency`) — this is the ground truth used by the
  FIG5 benches and to calibrate the tracking model; and
* for assay-length records (:meth:`run_tracking_assay`), evaluates the
  physically exact frequency-vs-mass curve at each counter gate and
  applies the counter's quantization plus the loop's measured
  closed-loop frequency offset and gate-to-gate jitter, all three taken
  from real short-window loop runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..actuation.lorentz import ActuationCoil, LorentzActuator, PermanentMagnet
from ..biochem.assay import AssayProtocol, AssayTrace, run_assay
from ..biochem.functionalization import FunctionalizedSurface
from ..circuits.counter import FrequencyCounter
from ..errors import OscillationError
from ..fluidics.immersion import FluidLoadedMode, immersed_mode
from ..materials.liquids import Liquid
from ..mechanics.dynamics import ModalResonator
from ..mechanics.modal import analyze_modes, effective_mass_fraction
from ..feedback.loop import ResonantFeedbackLoop, displacement_to_stress_gain
from ..transduction.wheatstone import WheatstoneBridge
from ..units import require_positive
from . import presets


@dataclass(frozen=True)
class ResonantAssayResult:
    """Output of a resonant-mode tracking assay."""

    times: np.ndarray
    coverage: np.ndarray
    added_mass: np.ndarray
    true_frequency: np.ndarray
    measured_frequency: np.ndarray
    gate_time: float

    @property
    def total_shift(self) -> float:
        """Measured start-to-end frequency shift [Hz]."""
        return float(self.measured_frequency[-1] - self.measured_frequency[0])


class ResonantCantileverSensor:
    """A functionalized resonant cantilever with the Fig. 5 loop.

    Parameters
    ----------
    surface:
        Functionalized surface (geometry + chemistry).
    liquid:
        Operating liquid (sets added mass and damping); the sensor is
        designed for liquid-phase assays, so this is mandatory.
    bridge:
        PMOS bridge at the clamped edge; defaults to the preset.
    magnet:
        Package magnet for the Lorentz actuator.
    steps_per_cycle:
        Loop simulation rate in samples per oscillation cycle.
    mode:
        Vibration mode to operate on (1 = fundamental).  Higher modes
        trade drive efficiency for mass responsivity and higher Q in
        liquid.
    seed:
        RNG seed for noise realizations.
    loop_backend:
        Execution backend for every closed-loop run this sensor makes
        (see :func:`repro.engine.kernel.resolve_backend`); ``"auto"``
        picks the fastest lowerable path and silently falls back to the
        reference loop when the chain cannot lower.
    """

    def __init__(
        self,
        surface: FunctionalizedSurface,
        liquid: Liquid,
        bridge: WheatstoneBridge | None = None,
        magnet: PermanentMagnet | None = None,
        steps_per_cycle: int = 40,
        mode: int = 1,
        seed: int = 4321,
        loop_backend: str = "auto",
    ) -> None:
        self.surface = surface
        self.geometry = surface.geometry
        self.liquid = liquid
        self.bridge = bridge if bridge is not None else presets.resonant_bridge()
        magnet = magnet if magnet is not None else PermanentMagnet()
        self.actuator = LorentzActuator(
            ActuationCoil(geometry=self.geometry), magnet
        )
        self.steps_per_cycle = int(steps_per_cycle)
        self.mode = int(mode)
        self.seed = seed
        self.loop_backend = loop_backend

        self.fluid_mode: FluidLoadedMode = immersed_mode(
            self.geometry, liquid, mode=self.mode
        )
        self._beam_mode = analyze_modes(self.geometry, self.mode)[self.mode - 1]
        self._loop: ResonantFeedbackLoop | None = None
        self._tracking_calibration: tuple[float, float] | None = None

    @classmethod
    def from_spec(cls, spec) -> "ResonantCantileverSensor":
        """Build the full resonant system from a :class:`ResonantSensorSpec`.

        Fabricates the spec'd beam, functionalizes it for the spec'd
        analyte, immerses it in the spec'd liquid, and closes the Fig. 5
        loop with the spec'd PMOS bridge and loop settings.
        Deterministic: equal specs build bit-identical sensors.
        """
        from ..biochem.analytes import get_analyte
        from ..config.builders import build_bridge, build_cantilever
        from ..materials.liquids import get_liquid

        cantilever = build_cantilever(spec.cantilever, spec.process)
        surface = FunctionalizedSurface(
            analyte=get_analyte(spec.analyte),
            geometry=cantilever.geometry,
            immobilization_efficiency=spec.immobilization_efficiency,
        )
        return cls(
            surface,
            liquid=get_liquid(spec.liquid),
            bridge=build_bridge(spec.bridge),
            steps_per_cycle=spec.loop.steps_per_cycle,
            mode=spec.loop.mode,
            seed=spec.loop.seed,
        )

    # -- physics -----------------------------------------------------------------------

    def modal_added_mass(self, bound_mass: float) -> float:
        """Tip-referenced modal mass of uniformly bound analyte [kg]."""
        return bound_mass * effective_mass_fraction(self.mode)

    def frequency_for_added_mass(self, bound_mass: float) -> float:
        """Loop-free resonant frequency [Hz] with bound analyte mass [kg].

        ``f = (1/2 pi) sqrt(k_eff / (m_fluid_loaded + dm_modal))`` —
        exact within the single-mode picture, including fluid loading.
        """
        k = self._beam_mode.effective_stiffness
        m = self.fluid_mode.effective_mass + self.modal_added_mass(bound_mass)
        return math.sqrt(k / m) / (2.0 * math.pi)

    def mass_responsivity(self) -> float:
        """Small-signal ``df/dm`` [Hz/kg] at zero bound mass (negative)."""
        f0 = self.frequency_for_added_mass(0.0)
        return (
            -f0
            * effective_mass_fraction(self.mode)
            / (2.0 * self.fluid_mode.effective_mass)
        )

    def build_resonator(self, bound_mass: float = 0.0) -> ModalResonator:
        """Modal resonator at a given bound mass, fluid loading included."""
        k = self._beam_mode.effective_stiffness
        m = self.fluid_mode.effective_mass + self.modal_added_mass(bound_mass)
        f = math.sqrt(k / m) / (2.0 * math.pi)
        return ModalResonator(
            effective_mass=m,
            effective_stiffness=k,
            quality_factor=self.fluid_mode.quality_factor,
            timestep=1.0 / (f * self.steps_per_cycle),
        )

    # -- the loop -----------------------------------------------------------------------

    def build_loop(self, bound_mass: float = 0.0) -> ResonantFeedbackLoop:
        """Construct the Fig. 5 loop around the current mechanical state."""
        resonator = self.build_resonator(bound_mass)
        loop = ResonantFeedbackLoop(
            resonator=resonator,
            bridge=self.bridge,
            displacement_to_stress=displacement_to_stress_gain(
                self.geometry, mode=self.mode
            ),
            actuator=self.actuator,
            seed=self.seed,
        )
        loop.auto_gain(1.0 / resonator.timestep)
        return loop

    def measure_frequency(
        self,
        bound_mass: float = 0.0,
        gate_time: float = 0.05,
        gates: int = 4,
        settle_gates: int = 2,
    ) -> tuple[float, np.ndarray]:
        """Close the loop and count: (mean frequency, per-gate readings).

        The first ``settle_gates`` gates cover oscillator startup and are
        discarded.
        """
        require_positive("gate_time", gate_time)
        if gates < 1:
            raise OscillationError("need at least one measurement gate")
        loop = self.build_loop(bound_mass)
        duration = self.measurement_duration(gate_time, gates, settle_gates)
        record = loop.run(duration, backend=self.loop_backend)
        return self.count_record(record, gate_time, settle_gates)

    @staticmethod
    def measurement_duration(
        gate_time: float, gates: int = 4, settle_gates: int = 2
    ) -> float:
        """Loop-run length [s] covering settle + measurement gates."""
        return (gates + settle_gates) * gate_time

    @staticmethod
    def count_record(
        record, gate_time: float, settle_gates: int = 2
    ) -> tuple[float, np.ndarray]:
        """Gate-count a closed-loop record: (mean frequency, readings).

        The counting half of :meth:`measure_frequency`, split out so
        batched loop runs (:func:`repro.feedback.run_batch`) reduce to
        the identical readings as solo measurement.
        """
        counter = FrequencyCounter(gate_time=gate_time)
        _, readings = counter.frequency_series(record.bridge_signal())
        readings = readings[settle_gates:]
        if len(readings) == 0 or np.any(readings <= 0.0):
            raise OscillationError("loop failed to oscillate within the record")
        return float(np.mean(readings)), readings

    # -- tracking assay -----------------------------------------------------------------

    def calibrate_tracking(
        self, gate_time: float
    ) -> tuple[float, float]:
        """(fractional frequency offset, gate jitter rms [Hz]) of the loop.

        One short full-loop run at zero bound mass: the closed-loop
        oscillation sits a small fraction off the open-loop resonance
        (loop phase budget) and successive gates jitter by the noise —
        both are applied to the fast tracking model.
        """
        from ..circuits.counter import ReciprocalCounter

        loop = self.build_loop(bound_mass=0.0)
        settle_gates, gates = 2, 6
        record = loop.run(
            duration=(gates + settle_gates) * gate_time,
            backend=self.loop_backend,
        )
        # the reciprocal counter carries no +/-1-count grid, so the
        # reading spread is the loop's own jitter — the quantity the
        # tracking model must scale to long gates (the assay gates apply
        # their own quantization explicitly on top).
        counter = ReciprocalCounter(gate_time=gate_time)
        readings = np.asarray(
            [m.frequency for m in counter.measure(record.bridge_signal())]
        )[settle_gates:]
        if len(readings) == 0 or np.any(readings <= 0.0):
            raise OscillationError("loop failed to oscillate during calibration")
        true_f = self.frequency_for_added_mass(0.0)
        offset_frac = (float(np.mean(readings)) - true_f) / true_f
        jitter = float(np.std(readings)) if len(readings) > 1 else 0.0
        self._tracking_calibration = (offset_frac, jitter)
        return self._tracking_calibration

    def run_tracking_assay(
        self,
        protocol: AssayProtocol,
        gate_time: float = 1.0,
        include_noise: bool = True,
    ) -> ResonantAssayResult:
        """Track an assay with counter readings every ``gate_time`` seconds.

        Exact mass-to-frequency physics per gate; closed-loop offset,
        gate jitter (scaled from the calibration gate by the white-noise
        ``1/sqrt(T)`` law), and counter quantization applied on top.
        """
        trace: AssayTrace = run_assay(self.surface, protocol, gate_time)
        if self._tracking_calibration is None:
            # calibrate at a short, cheap gate and scale
            self.calibrate_tracking(gate_time=0.05)
        offset_frac, jitter_cal = self._tracking_calibration
        jitter = jitter_cal * math.sqrt(0.05 / gate_time)

        true_f = np.asarray(
            [self.frequency_for_added_mass(m) for m in trace.added_mass]
        )
        measured = true_f * (1.0 + offset_frac)
        if include_noise:
            rng = np.random.default_rng(self.seed + 1)
            measured = measured + rng.normal(0.0, jitter, len(measured))
        # counter quantization: readings are integer counts per gate
        measured = np.round(measured * gate_time) / gate_time

        return ResonantAssayResult(
            times=trace.times,
            coverage=trace.coverage,
            added_mass=trace.added_mass,
            true_frequency=true_f,
            measured_frequency=measured,
            gate_time=gate_time,
        )

    def minimum_detectable_mass(self, gate_time: float = 1.0) -> float:
        """Counter-quantization-limited mass LOD [kg].

        ``dm_min = (1 / T_gate) / |df/dm|`` — the resolution floor even
        for a perfectly stable oscillator.
        """
        require_positive("gate_time", gate_time)
        return (1.0 / gate_time) / abs(self.mass_responsivity())
