"""Liquid property database for biosensor operating environments.

The paper's variable-gain amplifier exists precisely because "different
liquids presented to the biosensor" change the mechanical damping of the
resonant cantilever.  This module provides the density and viscosity of
the liquids a cantilever immunoassay actually sees: water, buffer (PBS),
diluted serum, and glycerol mixtures used to emulate elevated viscosity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MaterialError
from ..units import require_positive


@dataclass(frozen=True)
class Liquid:
    """Newtonian liquid described by density and dynamic viscosity.

    Parameters
    ----------
    name:
        Registry key.
    density:
        Mass density [kg/m^3].
    viscosity:
        Dynamic viscosity [Pa*s].
    """

    name: str
    density: float
    viscosity: float

    def __post_init__(self) -> None:
        require_positive("density", self.density)
        require_positive("viscosity", self.viscosity)

    def kinematic_viscosity(self) -> float:
        """Kinematic viscosity ``mu / rho`` [m^2/s]."""
        return self.viscosity / self.density


#: Vacuum/air sentinel: the library treats ``None`` as "no fluid loading",
#: but an explicit thin-air entry is useful for comparison benches.
AIR = Liquid(name="air", density=1.184, viscosity=1.849e-5)


def _builtin_liquids() -> dict[str, Liquid]:
    return {
        liq.name: liq
        for liq in (
            AIR,
            Liquid(name="water", density=997.0, viscosity=0.89e-3),
            Liquid(name="pbs", density=1005.0, viscosity=0.92e-3),
            Liquid(name="serum_10pct", density=1008.0, viscosity=1.05e-3),
            Liquid(name="serum", density=1024.0, viscosity=1.6e-3),
            Liquid(name="glycerol_20pct", density=1047.0, viscosity=1.54e-3),
            Liquid(name="glycerol_40pct", density=1099.0, viscosity=3.18e-3),
            Liquid(name="glycerol_60pct", density=1154.0, viscosity=8.82e-3),
        )
    }


_REGISTRY: dict[str, Liquid] = _builtin_liquids()


def get_liquid(name: str) -> Liquid:
    """Look up a liquid by name; raises :class:`MaterialError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MaterialError(f"unknown liquid {name!r}; known: {known}") from None


def register_liquid(liquid: Liquid, *, overwrite: bool = False) -> None:
    """Add a user-defined liquid to the registry."""
    if liquid.name in _REGISTRY and not overwrite:
        raise MaterialError(
            f"liquid {liquid.name!r} already registered; pass overwrite=True"
        )
    _REGISTRY[liquid.name] = liquid


def list_liquids() -> list[str]:
    """Names of all registered liquids, sorted."""
    return sorted(_REGISTRY)


def glycerol_water_mixture(weight_fraction: float, temperature: float = 293.15) -> Liquid:
    """Density/viscosity of a glycerol-water mixture by weight fraction.

    Density interpolates linearly between water and glycerol; viscosity
    follows the Cheng (2008) empirical correlation, accurate to a few
    percent over 0-100 % and 0-100 degC — good enough for damping studies.

    Parameters
    ----------
    weight_fraction:
        Glycerol mass fraction in [0, 1].
    temperature:
        Temperature [K].
    """
    import math

    from ..units import require_fraction, require_in_range

    cm = require_fraction("weight_fraction", weight_fraction)
    t_c = require_in_range("temperature", temperature, 273.15, 373.15) - 273.15

    rho_w = 1000.0 * (1.0 - ((t_c + 288.9414) / (508929.2 * (t_c + 68.12963)))
                      * (t_c - 3.9863) ** 2)
    rho_g = 1277.0 - 0.654 * t_c
    density = rho_g * cm + rho_w * (1.0 - cm)

    mu_w = 1.790e-3 * math.exp((-1230.0 - t_c) * t_c / (36100.0 + 360.0 * t_c))
    mu_g = 12.100 * math.exp((-1233.0 + t_c) * t_c / (9900.0 + 70.0 * t_c))
    a = 0.705 - 0.0017 * t_c
    b = (4.9 + 0.036 * t_c) * a**2.5
    alpha = (
        1.0
        - cm
        + (a * b * cm * (1.0 - cm)) / (a * cm + b * (1.0 - cm))
    )
    viscosity = mu_w**alpha * mu_g ** (1.0 - alpha)

    return Liquid(
        name=f"glycerol_{cm * 100.0:.0f}pct_custom",
        density=density,
        viscosity=viscosity,
    )
