"""Anisotropic crystalline silicon: stiffness and piezoresistance.

The released cantilever of the paper is crystalline silicon whose
thickness is set by the n-well electrochemical etch-stop.  Standard CMOS
wafers are (100)-oriented with the flat along <110>, and KOH-defined
cantilevers point along <110>.  Both the Young's modulus relevant to the
beam and the piezoresistive response of the diffused bridge resistors
therefore depend on crystal direction; this module evaluates both from
the elastic compliances and the fundamental piezoresistive coefficients.

References used for constants: Hall (1967) elastic constants;
Smith (1954) piezoresistive coefficients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import UnitError

# Elastic compliances of silicon [1/Pa] (Hall 1967).
S11: float = 7.68e-12
S12: float = -2.14e-12
S44: float = 12.6e-12

# Smith (1954) room-temperature piezoresistive coefficients [1/Pa].
#: p-type silicon (the bridge resistors of the paper are p-diffusions in
#: the n-well cantilever, and the resonant bridge uses p-channel MOSFETs).
PI11_P: float = 6.6e-11
PI12_P: float = -1.1e-11
PI44_P: float = 138.1e-11

#: n-type silicon, for comparison studies.
PI11_N: float = -102.2e-11
PI12_N: float = 53.4e-11
PI44_N: float = -13.6e-11


def _direction_cosines(direction: tuple[float, float, float]) -> tuple[float, float, float]:
    norm = math.sqrt(sum(c * c for c in direction))
    if norm == 0.0:
        raise UnitError("crystal direction must be a non-zero vector")
    return tuple(c / norm for c in direction)  # type: ignore[return-value]


def youngs_modulus(direction: tuple[float, float, float]) -> float:
    """Young's modulus of silicon along an arbitrary crystal direction [Pa].

    Uses ``1/E = S11 - 2(S11 - S12 - S44/2)(l^2 m^2 + m^2 n^2 + n^2 l^2)``
    with (l, m, n) the direction cosines.

    >>> round(youngs_modulus((1, 1, 0)) / 1e9)  # <110>
    169
    """
    l, m, n = _direction_cosines(direction)
    anisotropy = S11 - S12 - S44 / 2.0
    inv_e = S11 - 2.0 * anisotropy * (l * l * m * m + m * m * n * n + n * n * l * l)
    return 1.0 / inv_e


@dataclass(frozen=True)
class PiezoCoefficients:
    """Longitudinal and transverse piezoresistive coefficients [1/Pa].

    ``pi_l`` relates resistance change to stress along the current
    direction, ``pi_t`` to in-plane stress perpendicular to it:
    ``dR/R = pi_l * sigma_l + pi_t * sigma_t``.
    """

    longitudinal: float
    transverse: float

    def fractional_resistance_change(
        self, sigma_longitudinal: float, sigma_transverse: float = 0.0
    ) -> float:
        """``dR/R`` for the given in-plane stress components [Pa]."""
        return (
            self.longitudinal * sigma_longitudinal
            + self.transverse * sigma_transverse
        )


def piezo_coefficients(
    direction: str = "<110>", carrier: str = "p"
) -> PiezoCoefficients:
    """Piezoresistive coefficients for a resistor along a crystal direction.

    Parameters
    ----------
    direction:
        ``"<110>"`` (the usual CMOS layout orientation) or ``"<100>"``.
    carrier:
        ``"p"`` for p-type diffusions / PMOS channels (the paper's choice),
        ``"n"`` for n-type.

    Notes
    -----
    For <110> resistors on a (100) wafer:
    ``pi_l = (pi11 + pi12 + pi44)/2``, ``pi_t = (pi11 + pi12 - pi44)/2``.
    For <100>: ``pi_l = pi11``, ``pi_t = pi12``.  For p-type silicon
    ``pi44`` dominates, giving the familiar ``pi_l ~ +pi44/2``,
    ``pi_t ~ -pi44/2`` of <110> p-resistors.
    """
    if carrier == "p":
        pi11, pi12, pi44 = PI11_P, PI12_P, PI44_P
    elif carrier == "n":
        pi11, pi12, pi44 = PI11_N, PI12_N, PI44_N
    else:
        raise UnitError(f"carrier must be 'p' or 'n', got {carrier!r}")

    if direction == "<110>":
        return PiezoCoefficients(
            longitudinal=(pi11 + pi12 + pi44) / 2.0,
            transverse=(pi11 + pi12 - pi44) / 2.0,
        )
    if direction == "<100>":
        return PiezoCoefficients(longitudinal=pi11, transverse=pi12)
    raise UnitError(f"direction must be '<110>' or '<100>', got {direction!r}")


def gauge_factor(direction: str = "<110>", carrier: str = "p") -> float:
    """Longitudinal strain gauge factor ``(dR/R)/epsilon`` [-].

    The gauge factor is the longitudinal piezoresistive coefficient times
    the Young's modulus along the same direction; for <110> p-type silicon
    it comes out near 120, far above the ~2 of metal gauges — the reason
    integrated piezoresistive readout works at all.
    """
    coeffs = piezo_coefficients(direction, carrier)
    axis = (1, 1, 0) if direction == "<110>" else (1, 0, 0)
    return coeffs.longitudinal * youngs_modulus(axis)
