"""Solid material property database.

The cantilevers in the paper are composite stacks released from a 0.8 um
double-poly double-metal CMOS process: crystalline silicon (defined by the
n-well electrochemical etch-stop), thermal/deposited oxides, nitride
passivation, polysilicon, and aluminium metallization.  This module holds
the isotropic engineering properties of those layers; anisotropic
crystalline-silicon detail (orientation-dependent stiffness and the
piezoresistive tensor) lives in :mod:`repro.materials.silicon`.

All properties are SI:  Young's modulus in Pa, density in kg/m^3,
thermal expansion in 1/K, resistivity in Ohm*m.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MaterialError
from ..units import require_positive, require_in_range


@dataclass(frozen=True)
class Material:
    """Isotropic engineering properties of a thin-film or bulk material.

    Parameters
    ----------
    name:
        Unique key used to look the material up in the registry.
    youngs_modulus:
        Young's modulus ``E`` [Pa].
    density:
        Mass density ``rho`` [kg/m^3].
    poisson_ratio:
        Poisson's ratio ``nu`` [-]; must lie in (-1, 0.5).
    thermal_expansion:
        Linear coefficient of thermal expansion [1/K].
    resistivity:
        Electrical resistivity [Ohm*m]; ``None`` for insulators where the
        value is irrelevant to the models in this library.
    intrinsic_stress:
        Typical as-deposited residual film stress [Pa]; positive = tensile.
    thermal_conductivity:
        Thermal conductivity [W/(m K)]; 0 when unused.
    specific_heat:
        Specific heat capacity [J/(kg K)]; 0 when unused.
    """

    name: str
    youngs_modulus: float
    density: float
    poisson_ratio: float
    thermal_expansion: float = 0.0
    resistivity: float | None = None
    intrinsic_stress: float = 0.0
    thermal_conductivity: float = 0.0
    specific_heat: float = 0.0

    def __post_init__(self) -> None:
        require_positive("youngs_modulus", self.youngs_modulus)
        require_positive("density", self.density)
        require_in_range("poisson_ratio", self.poisson_ratio, -0.999, 0.4999)
        if self.resistivity is not None:
            require_positive("resistivity", self.resistivity)

    @property
    def biaxial_modulus(self) -> float:
        """Biaxial modulus ``E / (1 - nu)`` [Pa], used in Stoney bending."""
        return self.youngs_modulus / (1.0 - self.poisson_ratio)

    @property
    def plate_modulus(self) -> float:
        """Plate modulus ``E / (1 - nu^2)`` [Pa], for wide beams."""
        return self.youngs_modulus / (1.0 - self.poisson_ratio**2)


def _builtin_materials() -> dict[str, Material]:
    return {
        m.name: m
        for m in (
            # Crystalline silicon: <110> in-plane direction of a (100) wafer,
            # the orientation of KOH-released CMOS cantilevers.
            Material(
                name="silicon",
                youngs_modulus=169e9,
                density=2329.0,
                poisson_ratio=0.064,
                thermal_expansion=2.6e-6,
                resistivity=1e-1,
                thermal_conductivity=150.0,
                specific_heat=700.0,
            ),
            # <100> in-plane direction, for comparison studies.
            Material(
                name="silicon_100",
                youngs_modulus=130e9,
                density=2329.0,
                poisson_ratio=0.28,
                thermal_expansion=2.6e-6,
                resistivity=1e-1,
            ),
            Material(
                name="silicon_dioxide",
                youngs_modulus=70e9,
                density=2200.0,
                poisson_ratio=0.17,
                thermal_expansion=0.5e-6,
                intrinsic_stress=-300e6,  # thermal oxide is compressive
            ),
            Material(
                name="silicon_nitride",
                youngs_modulus=250e9,
                density=3100.0,
                poisson_ratio=0.23,
                thermal_expansion=3.3e-6,
                intrinsic_stress=1000e6,  # LPCVD nitride is tensile
            ),
            Material(
                name="polysilicon",
                youngs_modulus=160e9,
                density=2320.0,
                poisson_ratio=0.22,
                thermal_expansion=2.8e-6,
                resistivity=1e-5,  # heavily doped gate poly
            ),
            Material(
                name="aluminum",
                youngs_modulus=70e9,
                density=2700.0,
                poisson_ratio=0.35,
                thermal_expansion=23.1e-6,
                resistivity=2.82e-8,
                intrinsic_stress=100e6,
            ),
            Material(
                name="gold",
                youngs_modulus=79e9,
                density=19300.0,
                poisson_ratio=0.44,
                thermal_expansion=14.2e-6,
                resistivity=2.44e-8,
            ),
            Material(
                name="titanium",
                youngs_modulus=116e9,
                density=4506.0,
                poisson_ratio=0.32,
                thermal_expansion=8.6e-6,
                resistivity=4.2e-7,
            ),
        )
    }


_REGISTRY: dict[str, Material] = _builtin_materials()


def get_material(name: str) -> Material:
    """Look up a material by name.

    Raises
    ------
    MaterialError
        If the name is unknown; the message lists the available names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MaterialError(f"unknown material {name!r}; known: {known}") from None


def register_material(material: Material, *, overwrite: bool = False) -> None:
    """Add a user-defined material to the registry.

    Parameters
    ----------
    material:
        The material to add.
    overwrite:
        Allow replacing an existing entry with the same name.
    """
    if material.name in _REGISTRY and not overwrite:
        raise MaterialError(
            f"material {material.name!r} already registered; pass overwrite=True"
        )
    _REGISTRY[material.name] = material


def list_materials() -> list[str]:
    """Names of all registered materials, sorted."""
    return sorted(_REGISTRY)
