"""Material and liquid property databases."""

from .database import Material, get_material, list_materials, register_material
from .liquids import (
    AIR,
    Liquid,
    get_liquid,
    glycerol_water_mixture,
    list_liquids,
    register_liquid,
)
from .silicon import (
    PiezoCoefficients,
    gauge_factor,
    piezo_coefficients,
    youngs_modulus,
)

__all__ = [
    "AIR",
    "Liquid",
    "Material",
    "PiezoCoefficients",
    "gauge_factor",
    "get_liquid",
    "get_material",
    "glycerol_water_mixture",
    "list_liquids",
    "list_materials",
    "piezo_coefficients",
    "register_liquid",
    "register_material",
    "youngs_modulus",
]
