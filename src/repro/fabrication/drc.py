"""Design-rule checking for the three post-CMOS mask layers.

The paper's cost argument rests on the added masks riding the standard
physical-design flow, "so that the physical design verification, e.g.,
design-rule checks, can be performed with respect to the CMOS layers".
This module is that deck: geometric rules connecting the three
micromachining masks to each other and to the CMOS layers (n-well,
metal2, pads).

Rules implemented:

* minimum width per mask (etch openings below a minimum don't clear);
* minimum spacing within a mask (ridges between openings collapse);
* enclosure: the dielectric-etch opening must enclose the silicon-etch
  trench (the silicon etch needs the dielectrics gone first);
* enclosure: the n-well must enclose the silicon-etch outline (the etch
  stop only exists under the well);
* keep-out: metal2 (and pads) must not lie inside the dielectric-etch
  window unless it is coil metal on the beam;
* backside window size: the KOH opening must be large enough for the
  sloped (111) sidewalls to reach the front with the required membrane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import DesignRuleViolation
from ..units import require_positive
from .etch import KOHEtch
from .layers import WAFER_THICKNESS
from .layout import (
    LAYER_NWELL,
    LAYER_METAL2,
    MASK_BACKSIDE_ETCH,
    MASK_DIELECTRIC_ETCH,
    MASK_SILICON_ETCH,
    Layout,
    Rect,
)


@dataclass(frozen=True)
class Violation:
    """One design-rule violation."""

    rule: str
    layer: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.rule}] {self.layer}: {self.message}"


@dataclass(frozen=True)
class DesignRule:
    """A named check over a layout."""

    name: str
    description: str
    check: Callable[[Layout], list[Violation]]


def _min_width_rule(layer: str, minimum: float) -> DesignRule:
    require_positive("minimum", minimum)

    def check(layout: Layout) -> list[Violation]:
        violations = []
        for i, shape in enumerate(layout.shapes(layer)):
            if shape.min_dimension < minimum:
                violations.append(
                    Violation(
                        rule=f"{layer}.min_width",
                        layer=layer,
                        message=(
                            f"shape {i} min dimension "
                            f"{shape.min_dimension * 1e6:.2f} um < "
                            f"{minimum * 1e6:.2f} um"
                        ),
                    )
                )
        return violations

    return DesignRule(
        name=f"{layer}.min_width",
        description=f"{layer} openings must be at least {minimum * 1e6:.1f} um wide",
        check=check,
    )


def _min_spacing_rule(layer: str, minimum: float) -> DesignRule:
    require_positive("minimum", minimum)

    def check(layout: Layout) -> list[Violation]:
        violations = []
        shapes = layout.shapes(layer)
        for i in range(len(shapes)):
            for j in range(i + 1, len(shapes)):
                # touching/overlapping shapes merge into one opening and
                # are legal; only a thin *ridge* between openings fails.
                gap = shapes[i].separation(shapes[j])
                if 0.0 < gap < minimum:
                    violations.append(
                        Violation(
                            rule=f"{layer}.min_spacing",
                            layer=layer,
                            message=(
                                f"shapes {i} and {j} spaced "
                                f"{gap * 1e6:.2f} um < {minimum * 1e6:.2f} um"
                            ),
                        )
                    )
        return violations

    return DesignRule(
        name=f"{layer}.min_spacing",
        description=f"{layer} shapes must be {minimum * 1e6:.1f} um apart",
        check=check,
    )


def _enclosure_rule(outer: str, inner: str, margin: float) -> DesignRule:
    def check(layout: Layout) -> list[Violation]:
        violations = []
        outers = layout.shapes(outer)
        for i, shape in enumerate(layout.shapes(inner)):
            enclosed = any(
                o.enclosure_of(shape) >= margin - 1e-12 for o in outers
            )
            if not enclosed:
                violations.append(
                    Violation(
                        rule=f"{outer}.encloses.{inner}",
                        layer=inner,
                        message=(
                            f"shape {i} not enclosed by any {outer} shape "
                            f"with margin {margin * 1e6:.2f} um"
                        ),
                    )
                )
        return violations

    return DesignRule(
        name=f"{outer}.encloses.{inner}",
        description=(
            f"every {inner} shape needs {margin * 1e6:.1f} um of {outer} around it"
        ),
        check=check,
    )


def _keepout_rule(mask: str, victim: str) -> DesignRule:
    def check(layout: Layout) -> list[Violation]:
        violations = []
        masks = layout.shapes(mask)
        for i, shape in enumerate(layout.shapes(victim)):
            for j, window in enumerate(masks):
                if window.intersects(shape):
                    violations.append(
                        Violation(
                            rule=f"{mask}.keepout.{victim}",
                            layer=victim,
                            message=(
                                f"{victim} shape {i} intersects {mask} window {j}; "
                                "unprotected metal is destroyed by the etch"
                            ),
                        )
                    )
        return violations

    return DesignRule(
        name=f"{mask}.keepout.{victim}",
        description=f"{victim} must stay outside {mask} windows",
        check=check,
    )


def _backside_window_rule(wafer_thickness: float) -> DesignRule:
    def membrane_of(opening: Rect) -> Rect | None:
        """Front-side membrane footprint of a backside opening."""
        try:
            w = KOHEtch.membrane_for_mask_opening(opening.width, wafer_thickness)
            h = KOHEtch.membrane_for_mask_opening(opening.height, wafer_thickness)
        except Exception:
            return None  # pit self-terminates before reaching the front
        cx, cy = opening.center
        return Rect.from_size(cx, cy, w, h)

    def check(layout: Layout) -> list[Violation]:
        violations = []
        membranes = [
            m
            for m in (
                membrane_of(o) for o in layout.shapes(MASK_BACKSIDE_ETCH)
            )
            if m is not None
        ]
        for i, shape in enumerate(layout.shapes(MASK_SILICON_ETCH)):
            if not any(m.contains(shape) for m in membranes):
                violations.append(
                    Violation(
                        rule="backside.window_size",
                        layer=MASK_SILICON_ETCH,
                        message=(
                            f"front-side etch shape {i} not covered by any "
                            "backside opening's membrane (54.74-degree "
                            "sidewalls shrink the opening by "
                            f"{2.0 * wafer_thickness / 1.414 * 1e6:.0f} um "
                            "per axis)"
                        ),
                    )
                )
        return violations

    return DesignRule(
        name="backside.window_size",
        description=(
            "every front-side etch shape must sit inside a KOH opening's "
            "projected membrane (54.74-degree sidewalls)"
        ),
        check=check,
    )


class RuleDeck:
    """An ordered collection of design rules."""

    def __init__(self, rules: Iterable[DesignRule]) -> None:
        self.rules = list(rules)

    def check(self, layout: Layout) -> list[Violation]:
        """All violations across all rules."""
        violations: list[Violation] = []
        for rule in self.rules:
            violations.extend(rule.check(layout))
        return violations

    def verify(self, layout: Layout) -> None:
        """Raise :class:`DesignRuleViolation` if anything fails."""
        violations = self.check(layout)
        if violations:
            raise DesignRuleViolation(violations)

    def rule_names(self) -> list[str]:
        """Names of all rules in the deck."""
        return [rule.name for rule in self.rules]


def post_cmos_rule_deck(
    wafer_thickness: float = WAFER_THICKNESS,
) -> RuleDeck:
    """The standard deck for the three added masks."""
    return RuleDeck(
        [
            _min_width_rule(MASK_SILICON_ETCH, 4e-6),
            _min_width_rule(MASK_DIELECTRIC_ETCH, 4e-6),
            _min_width_rule(MASK_BACKSIDE_ETCH, 100e-6),
            _min_spacing_rule(MASK_SILICON_ETCH, 4e-6),
            _min_spacing_rule(MASK_BACKSIDE_ETCH, 200e-6),
            _enclosure_rule(MASK_DIELECTRIC_ETCH, MASK_SILICON_ETCH, 2e-6),
            _enclosure_rule(LAYER_NWELL, MASK_SILICON_ETCH, 5e-6),
            _keepout_rule(MASK_DIELECTRIC_ETCH, LAYER_METAL2),
            _backside_window_rule(wafer_thickness),
        ]
    )


def cantilever_layout(
    length: float,
    width: float,
    trench_width: float = 20e-6,
    membrane_margin: float = 50e-6,
    wafer_thickness: float = WAFER_THICKNESS,
) -> Layout:
    """A DRC-clean layout for one cantilever.

    Builds the U-shaped outline trench (as its bounding frame), the
    dielectric window over it, the enclosing n-well, and a correctly
    sized backside opening — the reference pattern the DRC tests and
    the FIG3 bench use.
    """
    require_positive("length", length)
    require_positive("width", width)
    layout = Layout()

    # Outline trench: frame around the beam, open at the clamped (x=0) edge.
    t = trench_width
    layout.add(
        MASK_SILICON_ETCH, Rect(0.0, -width / 2.0 - t, length + t, -width / 2.0)
    )
    layout.add(
        MASK_SILICON_ETCH, Rect(0.0, width / 2.0, length + t, width / 2.0 + t)
    )
    layout.add(
        MASK_SILICON_ETCH,
        Rect(length, -width / 2.0 - t, length + t, width / 2.0 + t),
    )

    # Dielectric window encloses the whole moving structure.
    layout.add(
        MASK_DIELECTRIC_ETCH,
        Rect(-5e-6, -width / 2.0 - t - 5e-6, length + t + 5e-6, width / 2.0 + t + 5e-6),
    )

    # n-well covers the membrane with margin.
    layout.add(
        LAYER_NWELL,
        Rect(
            -membrane_margin,
            -width / 2.0 - t - membrane_margin,
            length + t + membrane_margin,
            width / 2.0 + t + membrane_margin,
        ),
    )

    # Backside opening sized for the sloped sidewalls.
    membrane_w = length + t + 2.0 * membrane_margin
    membrane_h = width + 2.0 * t + 2.0 * membrane_margin
    opening_w = KOHEtch.mask_opening_for_membrane(membrane_w, wafer_thickness)
    opening_h = KOHEtch.mask_opening_for_membrane(membrane_h, wafer_thickness)
    cx, cy = length / 2.0, 0.0
    layout.add(
        MASK_BACKSIDE_ETCH, Rect.from_size(cx, cy, opening_w, opening_h)
    )

    return layout
