"""Array-level layout: four cantilevers sharing one die (Fig. 4 system).

The single-beam layout of :func:`repro.fabrication.drc.cantilever_layout`
generalizes to the chip: four cantilevers in a row, each with its own
outline trench and dielectric window, and the key *array-level* decision
— one shared backside membrane versus four individual KOH pits.  The
54.74-degree sidewalls make individual pits expensive (each needs
~1.4 mm of die for a 0.7 mm membrane) and the spacing rule between
backside openings makes them *impossible* below a minimum pitch, so
real chips share one membrane; the generator supports both for the
trade-off bench.
"""

from __future__ import annotations

from ..errors import GeometryError
from ..units import require_positive
from .etch import KOHEtch
from .layers import WAFER_THICKNESS
from .layout import (
    LAYER_NWELL,
    MASK_BACKSIDE_ETCH,
    MASK_DIELECTRIC_ETCH,
    MASK_SILICON_ETCH,
    Layout,
    Rect,
)


def array_layout(
    length: float,
    width: float,
    count: int = 4,
    pitch: float | None = None,
    trench_width: float = 20e-6,
    membrane_margin: float = 50e-6,
    shared_membrane: bool = True,
    wafer_thickness: float = WAFER_THICKNESS,
) -> Layout:
    """Layout for a row of ``count`` cantilevers.

    Parameters
    ----------
    pitch:
        Beam-to-beam spacing [m]; defaults to ``width + 3 * trench_width``
        (adjacent dielectric windows just clear each other).
    shared_membrane:
        One backside opening for the whole row (the practical choice) or
        one KOH pit per beam (pedagogical, usually DRC-illegal below a
        large pitch).
    """
    require_positive("length", length)
    require_positive("width", width)
    if count < 1:
        raise GeometryError("array needs at least one cantilever")
    if pitch is None:
        pitch = width + 3.0 * trench_width
    require_positive("pitch", pitch)
    if pitch < width + 2.0 * trench_width:
        raise GeometryError(
            "pitch too small: adjacent outline trenches would merge"
        )

    layout = Layout()
    t = trench_width
    for i in range(count):
        y0 = i * pitch  # beam centreline
        # outline trench: two rails + tip bar, open at the clamp (x = 0)
        layout.add(
            MASK_SILICON_ETCH,
            Rect(0.0, y0 - width / 2.0 - t, length + t, y0 - width / 2.0),
        )
        layout.add(
            MASK_SILICON_ETCH,
            Rect(0.0, y0 + width / 2.0, length + t, y0 + width / 2.0 + t),
        )
        layout.add(
            MASK_SILICON_ETCH,
            Rect(length, y0 - width / 2.0 - t, length + t, y0 + width / 2.0 + t),
        )
        # per-beam dielectric window
        layout.add(
            MASK_DIELECTRIC_ETCH,
            Rect(
                -5e-6,
                y0 - width / 2.0 - t - 5e-6,
                length + t + 5e-6,
                y0 + width / 2.0 + t + 5e-6,
            ),
        )

    row_height = (count - 1) * pitch + width + 2.0 * t

    # n-well covers the whole membrane region
    layout.add(
        LAYER_NWELL,
        Rect(
            -membrane_margin,
            -width / 2.0 - t - membrane_margin,
            length + t + membrane_margin,
            (count - 1) * pitch + width / 2.0 + t + membrane_margin,
        ),
    )

    membrane_w = length + t + 2.0 * membrane_margin
    if shared_membrane:
        membrane_h = row_height + 2.0 * membrane_margin
        opening_w = KOHEtch.mask_opening_for_membrane(membrane_w, wafer_thickness)
        opening_h = KOHEtch.mask_opening_for_membrane(membrane_h, wafer_thickness)
        cy = (count - 1) * pitch / 2.0
        layout.add(
            MASK_BACKSIDE_ETCH,
            Rect.from_size(length / 2.0, cy, opening_w, opening_h),
        )
    else:
        membrane_h = width + 2.0 * t + 2.0 * membrane_margin
        opening_w = KOHEtch.mask_opening_for_membrane(membrane_w, wafer_thickness)
        opening_h = KOHEtch.mask_opening_for_membrane(membrane_h, wafer_thickness)
        for i in range(count):
            layout.add(
                MASK_BACKSIDE_ETCH,
                Rect.from_size(length / 2.0, i * pitch, opening_w, opening_h),
            )

    return layout


def die_area_for_array(layout: Layout, margin: float = 100e-6) -> float:
    """Die area [m^2] demanded by the layout's backside mask plus margin.

    The backside opening, not the beams, dominates the die budget — the
    quantity the shared-vs-individual membrane bench compares.
    """
    box = layout.bounding_box(MASK_BACKSIDE_ETCH)
    if box is None:
        raise GeometryError("layout has no backside opening")
    return (box.width + 2.0 * margin) * (box.height + 2.0 * margin)
