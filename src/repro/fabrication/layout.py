"""Rectangle-based layout primitives for the post-CMOS mask layers.

"The design of the three additional mask layers is completely integrated
in the physical design flow of the CMOS technology, so that the physical
design verification, e.g., design-rule checks, can be performed with
respect to the CMOS layers."

The three added masks are (1) the backside KOH etch window, (2) the
front-side dielectric-etch opening, and (3) the front-side silicon-etch
trench defining the cantilever outline.  The library models masks as
named sets of axis-aligned rectangles — enough to express every rule the
deck in :mod:`repro.fabrication.drc` checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError

#: Canonical names of the three post-CMOS masks.
MASK_BACKSIDE_ETCH = "backside_etch"
MASK_DIELECTRIC_ETCH = "dielectric_etch"
MASK_SILICON_ETCH = "silicon_etch"

#: CMOS layers the post-masks interact with in the DRC deck.
LAYER_NWELL = "nwell"
LAYER_METAL2 = "metal2"
LAYER_PAD = "pad"


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, coordinates in metres.

    ``(x0, y0)`` is the lower-left corner, ``(x1, y1)`` the upper-right.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise GeometryError(
                f"degenerate rectangle ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @property
    def width(self) -> float:
        """Extent along x [m]."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along y [m]."""
        return self.y1 - self.y0

    @property
    def min_dimension(self) -> float:
        """Smaller of width and height [m]."""
        return min(self.width, self.height)

    @property
    def area(self) -> float:
        """Area [m^2]."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point (x, y)."""
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def intersects(self, other: "Rect") -> bool:
        """True when the interiors overlap (edge contact is not overlap)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside (or on the edge of) self."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def enclosure_of(self, other: "Rect") -> float:
        """Smallest margin by which self encloses ``other`` [m].

        Negative when ``other`` pokes out on some side.
        """
        return min(
            other.x0 - self.x0,
            other.y0 - self.y0,
            self.x1 - other.x1,
            self.y1 - other.y1,
        )

    def separation(self, other: "Rect") -> float:
        """Gap between two rectangles [m]; 0 when they touch or overlap."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return (dx**2 + dy**2) ** 0.5

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    @classmethod
    def from_size(
        cls, center_x: float, center_y: float, width: float, height: float
    ) -> "Rect":
        """Construct from centre and dimensions."""
        return cls(
            center_x - width / 2.0,
            center_y - height / 2.0,
            center_x + width / 2.0,
            center_y + height / 2.0,
        )


class Layout:
    """Named mask layers, each a list of rectangles."""

    def __init__(self) -> None:
        self._layers: dict[str, list[Rect]] = {}

    def add(self, layer: str, rect: Rect) -> None:
        """Add a shape to a mask layer."""
        self._layers.setdefault(layer, []).append(rect)

    def shapes(self, layer: str) -> list[Rect]:
        """Shapes on a layer (empty list when the layer is unused)."""
        return list(self._layers.get(layer, []))

    def layer_names(self) -> list[str]:
        """All populated layer names, sorted."""
        return sorted(self._layers)

    def bounding_box(self, layer: str) -> Rect | None:
        """Bounding box of a layer, or ``None`` when empty."""
        shapes = self.shapes(layer)
        if not shapes:
            return None
        return Rect(
            min(s.x0 for s in shapes),
            min(s.y0 for s in shapes),
            max(s.x1 for s in shapes),
            max(s.y1 for s in shapes),
        )
