"""CMOS process stack, post-CMOS micromachining, release, and DRC."""

from .drc import (
    DesignRule,
    RuleDeck,
    Violation,
    cantilever_layout,
    post_cmos_rule_deck,
)
from .etch import KOHEtch, RIEStep, dielectric_release_etch, silicon_release_etch
from .layers import (
    NWELL_DEPTH,
    WAFER_THICKNESS,
    LayerRole,
    ProcessLayer,
    WaferCrossSection,
    cmos_08um_stack,
)
from .layout import (
    LAYER_METAL2,
    LAYER_NWELL,
    MASK_BACKSIDE_ETCH,
    MASK_DIELECTRIC_ETCH,
    MASK_SILICON_ETCH,
    Layout,
    Rect,
)
from .array_layout import array_layout, die_area_for_array
from .process import PostCMOSFlow, PostProcessResult
from .variation import (
    ProcessCorners,
    VariationResult,
    expected_frequency_spread,
    monte_carlo_devices,
    spec_window_for_yield,
    yield_fraction,
)
from .release import ReleasedCantilever, fabricate_cantilever, stack_from_cross_section

__all__ = [
    "DesignRule",
    "KOHEtch",
    "LAYER_METAL2",
    "LAYER_NWELL",
    "LayerRole",
    "Layout",
    "MASK_BACKSIDE_ETCH",
    "MASK_DIELECTRIC_ETCH",
    "MASK_SILICON_ETCH",
    "NWELL_DEPTH",
    "PostCMOSFlow",
    "PostProcessResult",
    "ProcessCorners",
    "VariationResult",
    "expected_frequency_spread",
    "monte_carlo_devices",
    "spec_window_for_yield",
    "yield_fraction",
    "ProcessLayer",
    "RIEStep",
    "Rect",
    "ReleasedCantilever",
    "RuleDeck",
    "Violation",
    "WAFER_THICKNESS",
    "WaferCrossSection",
    "array_layout",
    "die_area_for_array",
    "cantilever_layout",
    "cmos_08um_stack",
    "dielectric_release_etch",
    "fabricate_cantilever",
    "post_cmos_rule_deck",
    "silicon_release_etch",
    "stack_from_cross_section",
]
