"""Etch-step models: backside KOH with electrochemical etch stop, and RIE.

"After completion of the CMOS process, a back-side anisotropic silicon
etch is performed using potassium hydroxide (KOH) together with an
electro-chemical etch-stop.  The pn-junction for this etch-stop is
defined by the n-well diffusion layer of the CMOS-technology, providing
a well-defined thickness of the crystalline silicon layer forming the
cantilever.  The cantilever is released by two successive anisotropic
front-side dry etch steps, which remove the dielectric layers and the
bulk silicon, respectively."

Models here:

* **KOH etch** — (100) etch rate with Arrhenius temperature dependence,
  the 54.74-degree (111) sidewall geometry relating backside mask
  opening to the membrane size on the front, and the electrochemical
  etch stop that halts at the n-well junction.
* **RIE steps** — role-selective removal: step 1 takes the dielectric/
  passivation stack inside its mask, step 2 takes the exposed silicon
  membrane around the cantilever outline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import KOH_SIDEWALL_ANGLE_DEG
from ..errors import FabricationError
from ..units import require_positive
from .layers import LayerRole, WaferCrossSection


@dataclass(frozen=True)
class KOHEtch:
    """Anisotropic KOH etching of (100) silicon.

    Parameters
    ----------
    concentration_percent:
        KOH weight concentration (controls rate/roughness trade-off);
        30 % is the classic micromachining point.
    temperature:
        Bath temperature [K].
    """

    concentration_percent: float = 30.0
    temperature: float = 363.15  # 90 degC

    #: Arrhenius parameters for the (100) rate, calibrated to the classic
    #: Seidel-era operating point: 1.40 um/min at 90 degC / 30 wt%.
    _rate_prefactor: float = 4.27  # m/s
    _activation_energy_ev: float = 0.595

    def __post_init__(self) -> None:
        if not 10.0 <= self.concentration_percent <= 60.0:
            raise FabricationError(
                "KOH concentration must be 10-60 wt% for the rate model"
            )
        require_positive("temperature", self.temperature)

    @property
    def rate_100(self) -> float:
        """(100) etch rate [m/s] at the configured bath conditions.

        Arrhenius in temperature; the concentration dependence (weak and
        non-monotonic) is folded in as the standard ``c^(1/4) (1 - c)``
        shape normalized to the 30 % reference.
        """
        kb_ev = 8.617333262e-5
        arrhenius = math.exp(
            -self._activation_energy_ev / (kb_ev * self.temperature)
        )
        c = self.concentration_percent / 100.0
        c_ref = 0.30
        shape = (c**0.25 * (1.0 - c)) / (c_ref**0.25 * (1.0 - c_ref))
        return self._rate_prefactor * arrhenius * shape

    @property
    def anisotropy(self) -> float:
        """(100)/(111) rate ratio (~400 for 30 % KOH)."""
        return 400.0

    def etch_time(self, depth: float) -> float:
        """Time [s] to reach a given depth on (100)."""
        require_positive("depth", depth)
        return depth / self.rate_100

    def sidewall_undercut(self, depth: float) -> float:
        """Lateral (111) undercut at a mask edge after etching ``depth`` [m]."""
        require_positive("depth", depth)
        return depth / self.anisotropy

    @staticmethod
    def mask_opening_for_membrane(membrane_size: float, etch_depth: float) -> float:
        """Backside mask opening [m] for a target front-side membrane size.

        The (111) sidewalls slope inward at 54.74 degrees, so the opening
        must exceed the membrane by ``2 * depth / tan(54.74 deg)`` —
        almost 1.5x the wafer thickness in total.  This is the rule the
        DRC deck checks on the backside-etch mask.
        """
        require_positive("membrane_size", membrane_size)
        require_positive("etch_depth", etch_depth)
        slope = math.tan(math.radians(KOH_SIDEWALL_ANGLE_DEG))
        return membrane_size + 2.0 * etch_depth / slope

    @staticmethod
    def membrane_for_mask_opening(opening: float, etch_depth: float) -> float:
        """Front-side membrane size [m] from a backside opening.

        Raises when the opening is too small to reach the front at all
        (the pyramid self-terminates).
        """
        require_positive("opening", opening)
        require_positive("etch_depth", etch_depth)
        slope = math.tan(math.radians(KOH_SIDEWALL_ANGLE_DEG))
        membrane = opening - 2.0 * etch_depth / slope
        if membrane <= 0.0:
            raise FabricationError(
                f"backside opening {opening * 1e6:.1f} um self-terminates "
                f"before reaching the front at depth {etch_depth * 1e6:.1f} um"
            )
        return membrane

    def apply(self, section: WaferCrossSection) -> float:
        """Run the backside etch with electrochemical etch stop.

        Removes the substrate layer, leaving the n-well as the remaining
        crystalline silicon (the etch stop passivates the junction at the
        well).  Returns the etch time [s].

        Raises when there is no n-well in the stack — the etch-stop
        anode has nothing to hold and the etch would punch through.
        """
        names = section.layer_names()
        if "nwell" not in names:
            raise FabricationError(
                "electrochemical etch stop requires an n-well in the stack"
            )
        if "substrate" not in names:
            raise FabricationError("backside etch already performed")
        depth = section.find("substrate").thickness
        section.remove(
            ["substrate"],
            f"backside KOH etch ({self.concentration_percent:.0f} wt%, "
            f"{self.temperature - 273.15:.0f} degC) with electrochemical "
            "etch stop at the n-well junction",
        )
        return self.etch_time(depth)


@dataclass(frozen=True)
class RIEStep:
    """One anisotropic front-side dry etch.

    Parameters
    ----------
    name:
        Step label for the process history.
    target_roles:
        Which layer roles this chemistry attacks (everything else is a
        natural etch stop).
    """

    name: str
    target_roles: tuple[LayerRole, ...]

    def apply(self, section: WaferCrossSection) -> list[str]:
        """Etch all target-role layers from the cross-section.

        Returns the removed layer names.  Removing nothing raises:
        running an etch that touches nothing indicates the flow is out
        of order.
        """
        victims = [
            layer.name for layer in section.layers if layer.role in self.target_roles
        ]
        if not victims:
            raise FabricationError(
                f"RIE step {self.name!r} found no layers of roles "
                f"{[r.value for r in self.target_roles]} to remove"
            )
        section.remove(victims, f"front-side RIE: {self.name}")
        return victims


def dielectric_release_etch() -> RIEStep:
    """First dry etch: removes dielectrics, polysilicon, metal and
    passivation above the beam outline (everything that is not
    crystalline silicon)."""
    return RIEStep(
        name="dielectric etch (CHF3/O2)",
        target_roles=(
            LayerRole.DIELECTRIC,
            LayerRole.POLYSILICON,
            LayerRole.METAL,
            LayerRole.PASSIVATION,
        ),
    )


def silicon_release_etch() -> RIEStep:
    """Second dry etch: cuts the exposed membrane silicon, releasing the
    beam (at the beam site itself the silicon stays — this step acts on
    the *outline* trench, modeled as a neighbouring cross-section)."""
    return RIEStep(
        name="silicon etch (SF6)",
        target_roles=(LayerRole.WELL, LayerRole.SUBSTRATE),
    )
