"""Process variation: wafer-level spread of the released devices.

The electrochemical etch stop gives a "well-defined thickness", but
well-defined is not identical: the n-well drive-in varies a few percent
across a wafer, lithography biases the drawn length/width, and the KOH
bath temperature wanders.  This module Monte-Carlo-samples those knobs
through the full fabrication model and reports the resulting device
spread — resonant frequency, stiffness, static responsivity — the
numbers that decide whether devices need per-die calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..mechanics.beam import spring_constant
from ..mechanics.modal import natural_frequency
from ..mechanics.surface_stress import tip_deflection
from ..units import require_nonnegative, require_positive
from .process import PostCMOSFlow
from .release import fabricate_cantilever


@dataclass(frozen=True)
class ProcessCorners:
    """1-sigma fractional variations of the fabrication knobs.

    Defaults are representative of a 0.8 um-era process: the n-well
    depth (the thickness knob) at 3 %, lithographic length/width bias at
    0.2 % / 1 % of the drawn dimension.
    """

    nwell_depth_sigma: float = 0.03
    length_sigma: float = 0.002
    width_sigma: float = 0.01

    def __post_init__(self) -> None:
        require_nonnegative("nwell_depth_sigma", self.nwell_depth_sigma)
        require_nonnegative("length_sigma", self.length_sigma)
        require_nonnegative("width_sigma", self.width_sigma)


@dataclass
class VariationResult:
    """Monte-Carlo sample of device parameters across a wafer."""

    frequencies: np.ndarray
    spring_constants: np.ndarray
    static_responsivities: np.ndarray

    def frequency_spread_ppm(self) -> float:
        """1-sigma fractional frequency spread [ppm]."""
        return float(
            np.std(self.frequencies) / np.mean(self.frequencies) * 1e6
        )

    def summary(self) -> dict[str, float]:
        """Mean / sigma of every tracked parameter."""
        return {
            "f_mean_Hz": float(np.mean(self.frequencies)),
            "f_sigma_Hz": float(np.std(self.frequencies)),
            "f_spread_ppm": self.frequency_spread_ppm(),
            "k_mean_N_per_m": float(np.mean(self.spring_constants)),
            "k_sigma_N_per_m": float(np.std(self.spring_constants)),
            "resp_sigma_frac": float(
                np.std(self.static_responsivities)
                / np.mean(self.static_responsivities)
            ),
        }


def monte_carlo_devices(
    length: float,
    width: float,
    corners: ProcessCorners | None = None,
    samples: int = 100,
    seed: int = 2718,
    nominal_nwell: float = 5.0e-6,
) -> VariationResult:
    """Fabricate ``samples`` devices with randomized process knobs.

    Each sample runs the *full* flow (etch stop, release, geometry), so
    correlations between outputs are physical, not assumed.
    """
    require_positive("length", length)
    require_positive("width", width)
    if samples < 2:
        raise ValueError("need at least 2 Monte-Carlo samples")
    corners = corners or ProcessCorners()
    rng = np.random.default_rng(seed)

    frequencies = np.empty(samples)
    ks = np.empty(samples)
    responsivities = np.empty(samples)
    for i in range(samples):
        depth = nominal_nwell * (
            1.0 + corners.nwell_depth_sigma * rng.standard_normal()
        )
        l_i = length * (1.0 + corners.length_sigma * rng.standard_normal())
        w_i = width * (1.0 + corners.width_sigma * rng.standard_normal())
        device = fabricate_cantilever(
            l_i, w_i, PostCMOSFlow(nwell_depth=max(depth, 0.5e-6))
        )
        frequencies[i] = natural_frequency(device.geometry)
        ks[i] = spring_constant(device.geometry)
        responsivities[i] = abs(tip_deflection(device.geometry, 1e-3))

    return VariationResult(
        frequencies=frequencies,
        spring_constants=ks,
        static_responsivities=responsivities,
    )


def yield_fraction(
    result: VariationResult,
    f_low: float,
    f_high: float,
) -> float:
    """Fraction of sampled devices whose f1 lands inside a spec window.

    The practical question behind EXT3: if the loop's lock range (or a
    shared reference oscillator plan) demands the resonance within
    [f_low, f_high], what does the process deliver?
    """
    if f_high <= f_low:
        raise ValueError("need f_high > f_low")
    inside = np.logical_and(
        result.frequencies >= f_low, result.frequencies <= f_high
    )
    return float(np.mean(inside))


def spec_window_for_yield(
    result: VariationResult, target_yield: float = 0.95
) -> tuple[float, float]:
    """Symmetric frequency window around the mean that captures the target.

    Returns (f_low, f_high); the spec a test-floor engineer would write
    down from the Monte-Carlo data.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target_yield must be in (0, 1]")
    mean = float(np.mean(result.frequencies))
    deviations = np.sort(np.abs(result.frequencies - mean))
    index = min(
        int(math.ceil(target_yield * len(deviations))) - 1,
        len(deviations) - 1,
    )
    half = float(deviations[max(index, 0)])
    return (mean - half, mean + half)


def expected_frequency_spread(
    corners: ProcessCorners | None = None,
) -> float:
    """First-order fractional frequency spread from the corner sigmas.

    ``f ~ t / L^2`` gives
    ``sigma_f/f = sqrt(sigma_t^2 + (2 sigma_L)^2)`` (width cancels);
    the analytic check the Monte Carlo must agree with.
    """
    corners = corners or ProcessCorners()
    return float(
        np.sqrt(
            corners.nwell_depth_sigma**2 + (2.0 * corners.length_sigma) ** 2
        )
    )
