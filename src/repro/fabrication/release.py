"""From process flow to mechanical cantilever geometry.

The bridge between fabrication and mechanics: run the post-CMOS flow,
convert the surviving beam-site layers into a
:class:`~repro.mechanics.composite.LayerStack`, and attach the drawn
lateral dimensions to produce the :class:`CantileverGeometry` every
downstream model consumes.  This is the library's answer to "the n-well
diffusion layer ... providing a well-defined thickness of the
crystalline silicon layer forming the cantilever".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FabricationError
from ..mechanics.composite import Layer, LayerStack
from ..mechanics.geometry import CantileverGeometry
from ..units import require_positive
from .etch import KOHEtch
from .layers import LayerRole, WaferCrossSection
from .process import PostCMOSFlow, PostProcessResult


def stack_from_cross_section(section: WaferCrossSection) -> LayerStack:
    """Convert a processed cross-section into a mechanical layer stack.

    Raises when bulk substrate is still present (the backside etch has
    not run — a 525 um "cantilever" is a die, not a beam).
    """
    roles = [layer.role for layer in section.layers]
    if LayerRole.SUBSTRATE in roles:
        raise FabricationError(
            "cross-section still contains bulk substrate; run the backside "
            "etch before deriving beam mechanics"
        )
    return LayerStack(
        [
            Layer(material=layer.material, thickness=layer.thickness)
            for layer in section.layers
        ]
    )


@dataclass(frozen=True)
class ReleasedCantilever:
    """A fabricated cantilever: geometry plus its fabrication record."""

    geometry: CantileverGeometry
    process: PostProcessResult
    backside_opening: float

    @property
    def silicon_thickness(self) -> float:
        """Thickness of the crystalline-silicon layer [m]."""
        for layer in self.process.beam_site.layers:
            if layer.role == LayerRole.WELL:
                return layer.thickness
        raise FabricationError("released beam has no crystalline silicon")


def fabricate_cantilever(
    length: float,
    width: float,
    flow: PostCMOSFlow | None = None,
    membrane_margin: float = 50e-6,
) -> ReleasedCantilever:
    """Run the full post-CMOS flow and return the released cantilever.

    Parameters
    ----------
    length / width:
        Drawn cantilever dimensions [m].
    flow:
        Process recipe; defaults to the bare-silicon-beam flow with the
        standard 5 um n-well.
    membrane_margin:
        Extra membrane clearance around the beam on each side [m], used
        to size the backside mask opening.

    Raises
    ------
    FabricationError
        If the trench failed to clear (beam not released).
    """
    require_positive("length", length)
    require_positive("width", width)
    require_positive("membrane_margin", membrane_margin)
    flow = flow or PostCMOSFlow()

    result = flow.run()
    if not result.released:
        raise FabricationError("outline trench did not clear; beam not released")

    stack = stack_from_cross_section(result.beam_site)
    geometry = CantileverGeometry(length=length, width=width, stack=stack)

    etch_depth = result.before.find("substrate").thickness
    membrane_size = max(length, width) + 2.0 * membrane_margin
    opening = KOHEtch.mask_opening_for_membrane(membrane_size, etch_depth)

    return ReleasedCantilever(
        geometry=geometry, process=result, backside_opening=opening
    )
