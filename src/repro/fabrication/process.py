"""The post-CMOS micromachining flow (Fig. 3).

Runs the three post-CMOS steps on wafer cross-sections and reports the
before/after states the paper's Figure 3 sketches:

1. backside KOH etch with electrochemical etch stop (wafer-level),
2. front-side RIE of the dielectric stack over the cantilever,
3. front-side RIE of the membrane silicon around the outline.

Two lateral sites are tracked: the **beam site** (becomes the released
cantilever: silicon, optionally with retained dielectrics for a
passivated variant) and the **trench site** (the outline around the
beam, which must clear completely for the beam to be free).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import require_positive
from .etch import KOHEtch, dielectric_release_etch, silicon_release_etch
from .layers import (
    LayerRole,
    ProcessLayer,
    WaferCrossSection,
    cmos_08um_stack,
)


@dataclass
class PostProcessResult:
    """Everything the post-CMOS flow produced.

    Attributes
    ----------
    before:
        The as-fabricated CMOS cross-section at the beam site.
    beam_site:
        Cross-section at the cantilever after all steps.
    trench_site:
        Cross-section at the outline trench (must be empty of silicon).
    koh_time:
        Duration of the backside etch [s].
    released:
        True when the trench cleared and a free beam exists.
    """

    before: WaferCrossSection
    beam_site: WaferCrossSection
    trench_site: WaferCrossSection
    koh_time: float
    released: bool


@dataclass(frozen=True)
class PostCMOSFlow:
    """The complete post-CMOS micromachining recipe.

    Parameters
    ----------
    koh:
        Backside etch configuration.
    keep_dielectrics_on_beam:
        When True, the first front-side etch spares the beam site
        (dielectrics stay on the cantilever — heavier, stiffer variant
        used when circuit layers must ride on the beam, e.g. the coil).
    nwell_depth:
        n-well junction depth [m]: the released silicon thickness.
    """

    koh: KOHEtch = field(default_factory=KOHEtch)
    keep_dielectrics_on_beam: bool = False
    nwell_depth: float = 5.0e-6

    def __post_init__(self) -> None:
        require_positive("nwell_depth", self.nwell_depth)

    def run(self) -> PostProcessResult:
        """Execute the flow on fresh cross-sections."""
        beam = WaferCrossSection(cmos_08um_stack(self.nwell_depth))
        before = beam.copy()
        trench = WaferCrossSection(cmos_08um_stack(self.nwell_depth))

        # Step 1: backside KOH (acts on the whole membrane region).
        koh_time = self.koh.apply(beam)
        self.koh.apply(trench)

        # Step 2: front-side dielectric RIE.
        dielectric_etch = dielectric_release_etch()
        dielectric_etch.apply(trench)
        if not self.keep_dielectrics_on_beam:
            dielectric_etch.apply(beam)

        # Step 3: front-side silicon RIE cuts the outline trench.
        silicon_release_etch().apply(trench)

        released = all(
            layer.role not in (LayerRole.WELL, LayerRole.SUBSTRATE)
            for layer in trench.layers
        ) if trench.layers else True

        return PostProcessResult(
            before=before,
            beam_site=beam,
            trench_site=trench,
            koh_time=koh_time,
            released=released,
        )
