"""The 0.8 um double-poly double-metal CMOS layer stack.

"The cantilever-based biosensors are fabricated in a standard 0.8 um
double-poly, double-metal CMOS process with post-CMOS micromachining."

This module describes that process's vertical structure at the future
cantilever site: bulk p-substrate, the n-well whose junction depth will
define the beam thickness via the electrochemical etch stop, and the
full dielectric/poly/metal back end.  The post-processing steps of
:mod:`repro.fabrication.process` transform this stack; the released
result feeds :class:`repro.mechanics.CantileverGeometry` directly.

Thicknesses are representative of a 0.8 um-era industrial CMOS process
(cf. the paper's ref [2], the ETH/austriamicrosystems process family).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import FabricationError
from ..materials import Material, get_material
from ..units import require_positive


class LayerRole(enum.Enum):
    """What a process layer does — drives which etch steps attack it."""

    SUBSTRATE = "substrate"
    WELL = "well"
    DIELECTRIC = "dielectric"
    POLYSILICON = "polysilicon"
    METAL = "metal"
    PASSIVATION = "passivation"


@dataclass(frozen=True)
class ProcessLayer:
    """One layer of the as-fabricated wafer cross-section.

    Parameters
    ----------
    name:
        Process name ("nwell", "metal1", ...).
    material:
        Physical material (registry name or object).
    thickness:
        Layer thickness [m].
    role:
        Functional role, used by the etch models.
    """

    name: str
    material: Material
    thickness: float
    role: LayerRole

    def __post_init__(self) -> None:
        if isinstance(self.material, str):
            object.__setattr__(self, "material", get_material(self.material))
        require_positive("thickness", self.thickness)


#: Wafer (substrate) thickness of a 100 mm-era wafer [m].
WAFER_THICKNESS: float = 525e-6

#: Metallurgical n-well junction depth [m] — the electrochemical
#: etch-stop plane, hence the released silicon beam thickness.
NWELL_DEPTH: float = 5.0e-6


def cmos_08um_stack(nwell_depth: float = NWELL_DEPTH) -> list[ProcessLayer]:
    """The full cross-section at the cantilever site, bottom to top.

    The n-well is carved out of the top of the substrate: substrate
    thickness is reduced accordingly so the total equals
    ``WAFER_THICKNESS`` below the dielectrics.
    """
    require_positive("nwell_depth", nwell_depth)
    if nwell_depth >= WAFER_THICKNESS:
        raise FabricationError("n-well depth cannot exceed the wafer thickness")
    return [
        ProcessLayer(
            name="substrate",
            material=get_material("silicon"),
            thickness=WAFER_THICKNESS - nwell_depth,
            role=LayerRole.SUBSTRATE,
        ),
        ProcessLayer(
            name="nwell",
            material=get_material("silicon"),
            thickness=nwell_depth,
            role=LayerRole.WELL,
        ),
        ProcessLayer(
            name="field_oxide",
            material=get_material("silicon_dioxide"),
            thickness=0.6e-6,
            role=LayerRole.DIELECTRIC,
        ),
        ProcessLayer(
            name="poly1",
            material=get_material("polysilicon"),
            thickness=0.3e-6,
            role=LayerRole.POLYSILICON,
        ),
        ProcessLayer(
            name="interpoly_oxide",
            material=get_material("silicon_dioxide"),
            thickness=0.08e-6,
            role=LayerRole.DIELECTRIC,
        ),
        ProcessLayer(
            name="poly2",
            material=get_material("polysilicon"),
            thickness=0.3e-6,
            role=LayerRole.POLYSILICON,
        ),
        ProcessLayer(
            name="ild_oxide",
            material=get_material("silicon_dioxide"),
            thickness=0.9e-6,
            role=LayerRole.DIELECTRIC,
        ),
        ProcessLayer(
            name="metal1",
            material=get_material("aluminum"),
            thickness=0.6e-6,
            role=LayerRole.METAL,
        ),
        ProcessLayer(
            name="imd_oxide",
            material=get_material("silicon_dioxide"),
            thickness=1.0e-6,
            role=LayerRole.DIELECTRIC,
        ),
        ProcessLayer(
            name="metal2",
            material=get_material("aluminum"),
            thickness=1.0e-6,
            role=LayerRole.METAL,
        ),
        ProcessLayer(
            name="passivation",
            material=get_material("silicon_nitride"),
            thickness=1.0e-6,
            role=LayerRole.PASSIVATION,
        ),
    ]


class WaferCrossSection:
    """Mutable layer stack at one lateral site, transformed by etch steps."""

    def __init__(self, layers: list[ProcessLayer]) -> None:
        if not layers:
            raise FabricationError("a cross-section needs at least one layer")
        self._layers = list(layers)
        self._history: list[str] = ["as-fabricated CMOS stack"]

    @property
    def layers(self) -> tuple[ProcessLayer, ...]:
        """Layers bottom-to-top."""
        return tuple(self._layers)

    @property
    def history(self) -> tuple[str, ...]:
        """Applied process steps, in order."""
        return tuple(self._history)

    @property
    def total_thickness(self) -> float:
        """Stack thickness [m]."""
        return sum(layer.thickness for layer in self._layers)

    def layer_names(self) -> list[str]:
        """Layer names, bottom-to-top."""
        return [layer.name for layer in self._layers]

    def find(self, name: str) -> ProcessLayer:
        """Look up a layer by name; raises if absent (e.g. already etched)."""
        for layer in self._layers:
            if layer.name == name:
                return layer
        raise FabricationError(f"layer {name!r} not present in the stack")

    def remove(self, names: list[str], step_label: str) -> None:
        """Etch away the named layers (ignoring already-absent ones).

        The stack may end up empty — that is a through-hole, which is
        exactly what the outline trench around the beam must become.
        """
        self._layers = [l for l in self._layers if l.name not in names]
        self._history.append(step_label)

    def thin(self, name: str, new_thickness: float, step_label: str) -> None:
        """Reduce a layer's thickness (partial etch)."""
        require_positive("new_thickness", new_thickness)
        layer = self.find(name)
        if new_thickness > layer.thickness:
            raise FabricationError(
                f"cannot thin {name!r} from {layer.thickness:.3g} m to "
                f"{new_thickness:.3g} m (growth is not etching)"
            )
        index = self._layers.index(layer)
        self._layers[index] = ProcessLayer(
            name=layer.name,
            material=layer.material,
            thickness=new_thickness,
            role=layer.role,
        )
        self._history.append(step_label)

    def describe(self) -> str:
        """Human-readable cross-section, bottom to top."""
        lines = [f"cross-section ({len(self._layers)} layers):"]
        for layer in self._layers:
            lines.append(
                f"  {layer.name:<16s} {layer.material.name:<16s} "
                f"{layer.thickness * 1e6:9.3f} um  [{layer.role.value}]"
            )
        lines.append(f"  total: {self.total_thickness * 1e6:.3f} um")
        return "\n".join(lines)

    def copy(self) -> "WaferCrossSection":
        """Independent copy (for before/after comparisons)."""
        clone = WaferCrossSection(list(self._layers))
        clone._history = list(self._history)
        return clone
