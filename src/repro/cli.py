"""Command-line interface: `python -m repro.cli <command>`.

Gives the library a tool face for quick, scriptable use:

* ``info``         — reference-device datasheet (geometry, modes, bridges)
* ``fabricate``    — run the post-CMOS flow, print before/after + DRC
* ``characterize`` — swept-sine bring-up of the resonant beam in a liquid
* ``assay``        — run a static immunoassay and print the trace
* ``track``        — run a resonant tracking assay and print the trace
* ``sweep``        — spec-path sweep of the closed loop (``--batch`` runs
  the whole grid as one batched kernel call; ``--retries``/``--timeout``
  arm the resilient executor)
* ``health``       — execution-engine health: kernel backend state,
  circuit breakers, degrade counters, optional cache integrity scan
  (``--json`` prints the machine-readable snapshot probes consume)
* ``serve``        — run the simulation service: durable SQLite job
  store + HTTP API (``--port 0`` binds an ephemeral port and prints it)
* ``submit``       — submit a sweep to a running service (``--wait``
  polls to completion and prints the result table)
* ``status``       — one job's status, or the job listing without an id
* ``results``      — fetch a finished job's sweep table
* ``cancel``       — request cancellation of a queued/running job

Every command is rooted in a reference device spec
(:data:`~repro.config.REFERENCE_STATIC_SENSOR` or
:data:`~repro.config.REFERENCE_RESONANT_SENSOR`).  The legacy
``--length/--width`` (um) flags still work and map onto spec fields; any
spec field is reachable through the generic override flag::

    repro assay --set cantilever.length_um=350 --set bridge.mismatch_sigma=0.001

``--set`` accepts dotted spec paths (see ``docs/CONFIG.md``), may be
repeated, and wins over the dedicated flags.  Output is plain text, one
value per line where scripts want to parse it.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from .config.reference import (
    REFERENCE_CANTILEVER,
    REFERENCE_PROCESS,
    REFERENCE_RESONANT_BRIDGE,
    REFERENCE_RESONANT_SENSOR,
    REFERENCE_STATIC_SENSOR,
)
from .units import nM, um


def _cli_overrides(args) -> dict[str, object]:
    """Merged ``--set`` overrides (top-level flags, then subcommand's)."""
    from .config import parse_value
    from .errors import ConfigError

    pairs = list(getattr(args, "set_global", None) or [])
    pairs += list(getattr(args, "set_cmd", None) or [])
    overrides: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key.strip():
            raise ConfigError(f"--set expects PATH=VALUE, got {pair!r}")
        overrides[key.strip()] = parse_value(raw.strip())
    return overrides


def _root_spec(args, base):
    """The command's device spec: geometry flags first, then ``--set``."""
    overrides: dict[str, object] = {
        "process.nwell_depth_um": args.nwell_um,
        "process.keep_dielectrics": bool(args.coated),
        "cantilever.length_um": args.length,
        "cantilever.width_um": args.width,
    }
    overrides.update(_cli_overrides(args))
    return base.with_overrides(overrides)


def _build_device(spec):
    from .config.builders import build_cantilever

    return build_cantilever(spec.cantilever, spec.process)


def cmd_info(args) -> int:
    from .config.builders import build_bridge
    from .fluidics import immersed_mode
    from .materials import get_liquid
    from .mechanics import analyze_modes
    from .mechanics.beam import spring_constant

    spec = _root_spec(args, REFERENCE_STATIC_SENSOR)
    device = _build_device(spec)
    g = device.geometry
    print(f"device: {g.length * 1e6:.0f} x {g.width * 1e6:.0f} x "
          f"{g.thickness * 1e6:.2f} um released silicon cantilever")
    print(f"spring constant : {spring_constant(g):.3f} N/m")
    for mode in analyze_modes(g, 2):
        print(f"mode {mode.number}          : {mode.frequency / 1e3:.2f} kHz "
              f"(m_eff {mode.effective_mass * 1e12:.1f} ng)")
    wet = immersed_mode(g, get_liquid(args.liquid))
    print(f"in {args.liquid:<12s} : {wet.frequency / 1e3:.2f} kHz, "
          f"Q = {wet.quality_factor:.2f}")
    # datasheet bridges are nominal: mismatch zeroed, everything else spec'd
    sb = build_bridge(replace(spec.bridge, mismatch_sigma=0.0))
    rb = build_bridge(replace(REFERENCE_RESONANT_BRIDGE, mismatch_sigma=0.0))
    print(f"static bridge   : {sb.output_resistance() / 1e3:.1f} kOhm, "
          f"{sb.power_dissipation() * 1e3:.2f} mW")
    print(f"resonant bridge : {rb.output_resistance() / 1e3:.1f} kOhm, "
          f"{rb.power_dissipation() * 1e3:.2f} mW")
    return 0


def cmd_fabricate(args) -> int:
    from .fabrication import cantilever_layout, post_cmos_rule_deck

    spec = _root_spec(args, REFERENCE_STATIC_SENSOR)
    device = _build_device(spec)
    print("== before post-processing ==")
    print(device.process.before.describe())
    print("== after (beam site) ==")
    print(device.process.beam_site.describe())
    print(f"KOH etch time   : {device.process.koh_time / 3600:.2f} h")
    print(f"backside opening: {device.backside_opening * 1e6:.0f} um")
    layout = cantilever_layout(
        um(spec.cantilever.length_um), um(spec.cantilever.width_um)
    )
    violations = post_cmos_rule_deck().check(layout)
    print(f"DRC             : {'clean' if not violations else violations}")
    return 0 if not violations else 1


def cmd_characterize(args) -> int:
    from .analysis import measure_resonance
    from .fluidics import immersed_mode
    from .materials import get_liquid
    from .mechanics import ModalResonator, analyze_modes

    spec = _root_spec(args, REFERENCE_RESONANT_SENSOR).with_overrides(
        {"liquid": args.liquid}
    )
    device = _build_device(spec)
    liquid = get_liquid(spec.liquid)
    wet = immersed_mode(device.geometry, liquid)
    mode = analyze_modes(device.geometry, 1)[0]
    resonator = ModalResonator(
        effective_mass=wet.effective_mass,
        effective_stiffness=mode.effective_stiffness,
        quality_factor=wet.quality_factor,
        timestep=1.0 / (wet.frequency * 40),
    )
    span = 0.5 if wet.quality_factor < 20 else 0.05
    fit = measure_resonance(resonator, span_factor=span, points=25)
    print(f"model f0 = {wet.frequency:.1f} Hz, Q = {wet.quality_factor:.2f}")
    print(f"sweep f0 = {fit.frequency:.1f} Hz, Q = {fit.quality_factor:.2f}")
    return 0


def cmd_assay(args) -> int:
    from .biochem import AssayProtocol
    from .config import build

    spec = _root_spec(
        args, REFERENCE_STATIC_SENSOR.with_overrides({"analyte": args.analyte})
    )
    sensor = build(spec)
    sensor.calibrate_offset()
    protocol = AssayProtocol.injection(
        nM(args.conc_nm), baseline=300, exposure=args.exposure, wash=600
    )
    result = sensor.run_assay(protocol, sample_interval=args.interval)
    step = result.output_step()
    for t, v in zip(result.times[:: args.stride], result.output_voltage[:: args.stride]):
        print(f"{t:10.1f} {v * 1e3:+10.3f}")
    print(f"# step = {step * 1e3:+.2f} mV "
          f"({abs(step) / sensor.output_noise_rms:.1f} x noise)", file=sys.stderr)
    return 0 if abs(step) > 3.0 * sensor.output_noise_rms else 1


def cmd_track(args) -> int:
    from .biochem import AssayProtocol
    from .config import build

    spec = _root_spec(
        args,
        REFERENCE_RESONANT_SENSOR.with_overrides({
            "analyte": args.analyte,
            "liquid": args.liquid,
            "loop.mode": args.mode,
        }),
    )
    sensor = build(spec)
    sensor.loop_backend = args.backend
    protocol = AssayProtocol.injection(
        nM(args.conc_nm), baseline=300, exposure=args.exposure, wash=600
    )
    result = sensor.run_tracking_assay(protocol, gate_time=args.gate)
    for t, f in zip(
        result.times[:: args.stride], result.measured_frequency[:: args.stride]
    ):
        print(f"{t:10.1f} {f:14.3f}")
    print(f"# shift = {result.total_shift:+.3f} Hz "
          f"(resolution {1.0 / result.gate_time:.3f} Hz)", file=sys.stderr)
    return 0


def _sweep_values(raw: str) -> list[float]:
    """Parse ``--values``: a comma list or a ``start:stop:count`` linspace."""
    from .errors import ConfigError

    import numpy as np

    if ":" in raw:
        parts = raw.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"--values range expects start:stop:count, got {raw!r}"
            )
        try:
            start, stop, count = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError as err:
            raise ConfigError(f"bad --values range {raw!r}: {err}") from None
        if count < 2:
            raise ConfigError(f"--values range needs count >= 2, got {count}")
        return [float(v) for v in np.linspace(start, stop, count)]
    try:
        return [float(v) for v in raw.split(",") if v.strip()]
    except ValueError as err:
        raise ConfigError(f"bad --values list {raw!r}: {err}") from None


def cmd_sweep(args) -> int:
    from .analysis import LoopSweepTask, run_spec_sweep
    from .engine import kernel_info

    spec = _root_spec(args, REFERENCE_RESONANT_SENSOR)
    values = _sweep_values(args.values)
    if args.fabric:
        from .engine import TieredCache, run_fabric_sweep

        cache_dir = args.cache_dir or ".repro_fabric/cache"
        cache = TieredCache(cache_dir)
        result = run_fabric_sweep(
            spec, args.path, values,
            db=args.db, cache_dir=cache_dir,
            duration=args.duration,
            workers=args.fabric_workers,
            chunk_size=args.chunk_size,
            cache=cache,
        )
        print(result.format_table())
        info = cache.cache_info()
        tiers = " ".join(
            f"{t.name}[hits={t.hits} stores={t.stores}]" for t in info.tiers
        )
        print(f"# fabric: workers={args.fabric_workers} "
              f"chunk_size={args.chunk_size} {tiers}", file=sys.stderr)
        return 0
    cache = None
    if args.cache_dir:
        from .engine import ResultCache

        cache = ResultCache(args.cache_dir)
    result = run_spec_sweep(
        spec,
        args.path,
        values,
        LoopSweepTask(duration=args.duration),
        workers=args.workers,
        backend="kernel-batch" if args.batch else "serial",
        cache=cache,
        timeout=args.timeout,
        retry=args.retries,
    )
    print(result.format_table())
    info = kernel_info()
    print(
        f"# kernel: runs={info.runs} batch_runs={info.batch_runs} "
        f"batch_instances={info.batch_instances} fallbacks={info.fallbacks}",
        file=sys.stderr,
    )
    return 0


def cmd_worker(args) -> int:
    """One fabric worker node: lease chunks until the queue runs dry."""
    import json

    from .engine import HTTPRemoteStore, TieredCache
    from .engine.fabric import FabricWorker
    from .engine.resilience import arm_env_fault_plan

    arm_env_fault_plan()  # chaos harness: seeded fault plan via env
    if bool(args.url) == bool(args.db):
        print("worker: give exactly one of --url or --db", file=sys.stderr)
        return 2
    if args.url:
        from .service import RemoteFabricStore, ServiceClient

        store = RemoteFabricStore(ServiceClient(args.url))
        remote = HTTPRemoteStore(args.url)
    else:
        from .service import open_job_store

        store = open_job_store(args.db)
        remote = None
    cache = TieredCache(args.cache_dir, remote=remote)
    worker = FabricWorker(
        store, cache,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        job_id=args.job_id,
        points_limit=args.points_limit,
    )
    print(f"worker {worker.worker_id} leasing "
          f"({'url ' + args.url if args.url else 'db ' + args.db})",
          file=sys.stderr)
    stats = worker.run(
        max_chunks=args.max_chunks,
        idle_exit=None if args.once else args.idle_exit,
    )
    from .service.transport import transport_report

    payload = {"stats": stats.to_dict(),
               "cache": _cache_info_dict(cache),
               "transport": transport_report()}
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    print(f"worker {worker.worker_id}: {stats.chunks_done} chunk(s) done, "
          f"{stats.points_computed} computed, {stats.points_cached} cached"
          + (", QUARANTINED" if stats.quarantined else ""), file=sys.stderr)
    return 3 if stats.quarantined else 0


def _cache_info_dict(cache) -> dict:
    info = cache.cache_info()
    payload = {
        "hits": info.hits, "misses": info.misses, "stores": info.stores,
        "corruptions": info.corruptions,
    }
    payload["tiers"] = [t.as_dict() for t in getattr(info, "tiers", ())]
    return payload


def cmd_health(args) -> int:
    from .engine import breaker_report, cc_available, kernel_info, numba_available

    if args.url:
        import json

        from .service import ServiceClient

        snapshot = ServiceClient(args.url).health()
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0 if snapshot.get("ok") else 1
    if args.json:
        import json

        from .service import health_snapshot

        snapshot = health_snapshot(cache_dir=args.cache_dir, evict=args.evict)
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0 if snapshot["ok"] else 1

    info = kernel_info()
    print(f"compiler        : {'available' if cc_available() else 'absent'}")
    if info.cc_build_error:
        print(f"compiler error  : {info.cc_build_error}")
    print(f"numba           : {'available' if numba_available() else 'absent'}")
    print(f"cc quarantined  : {'yes' if info.cc_quarantined else 'no'}")
    runs = " ".join(f"{k}={v}" for k, v in sorted(info.runs.items())) or "none"
    print(f"kernel runs     : {runs} (batch {info.batch_runs} / "
          f"{info.batch_instances} instances)")
    print(f"fallbacks       : {info.fallbacks}"
          + (f" (last: {info.last_fallback_reason})"
             if info.last_fallback_reason else ""))
    print(f"degrades        : {info.degrades}"
          + (f" (last: {info.last_degrade_reason})"
             if info.last_degrade_reason else ""))
    breakers = breaker_report()
    if not breakers:
        print("breakers        : none registered")
    for b in breakers.values():
        state = "OPEN" if b.open else "closed"
        print(f"breaker {b.name:<12s}: {state} "
              f"(failures {b.failures}, trips {b.trips})")
    from .service.transport import transport_counters

    t = transport_counters().snapshot()
    print(f"transport       : {t['requests']} requests, "
          f"{t['retries']} retries, {t['errors']} errors, "
          f"{t['deadline_sheds']} deadline sheds, "
          f"{t['backpressure_rejections']} backpressure rejections")
    if args.cache_dir:
        from .engine import TieredCache

        cache = TieredCache(args.cache_dir)
        intact, damaged = cache.verify(evict=args.evict)
        verb = "evicted" if args.evict else "found"
        print(f"cache           : {intact} intact, {damaged} damaged ({verb})")
        for tier in cache.cache_info().tiers:
            print(f"cache tier {tier.name:<6s}: hits {tier.hits}, "
                  f"misses {tier.misses}, stores {tier.stores}, "
                  f"promotions {tier.promotions}, "
                  f"evictions {tier.evictions}, errors {tier.errors}")
        return 0 if damaged == 0 else 1
    return 0


def cmd_chaos(args) -> int:
    """Seeded chaos schedules against a real server + worker processes."""
    import json

    from .service.chaos import run_chaos_suite

    echo = (lambda _msg: None) if args.json else \
        (lambda msg: print(msg, file=sys.stderr))
    reports = run_chaos_suite(
        args.workdir, seed=args.seed,
        schedules=args.schedules.split(",") if args.schedules else None,
        points=args.points, chunk_size=args.chunk_size,
        duration=args.duration, keep=args.keep, echo=echo,
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for r in reports:
            verdict = "PASS" if r.passed else f"FAIL  {r.error}"
            print(f"{r.schedule:<18s} {r.duration_s:6.1f}s  {verdict}")
    return 0 if all(r.passed for r in reports) else 1


def _print_result_table(payload: dict) -> None:
    """Render a service result payload as the familiar sweep table."""
    names = list(payload.get("columns", {}))
    name = payload.get("parameter_name", "parameter")
    print("  ".join([f"{name:>24s}"] + [f"{n:>14s}" for n in names]))
    for i, parameter in enumerate(payload.get("parameters", [])):
        cells = [f"{parameter:>24.6g}"]
        for n in names:
            value = payload["columns"][n][i]
            cells.append(f"{'failed':>14s}" if value is None
                         else f"{value:>14.6g}")
        print("  ".join(cells))


def cmd_serve(args) -> int:
    from .engine import TieredCache
    from .engine.resilience import arm_env_fault_plan
    from .service import (
        ReproHTTPServer,
        ReproService,
        SchedulerPolicy,
        open_job_store,
    )

    arm_env_fault_plan()  # chaos harness: seeded fault plan via env
    store = open_job_store(args.db)
    # tiered so remote fabric workers can push/pull raw cache payloads
    cache = TieredCache(args.cache_dir)
    service = ReproService(
        store,
        cache,
        SchedulerPolicy(tenant_quota=args.tenant_quota),
        pump_workers=args.pump_workers,
    )
    server = ReproHTTPServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    # scripts (make serve-check) parse this line to find an ephemeral port
    print(f"listening on http://{host}:{port}", flush=True)
    print(f"job store: {args.db} (schema v{store.schema_version()})",
          file=sys.stderr)
    service.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        server.server_close()
    return 0


def cmd_submit(args) -> int:
    from .service import JobSpec, ServiceClient

    spec = JobSpec(
        base=_root_spec(args, REFERENCE_RESONANT_SENSOR).to_dict(),
        path=args.path,
        values=tuple(_sweep_values(args.values)),
        duration=args.duration,
        tenant=args.tenant,
        priority=args.priority,
        backend=args.backend,
        retries=args.retries,
        timeout=args.timeout,
    )
    client = ServiceClient(args.url)
    record = client.submit(spec)
    job_id = record["job_id"]
    dedup = record.get("dedup_of")
    print(f"job {job_id} queued"
          + (f" (deduplicated against {dedup})" if dedup else ""))
    if not args.wait:
        return 0
    payload = client.wait(job_id, timeout=args.wait_timeout)
    phase = payload["state"]["phase"]
    print(f"job {job_id} {phase} "
          f"({payload['progress']['completed']}/{payload['progress']['total']} "
          f"points, {payload['progress']['failed']} failed, "
          f"{payload['progress']['cache_hits']} cache hits)",
          file=sys.stderr)
    if phase == "done":
        _print_result_table(client.results(job_id))
        return 0
    return 1


def cmd_status(args) -> int:
    import json

    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        print(json.dumps(client.status(args.job_id), indent=2))
        return 0
    rows = client.list_jobs(tenant=args.tenant)
    if not rows:
        print("no jobs")
        return 0
    print(f"{'job':<18s} {'tenant':<10s} {'phase':<10s} "
          f"{'progress':>9s}  dedup")
    for row in rows:
        progress = f"{row['completed']}/{row['total']}"
        print(f"{row['job_id']:<18s} {row['tenant']:<10s} "
              f"{row['phase']:<10s} {progress:>9s}  "
              f"{row['dedup_of'] or '-'}")
    return 0


def cmd_results(args) -> int:
    import json

    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.ndjson:
        for row in client.results_ndjson(args.job_id):
            print(json.dumps(row))
        return 0
    _print_result_table(client.results(args.job_id))
    return 0


def cmd_cancel(args) -> int:
    from .service import ServiceClient

    record = ServiceClient(args.url).cancel(args.job_id)
    phase = record["state"]["phase"]
    if phase == "cancelled":
        print(f"job {args.job_id} cancelled")
    elif phase in ("done", "failed"):
        print(f"job {args.job_id} already {phase}; nothing to cancel")
    else:
        print(f"job {args.job_id} {phase} (cancellation requested)")
    return 0


def _add_set_flag(parser: argparse.ArgumentParser, dest: str) -> None:
    # the top-level and per-subcommand copies need *different* dests:
    # argparse lets a subparser's defaults clobber already-parsed
    # top-level values, so sharing one dest would drop `--set`s given
    # before the command word.
    parser.add_argument(
        "--set", action="append", dest=dest, metavar="PATH=VALUE",
        default=None,
        help="override any spec field by dotted path "
             "(e.g. cantilever.length_um=350); repeatable",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMOS cantilever biosensor simulator (DATE 2005 repro)",
    )
    parser.add_argument("--length", type=float,
                        default=REFERENCE_CANTILEVER.length_um,
                        help="beam length [um]")
    parser.add_argument("--width", type=float,
                        default=REFERENCE_CANTILEVER.width_um,
                        help="beam width [um]")
    parser.add_argument("--nwell-um", type=float,
                        default=REFERENCE_PROCESS.nwell_depth_um,
                        dest="nwell_um", help="n-well etch-stop depth [um]")
    parser.add_argument("--coated", action="store_true",
                        help="keep CMOS dielectrics on the beam")
    _add_set_flag(parser, "set_global")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="device datasheet")
    p.add_argument("--liquid", default="water")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("fabricate", help="run the post-CMOS flow + DRC")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_fabricate)

    p = sub.add_parser("characterize", help="swept-sine bring-up")
    p.add_argument("--liquid", default="water")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("assay", help="static immunoassay")
    p.add_argument("--analyte", default="igg")
    p.add_argument("--conc-nm", type=float, default=10.0, dest="conc_nm")
    p.add_argument("--exposure", type=float, default=1800.0)
    p.add_argument("--interval", type=float, default=5.0)
    p.add_argument("--stride", type=int, default=30)
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_assay)

    p = sub.add_parser("track", help="resonant tracking assay")
    p.add_argument("--analyte", default="streptavidin")
    p.add_argument("--liquid", default="pbs")
    p.add_argument("--conc-nm", type=float, default=100.0, dest="conc_nm")
    p.add_argument("--exposure", type=float, default=1800.0)
    p.add_argument("--gate", type=float, default=10.0)
    p.add_argument("--mode", type=int, default=1)
    p.add_argument("--stride", type=int, default=30)
    p.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "reference", "fused", "numba", "interp"],
        help="closed-loop execution backend (default: auto)",
    )
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_track)

    p = sub.add_parser(
        "sweep",
        help="closed-loop spec sweep (batched kernel path with --batch)",
    )
    p.add_argument("--path", default="cantilever.length_um",
                   help="dotted spec path to sweep")
    p.add_argument("--values", default="160:260:6",
                   help="comma list (a,b,c) or start:stop:count linspace")
    p.add_argument("--duration", type=float, default=0.01,
                   help="closed-loop settling time per point [s]")
    batch_group = p.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch", action="store_true", default=True,
        help="run the whole sweep as one batched kernel call (default)",
    )
    batch_group.add_argument(
        "--serial", action="store_false", dest="batch",
        help="run each point solo (the pre-batching path)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="C-level threads for the batched call (default: CPU count, "
             "capped by REPRO_KERNEL_THREADS)",
    )
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="ResultCache directory (spec-keyed memoization)")
    p.add_argument(
        "--retries", type=int, default=None,
        help="re-dispatch a crashed point up to N times "
             "(deterministic seeded backoff)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-point watchdog [s]; a hung point is killed and retried",
    )
    p.add_argument(
        "--fabric", action="store_true",
        help="distribute the grid over chunk-leasing worker processes "
             "(crash-resumable via the tiered cache)",
    )
    p.add_argument("--fabric-workers", type=int, default=2,
                   dest="fabric_workers",
                   help="worker processes to spawn (0 = run in-process)")
    p.add_argument("--chunk-size", type=int, default=8, dest="chunk_size",
                   help="grid points per leased chunk")
    p.add_argument("--db", default=".repro_fabric/jobs.sqlite",
                   help="fabric job/lease store (shared by resumed runs)")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "health",
        help="engine health: kernel state, breakers, cache integrity",
    )
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="also integrity-scan this ResultCache directory")
    p.add_argument("--evict", action="store_true",
                   help="evict damaged cache entries found by the scan")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable health snapshot "
                        "(what the serve layer's /healthz probe embeds)")
    p.add_argument("--url", default=None,
                   help="query a running service's /healthz instead "
                        "(includes live per-tier cache counters)")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "worker",
        help="fabric worker node: lease sweep chunks from a store or server",
    )
    p.add_argument("--url", default=None,
                   help="coordinator base URL (remote node; results travel "
                        "through the cache's HTTP tier)")
    p.add_argument("--db", default=None,
                   help="shared job-store path (local node)")
    p.add_argument("--cache-dir", default=".repro_fabric/cache",
                   dest="cache_dir", help="tiered cache directory")
    p.add_argument("--worker-id", default=None, dest="worker_id",
                   help="stable identity (default: host-pid-hex)")
    p.add_argument("--job-id", default=None, dest="job_id",
                   help="only lease chunks of this job")
    p.add_argument("--lease-seconds", type=float, default=30.0,
                   dest="lease_seconds",
                   help="chunk lease TTL; heartbeats extend it")
    p.add_argument("--max-attempts", type=int, default=3, dest="max_attempts",
                   help="chunk attempts before it is parked failed")
    p.add_argument("--max-chunks", type=int, default=None, dest="max_chunks",
                   help="stop after this many chunks")
    p.add_argument("--idle-exit", type=float, default=5.0, dest="idle_exit",
                   help="exit after this many idle seconds")
    p.add_argument("--once", action="store_true",
                   help="exit on the first idle poll (drain mode)")
    p.add_argument("--points-limit", type=int, default=None,
                   dest="points_limit",
                   help="crash rehearsal: hard-exit after computing N points")
    p.add_argument("--stats-json", default=None, dest="stats_json",
                   help="write worker stats + cache counters to this file")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the simulation service (durable job store + HTTP API)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 binds an ephemeral port and prints it)")
    p.add_argument("--db", default=".repro_service/jobs.sqlite",
                   help="job-store location (path or sqlite:///path)")
    p.add_argument("--cache-dir", default=".repro_service/cache",
                   dest="cache_dir", help="ResultCache directory shared by "
                                          "all jobs (the dedup substrate)")
    p.add_argument("--pump-workers", type=int, default=1, dest="pump_workers",
                   help="concurrent jobs (per-job parallelism is separate)")
    p.add_argument("--tenant-quota", type=int, default=2, dest="tenant_quota",
                   help="max running jobs per tenant")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="seeded fault schedules against a real server + workers "
             "(kill -9, brownouts, lost heartbeats); proves bit-exact "
             "results with zero recomputes",
    )
    p.add_argument("--seed", type=int, default=2026,
                   help="suite seed; every schedule derives its own")
    p.add_argument("--schedules", default=None,
                   help="comma-separated subset (default: all)")
    p.add_argument("--points", type=int, default=12,
                   help="grid points per schedule")
    p.add_argument("--chunk-size", type=int, default=4, dest="chunk_size",
                   help="points per lease chunk")
    p.add_argument("--duration", type=float, default=0.004,
                   help="closed-loop seconds per point")
    p.add_argument("--workdir", default=None,
                   help="artifact directory (default: fresh temp dir)")
    p.add_argument("--keep", action="store_true",
                   help="keep stores/caches/stats dumps for post-mortems")
    p.add_argument("--json", action="store_true",
                   help="print the report list as JSON")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("submit", help="submit a sweep to a running service")
    p.add_argument("--url", default="http://127.0.0.1:8765",
                   help="service base URL")
    p.add_argument("--path", default="cantilever.length_um",
                   help="dotted spec path to sweep")
    p.add_argument("--values", default="160:260:6",
                   help="comma list (a,b,c) or start:stop:count linspace")
    p.add_argument("--duration", type=float, default=0.01,
                   help="closed-loop settling time per point [s]")
    p.add_argument("--tenant", default="default",
                   help="tenant the job is accounted to")
    p.add_argument("--priority", type=int, default=0,
                   help="scheduling priority (higher runs first)")
    p.add_argument("--backend", default="kernel-batch",
                   help="executor backend for the sweep")
    p.add_argument("--retries", type=int, default=None,
                   help="per-point retry budget")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point watchdog [s]")
    p.add_argument("--wait", action="store_true",
                   help="poll until terminal and print the result table")
    p.add_argument("--wait-timeout", type=float, default=300.0,
                   dest="wait_timeout", help="--wait polling deadline [s]")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="job status (or listing without an id)")
    p.add_argument("job_id", nargs="?", default=None)
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--tenant", default=None,
                   help="filter the listing to one tenant")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("results", help="fetch a finished job's sweep table")
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--ndjson", action="store_true",
                   help="print one JSON line per grid point")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_results)

    p = sub.add_parser("cancel", help="cancel a queued/running job")
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    _add_set_flag(p, "set_cmd")
    p.set_defaults(func=cmd_cancel)

    return parser


def main(argv: list[str] | None = None) -> int:
    from .errors import ConfigError, LoweringError, ServiceError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, LoweringError, ServiceError) as err:
        # user-facing configuration/lowering/service problems get a
        # one-line message and a nonzero exit, never a traceback
        print(f"repro: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
