"""Declarative device-spec layer: typed configs, builders, overrides.

One typed, serializable, hashable spec describes any device variant this
library can build; everything else — presets, the CLI, sweeps, the
result cache — consumes specs instead of re-declaring magic numbers:

* :mod:`repro.config.specs` — the frozen dataclass hierarchy
  (:class:`ProcessSpec` ... :class:`ChipSpec`) with ``to_dict`` /
  ``from_dict`` / JSON round-trip, eager field-path validation, and
  dotted-path ``with_overrides``;
* :mod:`repro.config.builders` — the ``build(spec)`` registry turning
  specs into live device objects;
* :mod:`repro.config.reference` — the paper's reference device as
  ``REFERENCE_*`` spec constants (the single source of every default).

>>> from repro.config import REFERENCE_STATIC_SENSOR, build   # doctest: +SKIP
>>> sensor = build(REFERENCE_STATIC_SENSOR.with_overrides(
...     {"cantilever.length_um": 350, "bridge.mismatch_sigma": 1e-3}
... ))
"""

from .builders import (
    build,
    build_cantilever,
    build_first_stage,
    build_static_readout,
    builder_for,
    registered_spec_types,
)
from .reference import (
    REFERENCE_CANTILEVER,
    REFERENCE_CHIP,
    REFERENCE_PROCESS,
    REFERENCE_RESONANT_BRIDGE,
    REFERENCE_RESONANT_LOOP,
    REFERENCE_RESONANT_SENSOR,
    REFERENCE_SPECS,
    REFERENCE_STATIC_BRIDGE,
    REFERENCE_STATIC_READOUT,
    REFERENCE_STATIC_SENSOR,
)
from .specs import (
    BridgeSpec,
    CantileverSpec,
    ChannelSpec,
    ChipSpec,
    ProcessSpec,
    ResonantLoopSpec,
    ResonantSensorSpec,
    Spec,
    StaticReadoutSpec,
    StaticSensorSpec,
    parse_value,
    spec_hash,
)

__all__ = [
    "BridgeSpec",
    "CantileverSpec",
    "ChannelSpec",
    "ChipSpec",
    "ProcessSpec",
    "REFERENCE_CANTILEVER",
    "REFERENCE_CHIP",
    "REFERENCE_PROCESS",
    "REFERENCE_RESONANT_BRIDGE",
    "REFERENCE_RESONANT_LOOP",
    "REFERENCE_RESONANT_SENSOR",
    "REFERENCE_SPECS",
    "REFERENCE_STATIC_BRIDGE",
    "REFERENCE_STATIC_READOUT",
    "REFERENCE_STATIC_SENSOR",
    "ResonantLoopSpec",
    "ResonantSensorSpec",
    "Spec",
    "StaticReadoutSpec",
    "StaticSensorSpec",
    "build",
    "build_cantilever",
    "build_first_stage",
    "build_static_readout",
    "builder_for",
    "parse_value",
    "registered_spec_types",
    "spec_hash",
]
