"""Typed, frozen device specs — the single source of device truth.

The paper's two systems (static piezoresistive readout, Fig. 4; resonant
Lorentz-force loop, Fig. 5) share one fabricated device recipe.  This
module declares that recipe as a hierarchy of frozen dataclasses, each a
pure value object:

* serializable — ``to_dict`` / ``from_dict`` / ``to_json`` / ``from_json``
  round-trip exactly;
* validated eagerly — a bad field raises :class:`~repro.errors.ConfigError`
  at construction, with the dotted field path in the message;
* overridable — ``spec.with_overrides({"cantilever.length_um": 350})``
  returns a new spec with nested replacements applied (and re-validated);
* hashable — :func:`spec_hash` keys a spec by the stable content hash of
  its dict form, so sweep grids and the engine's
  :class:`~repro.engine.ResultCache` share one principled key.

Field units are the laboratory units of the cantilever literature
(``_um``, ``_v``, ``_hz`` suffixes); builders convert to strict SI at the
construction boundary, exactly as the CLI always did.
"""

from __future__ import annotations

import json
import math
import types
import typing
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..errors import ConfigError

__all__ = [
    "BridgeSpec",
    "CantileverSpec",
    "ChannelSpec",
    "ChipSpec",
    "ProcessSpec",
    "ResonantLoopSpec",
    "ResonantSensorSpec",
    "Spec",
    "StaticReadoutSpec",
    "StaticSensorSpec",
    "spec_hash",
]

#: Bridge technologies the transduction layer implements.
BRIDGE_KINDS = ("diffused", "pmos")


def _fail(path: str, message: str) -> typing.NoReturn:
    raise ConfigError(f"{path}: {message}")


def _reprefix(err: ConfigError, prefix: str) -> ConfigError:
    """Prepend a parent field to the path already inside ``err``."""
    return ConfigError(f"{prefix}.{err.args[0]}" if err.args else prefix)


class Spec:
    """Base class of all device specs (concrete specs are frozen dataclasses).

    Subclasses implement ``_validate`` (called from ``__post_init__``)
    and inherit the full serialization / override machinery.
    """

    #: Short machine name of the spec node, recorded in ``to_dict``.
    spec_kind: typing.ClassVar[str] = ""

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:  # pragma: no cover - overridden
        """Raise :class:`ConfigError` with a field path on any bad value."""

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types dict form (nested specs become nested dicts).

        The ``"$spec"`` meta key records the node type (``$``-prefixed so
        it can never collide with a field name).
        """
        data: dict[str, Any] = {"$spec": type(self).spec_kind}
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            data[f.name] = _value_to_dict(value)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Spec":
        """Rebuild a spec from its ``to_dict`` form (validates eagerly)."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"{cls.spec_kind or cls.__name__}: expected a mapping, "
                f"got {type(data).__name__}"
            )
        kind = data.get("$spec")
        if kind is not None and kind != cls.spec_kind:
            raise ConfigError(
                f"$spec: expected {cls.spec_kind!r}, got {kind!r}"
            )
        hints = typing.get_type_hints(cls)
        kwargs: dict[str, Any] = {}
        known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        for name in data:
            if name != "$spec" and name not in known:
                _fail(name, f"unknown field for {cls.__name__}; "
                            f"known: {', '.join(sorted(known))}")
        for f in fields(cls):  # type: ignore[arg-type]
            if f.name not in data:
                continue
            try:
                kwargs[f.name] = _value_from_dict(hints[f.name], data[f.name])
            except ConfigError as err:
                raise _reprefix(err, f.name) from None
        try:
            return cls(**kwargs)
        except ConfigError:
            raise
        except TypeError as err:
            raise ConfigError(f"{cls.__name__}: {err}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ConfigError(f"{cls.__name__}: invalid JSON ({err})") from None
        return cls.from_dict(data)

    # -- overrides ---------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Spec":
        """New spec with dotted-path replacements applied and re-validated.

        >>> spec.with_overrides({"cantilever.length_um": 350})  # doctest: +SKIP

        Paths descend nested specs by field name and tuples by index
        (``channels.2.label``).  Unknown segments raise
        :class:`ConfigError` listing the valid fields at that level.
        """
        result = self
        for path, value in overrides.items():
            try:
                result = _apply_one(result, path.split("."), value)
            except ConfigError as err:
                # the path context is already inside; keep it untouched
                raise ConfigError(err.args[0]) from None
        return result

    def describe_paths(self) -> list[str]:
        """All dotted override paths this spec accepts (leaves only)."""
        paths: list[str] = []
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, Spec):
                paths += [f"{f.name}.{p}" for p in value.describe_paths()]
            elif isinstance(value, tuple) and value and isinstance(value[0], Spec):
                for i, item in enumerate(value):
                    paths += [f"{f.name}.{i}.{p}" for p in item.describe_paths()]
            else:
                paths.append(f.name)
        return paths


def _value_to_dict(value: Any) -> Any:
    if isinstance(value, Spec):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_value_to_dict(v) for v in value]
    return value


def _value_from_dict(hint: Any, value: Any) -> Any:
    """Rebuild one field value from JSON types, guided by its annotation."""
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is types.UnionType:  # Optional/unions
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if value is None:
            return None
        return _value_from_dict(args[0], value)
    if isinstance(hint, type) and issubclass(hint, Spec):
        return hint.from_dict(value)
    if origin is tuple:
        (item_type, *_rest) = typing.get_args(hint)
        if not isinstance(value, (list, tuple)):
            raise ConfigError(f"expected a list, got {type(value).__name__}")
        items = []
        for i, entry in enumerate(value):
            try:
                items.append(_value_from_dict(item_type, entry))
            except ConfigError as err:
                raise _reprefix(err, str(i)) from None
        return tuple(items)
    if hint is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value


def _apply_one(node: Any, segments: list[str], value: Any) -> Any:
    """Replace the value at ``segments`` below ``node``, bottom-up."""
    head, rest = segments[0], segments[1:]

    if isinstance(node, tuple):
        try:
            index = int(head)
        except ValueError:
            _fail(head, f"expected a tuple index 0..{len(node) - 1}")
        if not 0 <= index < len(node):
            _fail(head, f"index out of range (tuple has {len(node)} entries)")
        items = list(node)
        items[index] = (
            _coerced(items[index], value, head)
            if not rest
            else _apply_one(items[index], rest, value)
        )
        return tuple(items)

    if not isinstance(node, Spec):
        _fail(head, f"cannot descend into {type(node).__name__} value")

    names = {f.name for f in fields(node)}  # type: ignore[arg-type]
    if head not in names:
        _fail(head, f"unknown field of {type(node).__name__}; "
                    f"known: {', '.join(sorted(names))}")
    current = getattr(node, head)
    try:
        if rest:
            new_value = _apply_one(current, rest, value)
        else:
            new_value = _coerced(current, value, head)
        return replace(node, **{head: new_value})
    except ConfigError as err:
        message = err.args[0] if err.args else ""
        if message.startswith(f"{head}:") or message.startswith(f"{head}."):
            raise  # this level already named itself
        raise _reprefix(err, head) from None


def _coerced(current: Any, value: Any, path: str) -> Any:
    """Light type adaptation of an override value against the old one."""
    if isinstance(value, str):
        value = parse_value(value)
    if isinstance(current, bool):
        if not isinstance(value, bool):
            _fail(path, f"expected a boolean, got {value!r}")
        return value
    if isinstance(current, float) and isinstance(value, int):
        return float(value)
    if isinstance(current, Spec) or isinstance(current, tuple):
        _fail(path, "cannot replace a whole sub-spec; set its fields "
                    "individually")
    return value


def parse_value(raw: str) -> Any:
    """Parse one ``--set`` value string: bool / None / number / string.

    ``"true"``/``"false"`` (any case) become booleans, ``"none"``/``"null"``
    become ``None``, numeric literals become int/float, everything else
    stays a string.
    """
    lowered = raw.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def spec_hash(spec: Spec) -> str:
    """Stable SHA-256 key of a spec: ``stable_hash(spec.to_dict())``.

    This is the cache key contract: the engine's
    :class:`~repro.engine.ResultCache` and every spec-keyed sweep hash
    the *serialized* form, so two specs that round-trip equal always hit
    the same cache entry — across processes and sessions.
    """
    from ..engine.cache import stable_hash

    return stable_hash("repro-spec", spec.to_dict())


# ---------------------------------------------------------------------------
# validation helpers
# ---------------------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _positive(path: str, value: Any) -> None:
    if not _is_number(value) or not value > 0:
        _fail(path, f"must be a positive finite number, got {value!r}")


def _nonnegative(path: str, value: Any) -> None:
    if not _is_number(value) or not value >= 0:
        _fail(path, f"must be a non-negative finite number, got {value!r}")


def _fraction(path: str, value: Any) -> None:
    if not _is_number(value) or not 0.0 <= value <= 1.0:
        _fail(path, f"must lie in [0, 1], got {value!r}")


def _integer(path: str, value: Any, minimum: int = 1) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        _fail(path, f"must be an integer >= {minimum}, got {value!r}")


# ---------------------------------------------------------------------------
# the spec hierarchy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessSpec(Spec):
    """Post-CMOS micromachining knobs (Fig. 3).

    ``nwell_depth_um`` is the electrochemical etch-stop depth — the
    released silicon thickness; ``keep_dielectrics`` spares the beam
    during the front-side dielectric RIE (heavier, stiffer variant used
    when circuit layers must ride on the beam).
    """

    spec_kind = "process"

    nwell_depth_um: float = 5.0
    keep_dielectrics: bool = False

    def _validate(self) -> None:
        _positive("nwell_depth_um", self.nwell_depth_um)
        if not isinstance(self.keep_dielectrics, bool):
            _fail("keep_dielectrics", "must be a boolean")


@dataclass(frozen=True)
class CantileverSpec(Spec):
    """Drawn cantilever dimensions (thickness comes from the process)."""

    spec_kind = "cantilever"

    length_um: float = 500.0
    width_um: float = 100.0
    membrane_margin_um: float = 50.0

    def _validate(self) -> None:
        _positive("length_um", self.length_um)
        _positive("width_um", self.width_um)
        _positive("membrane_margin_um", self.membrane_margin_um)


@dataclass(frozen=True)
class BridgeSpec(Spec):
    """Wheatstone bridge recipe of either transduction technology.

    ``kind="diffused"`` is the distributed p-diffusion bridge of the
    static system; ``kind="pmos"`` the PMOS-in-triode bridge of the
    resonant system (``nominal_resistance_ohm`` applies to the diffused
    element only — the PMOS on-resistance follows from its bias point).
    """

    spec_kind = "bridge"

    kind: str = "diffused"
    nominal_resistance_ohm: float = 10e3
    bias_voltage_v: float = 3.3
    mismatch_sigma: float = 2e-3
    seed: int | None = 42

    def _validate(self) -> None:
        if self.kind not in BRIDGE_KINDS:
            _fail("kind", f"must be one of {BRIDGE_KINDS}, got {self.kind!r}")
        _positive("nominal_resistance_ohm", self.nominal_resistance_ohm)
        _positive("bias_voltage_v", self.bias_voltage_v)
        _nonnegative("mismatch_sigma", self.mismatch_sigma)
        if self.seed is not None:
            _integer("seed", self.seed, minimum=0)


@dataclass(frozen=True)
class StaticReadoutSpec(Spec):
    """The Fig. 4 chain: chopper -> low-pass -> offset DAC -> gain stages."""

    spec_kind = "static_readout"

    chop_frequency_hz: float = 10e3
    first_stage_gain: float = 100.0
    first_stage_offset_v: float = 2e-3
    lowpass_cutoff_hz: float = 100.0
    lowpass_order: int = 2
    dac_full_scale_v: float = 1.0
    dac_bits: int = 10
    gain2: float = 10.0
    gain3: float = 5.0
    sample_rate_hz: float = 200e3
    rng_seed: int = 2024

    def _validate(self) -> None:
        _positive("chop_frequency_hz", self.chop_frequency_hz)
        _positive("first_stage_gain", self.first_stage_gain)
        _nonnegative("first_stage_offset_v", self.first_stage_offset_v)
        _positive("lowpass_cutoff_hz", self.lowpass_cutoff_hz)
        _integer("lowpass_order", self.lowpass_order)
        _positive("dac_full_scale_v", self.dac_full_scale_v)
        _integer("dac_bits", self.dac_bits, minimum=2)
        if self.dac_bits > 24:
            _fail("dac_bits", f"must lie in [2, 24], got {self.dac_bits}")
        _positive("gain2", self.gain2)
        _positive("gain3", self.gain3)
        _positive("sample_rate_hz", self.sample_rate_hz)
        _integer("rng_seed", self.rng_seed, minimum=0)
        if self.chop_frequency_hz >= self.sample_rate_hz / 2.0:
            _fail("chop_frequency_hz",
                  "must sit below the Nyquist rate of sample_rate_hz")


@dataclass(frozen=True)
class ResonantLoopSpec(Spec):
    """The Fig. 5 closed-loop operating point."""

    spec_kind = "resonant_loop"

    steps_per_cycle: int = 40
    mode: int = 1
    seed: int = 4321

    def _validate(self) -> None:
        _integer("steps_per_cycle", self.steps_per_cycle, minimum=8)
        _integer("mode", self.mode)
        _integer("seed", self.seed, minimum=0)


@dataclass(frozen=True)
class StaticSensorSpec(Spec):
    """Full static system: device + chemistry + Fig. 4 readout."""

    spec_kind = "static_sensor"

    process: ProcessSpec = field(default_factory=ProcessSpec)
    cantilever: CantileverSpec = field(default_factory=CantileverSpec)
    bridge: BridgeSpec = field(default_factory=BridgeSpec)
    readout: StaticReadoutSpec = field(default_factory=StaticReadoutSpec)
    analyte: str = "igg"
    immobilization_efficiency: float = 0.7

    def _validate(self) -> None:
        if not isinstance(self.analyte, str) or not self.analyte:
            _fail("analyte", f"must be an analyte name, got {self.analyte!r}")
        _fraction("immobilization_efficiency", self.immobilization_efficiency)


@dataclass(frozen=True)
class ResonantSensorSpec(Spec):
    """Full resonant system: device + chemistry + liquid + Fig. 5 loop."""

    spec_kind = "resonant_sensor"

    process: ProcessSpec = field(default_factory=ProcessSpec)
    cantilever: CantileverSpec = field(default_factory=CantileverSpec)
    bridge: BridgeSpec = field(
        default_factory=lambda: BridgeSpec(
            kind="pmos", mismatch_sigma=5e-3, seed=43
        )
    )
    loop: ResonantLoopSpec = field(default_factory=ResonantLoopSpec)
    liquid: str = "water"
    analyte: str = "igg"
    immobilization_efficiency: float = 0.7

    def _validate(self) -> None:
        if not isinstance(self.liquid, str) or not self.liquid:
            _fail("liquid", f"must be a liquid name, got {self.liquid!r}")
        if not isinstance(self.analyte, str) or not self.analyte:
            _fail("analyte", f"must be an analyte name, got {self.analyte!r}")
        _fraction("immobilization_efficiency", self.immobilization_efficiency)


@dataclass(frozen=True)
class ChannelSpec(Spec):
    """One channel of the 4-cantilever array (``analyte=None`` = reference)."""

    spec_kind = "channel"

    analyte: str | None = None
    immobilization_efficiency: float = 0.7
    label: str = ""

    def _validate(self) -> None:
        if self.analyte is not None and (
            not isinstance(self.analyte, str) or not self.analyte
        ):
            _fail("analyte", f"must be an analyte name or None, "
                             f"got {self.analyte!r}")
        _fraction("immobilization_efficiency", self.immobilization_efficiency)
        if not isinstance(self.label, str):
            _fail("label", f"must be a string, got {self.label!r}")


@dataclass(frozen=True)
class ChipSpec(Spec):
    """The single-chip biosensor: 4 channels + shared mux/readout."""

    spec_kind = "chip"

    process: ProcessSpec = field(default_factory=ProcessSpec)
    cantilever: CantileverSpec = field(default_factory=CantileverSpec)
    channels: tuple[ChannelSpec, ...] = field(
        default_factory=lambda: (
            ChannelSpec(analyte="igg", label="anti-IgG"),
            ChannelSpec(analyte="crp", label="anti-CRP"),
            ChannelSpec(analyte=None, label="ref1"),
            ChannelSpec(analyte=None, label="ref2"),
        )
    )
    temperature_drift_v_per_s: float = 0.0
    seed: int = 99

    def _validate(self) -> None:
        if not isinstance(self.channels, tuple):
            object.__setattr__(self, "channels", tuple(self.channels))
        if len(self.channels) != 4:
            _fail("channels",
                  f"the array has exactly 4 channels, got {len(self.channels)}")
        for i, channel in enumerate(self.channels):
            if not isinstance(channel, ChannelSpec):
                _fail(f"channels.{i}", "must be a ChannelSpec")
        if not isinstance(self.temperature_drift_v_per_s, (int, float)) \
                or isinstance(self.temperature_drift_v_per_s, bool):
            _fail("temperature_drift_v_per_s",
                  f"must be a number, got {self.temperature_drift_v_per_s!r}")
        _integer("seed", self.seed, minimum=0)
