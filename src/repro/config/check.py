"""Spec self-check: ``python -m repro.config.check``.

Walks every registered reference spec (``REFERENCE_SPECS``), JSON
round-trips it, verifies the round-trip is exactly equal and hashes to
the same key, and exercises a dotted-path override on each composite.
``make spec-check`` runs this plus a CLI ``--set`` smoke; the same
coverage runs inside tier-1 via ``tests/config/test_spec_check.py``.

Exit code 0 when every spec passes, 1 otherwise.
"""

from __future__ import annotations

import sys

from .reference import REFERENCE_SPECS
from .specs import Spec, spec_hash

#: One cheap override per composite spec, proving the dotted paths work.
SMOKE_OVERRIDES: dict[str, dict[str, object]] = {
    "static_sensor": {"cantilever.length_um": 350,
                      "bridge.mismatch_sigma": 0.001},
    "resonant_sensor": {"loop.mode": 2, "liquid": "pbs"},
    "chip": {"channels.2.label": "blank", "temperature_drift_v_per_s": 1e-5},
}


def check_spec(name: str, spec: Spec) -> list[str]:
    """All failures of one reference spec (empty list = pass)."""
    failures: list[str] = []
    cls = type(spec)

    round_tripped = cls.from_json(spec.to_json())
    if round_tripped != spec:
        failures.append(f"{name}: JSON round-trip is not equal")
    if spec_hash(round_tripped) != spec_hash(spec):
        failures.append(f"{name}: round-trip changed the spec hash")

    for path, value in SMOKE_OVERRIDES.get(name, {}).items():
        overridden = spec.with_overrides({path: value})
        if overridden == spec:
            failures.append(f"{name}: override {path}={value} was a no-op")
        back = cls.from_dict(overridden.to_dict())
        if back != overridden:
            failures.append(f"{name}: overridden spec fails the round-trip")
    return failures


def main(argv: list[str] | None = None) -> int:
    failures: list[str] = []
    for name, spec in REFERENCE_SPECS.items():
        spec_failures = check_spec(name, spec)
        failures.extend(spec_failures)
        status = "FAIL" if spec_failures else "ok"
        print(f"  {name:<16s} {type(spec).__name__:<20s} "
              f"{spec_hash(spec)[:12]}  {status}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"spec-check: {len(REFERENCE_SPECS)} reference specs, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
