"""Builder registry: from declarative specs to live device objects.

``build(spec)`` dispatches on the spec's concrete type and constructs
the corresponding device object — a :class:`~repro.fabrication.release.
ReleasedCantilever` from a :class:`CantileverSpec`, a Wheatstone bridge
from a :class:`BridgeSpec`, a full :class:`~repro.core.StaticCantileverSensor`
from a :class:`StaticSensorSpec`, and so on.  Construction is strictly
deterministic: the same spec always builds a bit-identical device, which
is what makes :func:`~repro.config.specs.spec_hash` a sound cache key.

Heavy subsystem imports happen inside the builder bodies, never at
module scope, so ``repro.config`` stays importable from anywhere in the
package (``repro.core`` imports it for the ``from_spec`` constructors)
without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from ..errors import ConfigError
from .specs import (
    BridgeSpec,
    CantileverSpec,
    ChipSpec,
    ProcessSpec,
    ResonantSensorSpec,
    Spec,
    StaticReadoutSpec,
    StaticSensorSpec,
)

__all__ = [
    "build",
    "build_cantilever",
    "build_first_stage",
    "build_static_readout",
    "builder_for",
    "registered_spec_types",
]

_BUILDERS: dict[type, Callable[[Spec], Any]] = {}

S = TypeVar("S", bound=type)


def builder_for(spec_type: type) -> Callable:
    """Class decorator registering a build function for one spec type."""

    def register(fn: Callable[[Spec], Any]) -> Callable[[Spec], Any]:
        _BUILDERS[spec_type] = fn
        return fn

    return register


def build(spec: Spec) -> Any:
    """Construct the device object a spec describes.

    Raises :class:`~repro.errors.ConfigError` for spec types without a
    registered builder (e.g. the purely-parametric
    :class:`ResonantLoopSpec`, which is consumed by its parent sensor
    spec rather than built standalone).
    """
    builder = _BUILDERS.get(type(spec))
    if builder is None:
        known = ", ".join(sorted(t.__name__ for t in _BUILDERS))
        raise ConfigError(
            f"no builder registered for {type(spec).__name__}; "
            f"buildable spec types: {known}"
        )
    return builder(spec)


def registered_spec_types() -> tuple[type, ...]:
    """Spec types ``build`` accepts, in registration order."""
    return tuple(_BUILDERS)


# ---------------------------------------------------------------------------
# leaf builders
# ---------------------------------------------------------------------------


@builder_for(ProcessSpec)
def build_process(spec: ProcessSpec):
    """Post-CMOS flow of the spec'd etch-stop depth and beam coating."""
    from ..fabrication.process import PostCMOSFlow
    from ..units import um

    return PostCMOSFlow(
        keep_dielectrics_on_beam=spec.keep_dielectrics,
        nwell_depth=um(spec.nwell_depth_um),
    )


def build_cantilever(
    spec: CantileverSpec, process: ProcessSpec | None = None
):
    """Fabricate the spec'd beam through the (spec'd) post-CMOS flow."""
    from ..fabrication.release import fabricate_cantilever
    from ..units import um

    flow = build_process(process if process is not None else ProcessSpec())
    return fabricate_cantilever(
        um(spec.length_um),
        um(spec.width_um),
        flow,
        membrane_margin=um(spec.membrane_margin_um),
    )


@builder_for(CantileverSpec)
def _build_cantilever_default_process(spec: CantileverSpec):
    """``build(CantileverSpec)`` uses the default process; compose a
    sensor/chip spec (or call :func:`build_cantilever`) for a custom one."""
    return build_cantilever(spec)


@builder_for(BridgeSpec)
def build_bridge(spec: BridgeSpec):
    """Matched four-element bridge of the spec'd technology."""
    from ..transduction.mos_resistor import MOSBridgeTransistor
    from ..transduction.noise import HOOGE_ALPHA_DIFFUSED, HOOGE_ALPHA_MOS
    from ..transduction.piezoresistor import DiffusedResistor
    from ..transduction.wheatstone import matched_bridge

    if spec.kind == "diffused":
        element = DiffusedResistor(
            nominal_resistance=spec.nominal_resistance_ohm
        )
        hooge = HOOGE_ALPHA_DIFFUSED
    else:  # "pmos" — the only other validated kind
        element = MOSBridgeTransistor()
        hooge = HOOGE_ALPHA_MOS
    return matched_bridge(
        element,
        bias_voltage=spec.bias_voltage_v,
        mismatch_sigma=spec.mismatch_sigma,
        hooge_alpha=hooge,
        seed=spec.seed,
    )


def build_first_stage(spec: StaticReadoutSpec, rng=None):
    """The core amplifier inside the chopper stage of the Fig. 4 chain."""
    from ..circuits.amplifier import Amplifier

    return Amplifier(
        gain=spec.first_stage_gain,
        gbw=2e6,
        input_offset=spec.first_stage_offset_v,
        noise_density=25e-9,
        noise_corner=2e3,
        rails=(-2.5, 2.5),
        rng=rng,
    )


@builder_for(StaticReadoutSpec)
def build_static_readout(spec: StaticReadoutSpec, rng=None) -> dict:
    """All blocks of the Fig. 4 chain, keyed by stage name.

    ``rng`` defaults to a generator seeded with ``spec.rng_seed`` so two
    chains built from equal specs produce identical noise realizations —
    the property that keeps spec-keyed sweeps cacheable.
    """
    import numpy as np

    from ..circuits.amplifier import Amplifier
    from ..circuits.chopper import ChopperAmplifier
    from ..circuits.filters import LowPassFilter
    from ..circuits.offset_dac import OffsetCompensationDAC

    rng = rng if rng is not None else np.random.default_rng(spec.rng_seed)
    first_stage = build_first_stage(spec, rng=rng)
    return {
        "chopper": ChopperAmplifier(first_stage, spec.chop_frequency_hz),
        "lowpass": LowPassFilter(
            cutoff=spec.lowpass_cutoff_hz, order=spec.lowpass_order
        ),
        "offset_dac": OffsetCompensationDAC(
            full_scale=spec.dac_full_scale_v, bits=spec.dac_bits
        ),
        "gain2": Amplifier(
            gain=spec.gain2, gbw=2e6, input_offset=0.5e-3,
            noise_density=15e-9, noise_corner=1e3, rng=rng,
        ),
        "gain3": Amplifier(
            gain=spec.gain3, gbw=2e6, input_offset=0.5e-3,
            noise_density=15e-9, noise_corner=1e3, rng=rng,
        ),
    }


# ---------------------------------------------------------------------------
# composite builders (delegate to the core classes' from_spec constructors)
# ---------------------------------------------------------------------------


@builder_for(StaticSensorSpec)
def build_static_sensor(spec: StaticSensorSpec):
    from ..core.static_sensor import StaticCantileverSensor

    return StaticCantileverSensor.from_spec(spec)


@builder_for(ResonantSensorSpec)
def build_resonant_sensor(spec: ResonantSensorSpec):
    from ..core.resonant_sensor import ResonantCantileverSensor

    return ResonantCantileverSensor.from_spec(spec)


@builder_for(ChipSpec)
def build_chip(spec: ChipSpec):
    from ..core.chip import BiosensorChip

    return BiosensorChip.from_spec(spec)
