"""The paper's reference device, declared once as spec constants.

Every preset factory, CLI default, bench, and example starts from these
specs, so the "device as published" — the 0.8 um process with its 5 um
n-well etch stop, the 500 x 100 um released beam, the diffused bridge of
the static system and the PMOS bridge of the resonant one — exists in
exactly one place and cannot drift between entry points.

:data:`REFERENCE_SPECS` is the registry ``make spec-check`` and the
tier-1 spec tests walk: every constant here must JSON-round-trip and
(where a builder exists) build.
"""

from __future__ import annotations

from .specs import (
    BridgeSpec,
    CantileverSpec,
    ChannelSpec,
    ChipSpec,
    ProcessSpec,
    ResonantLoopSpec,
    ResonantSensorSpec,
    Spec,
    StaticReadoutSpec,
    StaticSensorSpec,
)

__all__ = [
    "REFERENCE_CANTILEVER",
    "REFERENCE_CHIP",
    "REFERENCE_PROCESS",
    "REFERENCE_RESONANT_BRIDGE",
    "REFERENCE_RESONANT_LOOP",
    "REFERENCE_RESONANT_SENSOR",
    "REFERENCE_SPECS",
    "REFERENCE_STATIC_BRIDGE",
    "REFERENCE_STATIC_READOUT",
    "REFERENCE_STATIC_SENSOR",
]

#: The 0.8 um post-CMOS flow with the 5 um electrochemical etch stop.
REFERENCE_PROCESS = ProcessSpec()

#: The drawn 500 x 100 um cantilever of both systems.
REFERENCE_CANTILEVER = CantileverSpec()

#: Diffused-resistor bridge of the static system (0.2 % mismatch).
REFERENCE_STATIC_BRIDGE = BridgeSpec()

#: PMOS-in-triode bridge of the resonant system (0.5 % mismatch).
REFERENCE_RESONANT_BRIDGE = BridgeSpec(
    kind="pmos", mismatch_sigma=5e-3, seed=43
)

#: The Fig. 4 chopper-stabilized readout chain.
REFERENCE_STATIC_READOUT = StaticReadoutSpec()

#: The Fig. 5 closed-loop operating point.
REFERENCE_RESONANT_LOOP = ResonantLoopSpec()

#: Full static system: reference device, IgG chemistry, Fig. 4 chain.
REFERENCE_STATIC_SENSOR = StaticSensorSpec()

#: Full resonant system: reference device in water, Fig. 5 loop.
REFERENCE_RESONANT_SENSOR = ResonantSensorSpec()

#: The 4-channel array chip (two assays + two blocked references).
REFERENCE_CHIP = ChipSpec(
    channels=(
        ChannelSpec(analyte="igg", label="anti-IgG"),
        ChannelSpec(analyte="crp", label="anti-CRP"),
        ChannelSpec(analyte=None, label="ref1"),
        ChannelSpec(analyte=None, label="ref2"),
    )
)

#: Name -> spec registry of every reference constant (spec-check walks it).
REFERENCE_SPECS: dict[str, Spec] = {
    "process": REFERENCE_PROCESS,
    "cantilever": REFERENCE_CANTILEVER,
    "static_bridge": REFERENCE_STATIC_BRIDGE,
    "resonant_bridge": REFERENCE_RESONANT_BRIDGE,
    "static_readout": REFERENCE_STATIC_READOUT,
    "resonant_loop": REFERENCE_RESONANT_LOOP,
    "static_sensor": REFERENCE_STATIC_SENSOR,
    "resonant_sensor": REFERENCE_RESONANT_SENSOR,
    "chip": REFERENCE_CHIP,
}
