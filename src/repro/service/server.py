"""Async HTTP front end: submit sweeps, poll status, fetch results.

Stdlib only — a :class:`http.server.ThreadingHTTPServer` (one thread
per connection) in front of a :class:`ReproService` facade, with the
:class:`~repro.service.pump.WorkerPump` doing the actual computing in
the background.  Submission is asynchronous by construction: ``POST
/v1/jobs`` returns as soon as the job row is durable, and clients poll
(or long-poll by re-requesting) until the job reaches a terminal
phase.

Endpoints (all JSON; errors are ``{"error": "..."}`` with a 4xx/5xx
status):

===========================================  =================================
``GET  /healthz``                            readiness probe (health snapshot
                                             + job counts + pump liveness)
``POST /v1/jobs``                            submit a :class:`JobSpec`; 201 +
                                             the job record (dedup happens
                                             here: same ``work_hash`` joins
                                             the earlier job's computation)
``GET  /v1/jobs``                            list jobs (``?tenant=``,
                                             ``?phase=`` filters)
``GET  /v1/jobs/<id>``                       status payload: state, progress,
                                             per-point outcomes, resilience
``GET  /v1/jobs/<id>/results``               finished table (404 until done;
                                             ``?format=ndjson`` streams one
                                             row per line)
``POST /v1/jobs/<id>/cancel``                request cancellation (also
``DELETE /v1/jobs/<id>``                     honored for queued jobs)
``POST /v1/fabric/lease``                    lease one sweep chunk for a
                                             ``repro worker`` node
``POST /v1/fabric/heartbeat|complete|fail``  chunk lease lifecycle
``POST /v1/fabric/outcomes``                 bulk per-point outcome upsert
``GET  /v1/fabric/chunks/<id>``              chunk table + counts of a job
``GET|PUT /v1/cache/<key>``                  raw checksummed cache payloads
                                             (the remote tier transport;
                                             PUT re-validates the checksum)
===========================================  =================================

The facade is deliberately transport-free: tests and in-process
embedders call :class:`ReproService` directly; the HTTP layer only
parses, dispatches, and serializes.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..errors import JobError, ServiceError
from .health import health_snapshot, resilience_snapshot
from .jobs import JobRecord, JobSpec, JobState, new_job_id
from .pump import WorkerPump
from .scheduler import SchedulerPolicy
from .store import JobStore
from .transport import (
    DEADLINE_HEADER,
    RETRY_AFTER_HEADER,
    SHED_HEADER,
    TransportCounters,
)

__all__ = ["ReproHTTPServer", "ReproService", "serve"]

logger = logging.getLogger(__name__)


class ReproService:
    """The service facade: everything the HTTP layer (or a test) calls.

    Owns the durable store, the shared result cache, and the worker
    pump.  All public methods speak JSON-ready dicts (except
    :meth:`submit`, which takes the typed :class:`JobSpec`), so the
    transport layer never reaches around the facade.
    """

    def __init__(
        self,
        store: JobStore,
        cache,
        policy: SchedulerPolicy | None = None,
        pump_workers: int = 1,
        poll_interval: float = 0.05,
        max_inflight: int = 32,
        shed_retry_after: float = 0.25,
    ) -> None:
        self.store = store
        self.cache = cache
        self.policy = policy or SchedulerPolicy()
        self.pump = WorkerPump(
            store, cache, self.policy,
            workers=pump_workers, poll_interval=poll_interval,
        )
        self._started_at = time.time()
        # -- backpressure + deadline shedding --------------------------------
        # max_inflight bounds the requests being served at once (the
        # ThreadingHTTPServer would otherwise grow a thread per socket
        # without limit); the 33rd gets 503 + Retry-After instead of a
        # seat.  /healthz is exempt so probes always answer.
        if max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.shed_retry_after = float(shed_retry_after)
        self.transport = TransportCounters()
        self._inflight = 0
        self._peak_inflight = 0
        self._inflight_lock = threading.Lock()

    # -- admission control ---------------------------------------------------

    def begin_request(self) -> bool:
        """Admit one request; False when the inflight bound is hit."""
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self.transport.note("backpressure_rejections")
                return False
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
        self.transport.note("requests")
        return True

    def end_request(self) -> None:
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)

    def note_deadline_shed(self) -> None:
        self.transport.note("deadline_sheds")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the pump (re-queues jobs orphaned by a previous process)."""
        self.pump.start()

    def stop(self) -> None:
        self.pump.stop()

    # -- commands ------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Durably enqueue a job; cross-tenant dedup happens here.

        If an earlier, non-failed job asked for the same computation
        (equal ``work_hash``), the new job is linked to it via
        ``dedup_of``: the scheduler holds it until the primary settles,
        after which every point — and the finished table itself — is a
        result-cache hit.  The link is metadata, not a shortcut: the
        follower still reports its own per-tenant record and status.
        """
        work_hash = spec.work_hash()
        primary = None
        for candidate in self.store.find_by_work_hash(work_hash):
            if candidate.dedup_of is None and candidate.state.phase not in (
                "failed", "cancelled"
            ):
                primary = candidate
                break
        record = JobRecord(
            job_id=new_job_id(),
            spec=spec,
            state=JobState(
                phase="queued",
                total=len(spec.values),
                submitted_at=time.time(),
            ),
            work_hash=work_hash,
            dedup_of=primary.job_id if primary is not None else None,
        )
        self.store.put(record)
        if spec.fabric:
            from ..analysis import plan_chunks

            self.store.create_chunks(
                record.job_id,
                plan_chunks(len(spec.values), spec.chunk_size),
            )
        return record

    def status(self, job_id: str) -> dict[str, Any]:
        """Full status payload of one job (raises JobError on unknown id)."""
        record = self._get(job_id)
        payload = record.to_dict()
        state = record.state
        payload["progress"] = {
            "total": state.total,
            "completed": state.completed,
            "failed": state.failed,
            "cache_hits": state.cache_hits,
            "retries": state.retries,
            "fraction": (state.completed / state.total) if state.total else 0.0,
        }
        payload["outcomes"] = [
            o.to_dict() for o in self.store.outcomes(job_id)
        ]
        if payload["resilience"] is None and not state.terminal:
            # a live job reports the engine's *current* resilience state;
            # finished jobs keep the snapshot taken at completion
            payload["resilience"] = resilience_snapshot()
        return payload

    def results(self, job_id: str) -> dict[str, Any]:
        """The finished sweep table (raises until the job is done)."""
        record = self._get(job_id)
        if record.state.phase != "done" or record.result_key is None:
            raise ServiceError(
                f"job {job_id} has no results yet (phase "
                f"{record.state.phase!r})"
            )
        payload = self.cache.get(record.result_key)
        if payload is self.cache.MISS:
            raise ServiceError(
                f"result blob for job {job_id} is no longer in the cache; "
                "resubmit the job to recompute it"
            )
        return dict(payload)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation; immediate for queued jobs."""
        record = self.store.request_cancel(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        self.pump.request_cancel(job_id)
        return record.to_dict()

    def jobs(self, tenant: str | None = None,
             phase: str | None = None) -> list[dict[str, Any]]:
        """Compact listing rows (id, tenant, phase, progress)."""
        rows = []
        for record in self.store.list_jobs(tenant=tenant, phase=phase):
            state = record.state
            rows.append({
                "job_id": record.job_id,
                "tenant": record.spec.tenant,
                "priority": record.spec.priority,
                "phase": state.phase,
                "completed": state.completed,
                "total": state.total,
                "work_hash": record.work_hash,
                "dedup_of": record.dedup_of,
                "submitted_at": state.submitted_at,
            })
        return rows

    def health(self) -> dict[str, Any]:
        """Readiness payload: engine snapshot + service vitals."""
        snapshot = health_snapshot()
        info = self.cache.cache_info()
        snapshot["service"] = {
            "pump_alive": self.pump.alive,
            "pump_workers": self.pump.workers,
            "tenant_quota": self.policy.tenant_quota,
            "uptime_s": round(time.time() - self._started_at, 3),
            "jobs": self.store.counts(),
            "cache": {
                "hits": info.hits,
                "misses": info.misses,
                "stores": info.stores,
                "corruptions": info.corruptions,
            },
        }
        tiers = getattr(info, "tiers", ())
        if tiers:
            snapshot["service"]["cache"]["tiers"] = [
                tier.as_dict() for tier in tiers
            ]
        transport = self.transport.snapshot()
        with self._inflight_lock:
            transport["inflight"] = self._inflight
            transport["peak_inflight"] = self._peak_inflight
        transport["max_inflight"] = self.max_inflight
        transport["shed_retry_after_s"] = self.shed_retry_after
        snapshot["service"]["transport"] = transport
        snapshot["service"]["fabric"] = dict(self.pump.fabric_stats)
        snapshot["ok"] = bool(snapshot["ok"] and self.pump.alive)
        return snapshot

    # -- fabric (chunk-leasing workers) --------------------------------------

    def fabric_lease(self, worker_id: str, lease_seconds: float,
                     job_id: str | None = None) -> dict[str, Any] | None:
        """Expire stale leases, then lease one chunk for ``worker_id``."""
        self.store.expire_chunk_leases()
        chunk = self.store.lease_chunk(worker_id, lease_seconds, job_id)
        return chunk.to_dict() if chunk is not None else None

    def fabric_heartbeat(self, job_id: str, chunk_id: int, worker_id: str,
                         lease_seconds: float) -> dict[str, Any]:
        ok = self.store.heartbeat_chunk(job_id, chunk_id, worker_id,
                                        lease_seconds)
        return {"ok": ok}

    def fabric_complete(self, job_id: str, chunk_id: int,
                        worker_id: str) -> dict[str, Any]:
        ok = self.store.complete_chunk(job_id, chunk_id, worker_id)
        return {"ok": ok}

    def fabric_fail(self, job_id: str, chunk_id: int, worker_id: str,
                    error: str, max_attempts: int = 3) -> dict[str, Any]:
        state = self.store.fail_chunk(job_id, chunk_id, worker_id, error,
                                      max_attempts)
        return {"state": state}

    def fabric_outcomes(self, job_id: str,
                        outcomes: list[dict]) -> dict[str, Any]:
        from .store import PointOutcome

        self._get(job_id)
        rows = [PointOutcome(**{k: o[k] for k in
                                ("index", "ok", "cached", "retries",
                                 "error", "health") if k in o})
                for o in outcomes]
        self.store.record_outcomes(job_id, rows)
        return {"ok": True, "recorded": len(rows)}

    def fabric_chunks(self, job_id: str) -> dict[str, Any]:
        self._get(job_id)
        return {
            "counts": self.store.chunk_counts(job_id),
            "chunks": [c.to_dict() for c in self.store.chunks(job_id)],
        }

    def cache_export(self, key: str) -> bytes | None:
        """Raw checksummed cache payload, or None (needs a TieredCache)."""
        export = getattr(self.cache, "export_entry", None)
        if export is None:
            raise ServiceError("cache tier transport needs a TieredCache")
        return export(key)

    def cache_import(self, key: str, raw: bytes) -> bool:
        imp = getattr(self.cache, "import_entry", None)
        if imp is None:
            raise ServiceError("cache tier transport needs a TieredCache")
        return imp(key, raw)

    def _get(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        return record


class _Handler(BaseHTTPRequestHandler):
    """Route/parse/serialize; all decisions live in :class:`ReproService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("%s - %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_raw(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobError("request body: expected a JSON job spec")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as err:
            raise JobError(f"request body: invalid JSON: {err}") from None

    def _send_shed(self, why: str) -> None:
        """503 a request the service refuses to start (shed, not failed)."""
        service = self.service
        body = json.dumps({"error": f"request shed: {why}"}).encode()
        self.send_response(503)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header(SHED_HEADER, why)
        self.send_header(RETRY_AFTER_HEADER,
                         f"{service.shed_retry_after:g}")
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        service = self.service
        admitted = False
        # /healthz bypasses shedding and the inflight bound: the probe
        # that reports overload must keep answering while overloaded
        probe = parts == ["healthz"]
        if not probe:
            deadline = self.headers.get(DEADLINE_HEADER)
            if deadline is not None:
                try:
                    deadline_at = float(deadline)
                except ValueError:
                    self._send_error(
                        400, f"bad {DEADLINE_HEADER} header: {deadline!r}")
                    return
                if time.time() >= deadline_at:
                    service.note_deadline_shed()
                    self._send_shed("deadline")
                    return
            if not service.begin_request():
                self._send_shed("backpressure")
                return
            admitted = True
        try:
            handled = self._route(method, parts, query)
        except JobError as err:
            self._send_error(400, str(err))
            return
        except ServiceError as err:
            self._send_error(409, str(err))
            return
        except Exception as err:  # noqa: BLE001 - a request must answer
            logger.exception("unhandled error serving %s %s",
                             method, self.path)
            self._send_error(500, f"{type(err).__name__}: {err}")
            return
        finally:
            if admitted:
                service.end_request()
        if not handled:
            self._send_error(404, f"no route for {method} {url.path}")

    # -- routes --------------------------------------------------------------

    def _route(self, method: str, parts: list[str], query: dict) -> bool:
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            payload = service.health()
            self._send_json(200 if payload["ok"] else 503, payload)
            return True
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "cache":
            return self._route_cache(method, parts[2:])
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "fabric":
            return self._route_fabric(method, parts[2:])
        if len(parts) < 2 or parts[0] != "v1" or parts[1] != "jobs":
            return False
        rest = parts[2:]

        if not rest:
            if method == "POST":
                spec = JobSpec.from_dict(self._read_body())
                record = service.submit(spec)
                self._send_json(201, record.to_dict())
                return True
            if method == "GET":
                self._send_json(200, {
                    "jobs": service.jobs(
                        tenant=query.get("tenant"), phase=query.get("phase")
                    )
                })
                return True
            return False

        job_id = rest[0]
        action = rest[1] if len(rest) > 1 else None
        if action is None:
            if method == "GET":
                try:
                    self._send_json(200, service.status(job_id))
                except JobError as err:
                    self._send_error(404, str(err))
                return True
            if method == "DELETE":
                self._send_json(200, service.cancel(job_id))
                return True
            return False
        if action == "results" and method == "GET":
            try:
                payload = service.results(job_id)
            except JobError as err:
                self._send_error(404, str(err))
                return True
            if query.get("format") == "ndjson":
                self._stream_ndjson(payload)
            else:
                self._send_json(200, payload)
            return True
        if action == "cancel" and method == "POST":
            self._send_json(200, service.cancel(job_id))
            return True
        return False

    def _route_cache(self, method: str, rest: list[str]) -> bool:
        """``GET|PUT /v1/cache/<key>`` — the tier-transport blob API.

        Raw octet streams, not JSON: the body is the cache's
        checksummed payload verbatim, and PUT re-validates checksum and
        key before accepting (a corrupt or mislabeled blob gets a 400,
        never a cache entry).
        """
        if len(rest) != 1 or not rest[0]:
            return False
        key = rest[0]
        if method == "GET":
            raw = self.service.cache_export(key)
            if raw is None:
                self._send_error(404, f"no cache entry {key!r}")
            else:
                self._send_bytes(200, raw)
            return True
        if method == "PUT":
            if self.service.cache_import(key, self._read_raw()):
                self._send_json(200, {"ok": True})
            else:
                self._send_error(400, f"rejected cache payload for {key!r}")
            return True
        return False

    def _route_fabric(self, method: str, rest: list[str]) -> bool:
        """``POST /v1/fabric/<verb>`` — the chunk-lease wire protocol."""
        service = self.service
        if method == "GET" and len(rest) == 2 and rest[0] == "chunks":
            self._send_json(200, service.fabric_chunks(rest[1]))
            return True
        if method != "POST" or len(rest) != 1:
            return False
        body = self._read_body()
        if rest[0] == "lease":
            chunk = service.fabric_lease(
                str(body["worker_id"]),
                float(body.get("lease_seconds", 30.0)),
                body.get("job_id"),
            )
            self._send_json(200, {"chunk": chunk})
            return True
        if rest[0] == "heartbeat":
            self._send_json(200, service.fabric_heartbeat(
                str(body["job_id"]), int(body["chunk_id"]),
                str(body["worker_id"]),
                float(body.get("lease_seconds", 30.0)),
            ))
            return True
        if rest[0] == "complete":
            self._send_json(200, service.fabric_complete(
                str(body["job_id"]), int(body["chunk_id"]),
                str(body["worker_id"]),
            ))
            return True
        if rest[0] == "fail":
            self._send_json(200, service.fabric_fail(
                str(body["job_id"]), int(body["chunk_id"]),
                str(body["worker_id"]), str(body.get("error", "")),
                int(body.get("max_attempts", 3)),
            ))
            return True
        if rest[0] == "outcomes":
            self._send_json(200, service.fabric_outcomes(
                str(body["job_id"]), list(body.get("outcomes", ())),
            ))
            return True
        return False

    def _stream_ndjson(self, payload: dict) -> None:
        """One JSON line per grid point (the streaming fetch path)."""
        names = list(payload.get("columns", {}))
        points = payload.get("points", [])
        lines = []
        for i, parameter in enumerate(payload.get("parameters", [])):
            row = {"index": i, payload.get("parameter_name", "parameter"):
                   parameter}
            for name in names:
                row[name] = payload["columns"][name][i]
            if i < len(points):
                row["ok"] = points[i]["ok"]
            lines.append(json.dumps(row))
        body = ("\n".join(lines) + "\n").encode() if lines else b""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")


class ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service facade for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ReproService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def serve(
    host: str,
    port: int,
    service: ReproService,
    *,
    background: bool = False,
) -> ReproHTTPServer:
    """Bind, start the pump, and serve.

    With ``background=True`` the accept loop runs in a daemon thread and
    the bound server is returned immediately (``server.server_address``
    has the ephemeral port when ``port=0``) — the embedding used by
    tests and ``make serve-check``.  Otherwise the call blocks until
    interrupted.
    """
    server = ReproHTTPServer((host, port), service)
    service.start()
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return server
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        service.stop()
        server.server_close()
    return server
