"""Multi-tenant job scheduling: quotas, priorities, dedup holds.

Pure decision logic — no threads, no SQL.  The pump snapshots the
store's queued/running jobs and asks :func:`select_next` which job to
claim; keeping the policy side-effect-free makes every scheduling
decision unit-testable as a plain function of its inputs.

Ordering within the eligible set is priority first (higher wins), then
submission time, then job id (a total order, so scheduling is
deterministic under equal timestamps).  Two fairness gates remove jobs
from the eligible set without reordering it:

* **tenant quota** — a tenant already running ``tenant_quota`` jobs
  contributes nothing more until one finishes, so one noisy tenant
  cannot monopolize the pump;
* **dedup hold** — a job marked ``dedup_of`` waits until its primary
  reaches a terminal phase: once the primary is done, every point of
  the follower is a result-cache hit (the shared computation), and
  running it earlier would recompute the very work dedup exists to
  share.  A failed or cancelled primary releases the follower to run
  for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ServiceError
from .jobs import JOB_TERMINAL_PHASES, JobRecord

__all__ = ["SchedulerPolicy", "eligible_jobs", "select_next"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable fairness knobs of the pump's scheduler.

    Parameters
    ----------
    tenant_quota:
        Maximum jobs one tenant may have running at once (>= 1).
    """

    tenant_quota: int = 2

    def __post_init__(self) -> None:
        if self.tenant_quota < 1:
            raise ServiceError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )


def _order_key(record: JobRecord):
    return (-record.spec.priority, record.state.submitted_at, record.job_id)


def eligible_jobs(
    queued: Sequence[JobRecord],
    running: Sequence[JobRecord],
    policy: SchedulerPolicy,
    phase_of: Mapping[str, str] | None = None,
) -> list[JobRecord]:
    """The queued jobs the pump may claim right now, best first.

    Parameters
    ----------
    queued / running:
        Store snapshots of the two live phases.
    policy:
        Fairness knobs.
    phase_of:
        Phase lookup for dedup primaries (``job_id -> phase``).  Jobs in
        ``queued``/``running`` are known implicitly; primaries outside
        both (already terminal) default to released unless listed here.
    """
    load: dict[str, int] = {}
    for record in running:
        load[record.spec.tenant] = load.get(record.spec.tenant, 0) + 1

    phases = dict(phase_of or {})
    for record in queued:
        phases.setdefault(record.job_id, record.state.phase)
    for record in running:
        phases.setdefault(record.job_id, record.state.phase)

    chosen = []
    for record in sorted(queued, key=_order_key):
        if load.get(record.spec.tenant, 0) >= policy.tenant_quota:
            continue
        if record.dedup_of is not None:
            primary_phase = phases.get(record.dedup_of)
            # a primary still queued/running holds its followers; an
            # unknown or terminal primary releases them
            if primary_phase is not None \
                    and primary_phase not in JOB_TERMINAL_PHASES:
                continue
        chosen.append(record)
    return chosen


def select_next(
    queued: Sequence[JobRecord],
    running: Sequence[JobRecord],
    policy: SchedulerPolicy,
    phase_of: Mapping[str, str] | None = None,
) -> JobRecord | None:
    """The single best claimable job, or None when nothing is eligible."""
    ranked = eligible_jobs(queued, running, policy, phase_of)
    return ranked[0] if ranked else None
