"""Simulation-as-a-service: durable jobs, a scheduler, and an HTTP face.

The service layer turns the repo's sweep machinery into a long-running
multi-tenant facility:

* :mod:`repro.service.jobs` — the job model (:class:`JobSpec`,
  :class:`JobState`, :class:`JobRecord`): frozen dataclasses with JSON
  round-trips and a content-addressed ``work_hash`` idempotency key.
* :mod:`repro.service.store` — the durable :class:`JobStore` (SQLite
  behind an abstract interface, versioned schema + migrations).
* :mod:`repro.service.scheduler` — pure multi-tenant scheduling:
  priorities, per-tenant quotas, dedup holds.
* :mod:`repro.service.pump` — worker threads claiming jobs and driving
  them through :func:`repro.analysis.run_sweep_outcomes`.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  stdlib HTTP front end (``repro serve``) and its urllib client
  (``repro submit|status|results|cancel``).
* :mod:`repro.service.health` — the machine-readable health snapshot
  shared by ``/healthz`` and ``repro health --json``.
* :mod:`repro.service.transport` — the wire protocol the client and
  server share: deadline/shed headers and the process-global transport
  counters (retries, deadline sheds, backpressure rejections).
* :mod:`repro.service.chaos` — the kill-anything-anytime chaos
  harness (``repro chaos`` / ``make chaos-check``): seeded fault
  schedules against real server + worker subprocesses.

Everything is stdlib + the repo's own engine: no new dependencies.
"""

from .chaos import ChaosReport, run_chaos_suite
from .client import RemoteFabricStore, ServiceClient
from .health import health_snapshot, resilience_snapshot
from .jobs import (
    JOB_PHASES,
    JOB_TERMINAL_PHASES,
    JobRecord,
    JobSpec,
    JobState,
    device_spec_from_dict,
    new_job_id,
)
from .pump import WorkerPump, execute_job, sweep_result_key
from .scheduler import SchedulerPolicy, eligible_jobs, select_next
from .server import ReproHTTPServer, ReproService, serve
from .store import (
    CHUNK_STATES,
    SCHEMA_VERSION,
    ChunkRow,
    JobStore,
    PointOutcome,
    SQLiteJobStore,
    open_job_store,
)
from .transport import (
    TransportCounters,
    reset_transport,
    transport_counters,
    transport_report,
)

__all__ = [
    "CHUNK_STATES",
    "ChaosReport",
    "ChunkRow",
    "JOB_PHASES",
    "JOB_TERMINAL_PHASES",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "PointOutcome",
    "RemoteFabricStore",
    "ReproHTTPServer",
    "ReproService",
    "SCHEMA_VERSION",
    "SQLiteJobStore",
    "SchedulerPolicy",
    "ServiceClient",
    "TransportCounters",
    "WorkerPump",
    "device_spec_from_dict",
    "eligible_jobs",
    "execute_job",
    "health_snapshot",
    "new_job_id",
    "open_job_store",
    "reset_transport",
    "resilience_snapshot",
    "run_chaos_suite",
    "select_next",
    "serve",
    "sweep_result_key",
    "transport_counters",
    "transport_report",
]
