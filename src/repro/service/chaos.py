"""Kill-anything-anytime chaos harness for the distributed fabric.

The capstone of the fault-injection PRs: every schedule here boots a
**real** ``repro serve`` subprocess on an ephemeral port, runs real
``repro worker`` subprocesses against it over HTTP, and injures the
run with a seeded :class:`~repro.engine.resilience.FaultPlan` shipped
to the victim process through the :data:`~repro.engine.resilience.FAULT_PLAN_ENV`
environment variable (or, for the ``kill`` schedule, with a literal
``SIGKILL`` delivered mid-chunk).  Afterwards it proves the fabric's
contract held anyway:

* **bit-exactness** — the finished table is ``np.array_equal`` to the
  clean serial sweep of the same grid;
* **zero recomputes** — the sum of ``points_computed`` across workers
  equals exactly the points the disaster left missing, proven from the
  per-worker ``--stats-json`` dumps and the server cache's blob count;
* **no job stuck** — the job reaches ``done`` within a bounded wait;
* **no double completion** — the server's chunk table ends all-``done``
  and workers' ``chunks_done`` sum to the chunk count.

Schedules (one per distinct disaster, all derived from one seed):

=================  ==========================================================
``kill``           ``kill -9`` a worker mid-chunk, resume with two fresh ones
``crashpoint``     ``fabric.crash``: die between cache-write and complete
``brownout``       ``cache.remote``: remote tier errors until the breaker
                   trips; write-behind queue drains on recovery
``transport``      ``http.request``: refused / hung / 5xx requests absorbed
                   by the client retry policy
``lease_skew``     ``fabric.lease`` + ``fabric.heartbeat``: collapsed lease
                   TTL and a lost heartbeat force a mid-chunk abandon
``store_contention``  server-side ``store.op`` (SQLITE_BUSY) and
                   ``store.claim`` (CAS races) plus a worker-side
                   ``fabric.complete`` lost ack (duplicate completion)
=================  ==========================================================

``repro chaos`` and ``tools/chaos_check.py`` are thin drivers around
:func:`run_chaos_suite`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..engine.resilience import FAULT_PLAN_ENV, FaultPlan, FaultSpec

__all__ = ["ChaosReport", "SCHEDULES", "run_chaos_suite"]

#: Sweep path every schedule exercises (the paper's headline parameter).
PATH = "cantilever.length_um"

#: Worker exit code of a --points-limit / fabric.crash hard exit.
CRASH_EXIT_CODE = 43


@dataclass
class ChaosReport:
    """What one chaos schedule did and whether its invariants held."""

    schedule: str
    seed: int
    passed: bool = False
    duration_s: float = 0.0
    error: str = ""
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "passed": self.passed,
            "duration_s": round(self.duration_s, 3),
            "error": self.error,
            "details": self.details,
        }


class ChaosFailure(AssertionError):
    """An invariant a chaos schedule promised did not hold."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosFailure(message)


def _schedule_seed(seed: int, name: str) -> int:
    """Deterministic per-schedule sub-seed (sha256, not Python hash)."""
    digest = hashlib.sha256(f"repro-chaos:{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


class _Scenario:
    """One schedule's disposable world: workdir, server, grid, reference."""

    def __init__(self, name: str, root: Path, seed: int, *,
                 points: int, chunk_size: int, duration: float) -> None:
        self.name = name
        self.seed = _schedule_seed(seed, name)
        self.dir = root / name
        self.dir.mkdir(parents=True, exist_ok=True)
        self.points = points
        self.chunk_size = chunk_size
        self.n_chunks = -(-points // chunk_size)
        self.duration = duration
        # a seed-derived grid offset so two seeds never share cache keys
        offset = (self.seed % 1000) / 100.0
        self.values = [round(170.0 + offset + 0.5 * i, 3)
                       for i in range(points)]
        self.server: subprocess.Popen | None = None
        self.client = None
        self.job_id: str | None = None

    # -- processes -----------------------------------------------------------

    def _env(self, plan: FaultPlan | None) -> dict:
        src = Path(__file__).resolve().parents[2]
        env = {"PYTHONPATH": str(src),
               "PATH": "/usr/bin:/bin:/usr/local/bin"}
        if plan is not None:
            env[FAULT_PLAN_ENV] = plan.to_json()
        return env

    def start_server(self, plan: FaultPlan | None = None) -> None:
        self.server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--db", str(self.dir / "jobs.sqlite"),
             "--cache-dir", str(self.dir / "server-cache")],
            env=self._env(plan), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
        )
        line = self.server.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:
            raise ChaosFailure(f"server printed no listening line: {line!r}")
        from .client import ServiceClient

        self.url = match.group(1)
        self.client = ServiceClient(self.url, timeout=30)

    def submit(self) -> str:
        from .jobs import JobSpec
        from ..config import REFERENCE_RESONANT_SENSOR

        record = self.client.submit(JobSpec(
            base=REFERENCE_RESONANT_SENSOR.to_dict(), path=PATH,
            values=tuple(self.values), duration=self.duration,
            tenant=f"chaos-{self.name}", fabric=True,
            chunk_size=self.chunk_size,
        ))
        self.job_id = record["job_id"]
        return self.job_id

    def worker(self, tag: str, plan: FaultPlan | None = None,
               *, lease_seconds: float = 2.0, idle_exit: float = 6.0,
               max_attempts: int = 3) -> subprocess.Popen:
        """Spawn one ``repro worker --url`` node; stats land per tag."""
        argv = [
            sys.executable, "-m", "repro.cli", "worker",
            "--url", self.url,
            "--cache-dir", str(self.dir / f"worker-{tag}-cache"),
            "--job-id", self.job_id,
            "--lease-seconds", str(lease_seconds),
            "--idle-exit", str(idle_exit),
            "--max-attempts", str(max_attempts),
            "--stats-json", str(self.dir / f"stats-{tag}.json"),
        ]
        return subprocess.Popen(
            argv, env=self._env(plan), stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True,
        )

    def finish_worker(self, proc: subprocess.Popen, *,
                      expect: int = 0, timeout: float = 300.0) -> None:
        _, stderr = proc.communicate(timeout=timeout)
        _require(proc.returncode == expect,
                 f"worker exited {proc.returncode}, expected {expect}:\n"
                 f"{stderr}")

    def stats(self, tag: str) -> dict:
        return json.loads((self.dir / f"stats-{tag}.json").read_text())

    def server_blobs(self) -> int:
        """Checksummed result blobs in the server's cache directory."""
        cache = self.dir / "server-cache"
        return sum(1 for _ in cache.rglob("*.pkl")) if cache.exists() else 0

    def stop_server(self) -> None:
        if self.server is None:
            return
        self.server.terminate()
        try:
            self.server.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
            self.server.kill()
            self.server.wait()
        self.server = None

    # -- invariants ----------------------------------------------------------

    def wait_done(self, timeout: float = 120.0) -> dict:
        """No-job-stuck invariant: the job must settle ``done`` in time."""
        final = self.client.wait(self.job_id, timeout=timeout)
        _require(final["state"]["phase"] == "done",
                 f"job ended {final['state']['phase']!r}: "
                 f"{final['state'].get('error', '')}")
        return final

    def assert_all_chunks_done_once(self) -> None:
        counts = self.client.fabric_chunks(self.job_id)["counts"]
        _require(counts == {"done": self.n_chunks},
                 f"chunk table not exactly-once done: {counts}")

    def assert_bit_exact(self) -> None:
        """The served table must equal the clean serial sweep exactly."""
        import numpy as np

        table = self.client.results(self.job_id)
        reference = _serial_reference(tuple(self.values), self.duration)
        _require(list(table["parameters"]) == self.values,
                 "result parameters differ from the submitted grid")
        for name, column in reference.items():
            got = table["columns"].get(name)
            _require(got is not None, f"column {name} missing from results")
            _require(
                np.array_equal(np.asarray(got, dtype=float), column),
                f"column {name} deviates from the clean serial sweep",
            )


_REFERENCES: dict = {}


def _serial_reference(values: tuple, duration: float) -> dict:
    """Clean serial sweep columns for a grid (memoized per grid)."""
    import numpy as np

    key = (values, duration)
    if key not in _REFERENCES:
        from ..analysis import LoopSweepTask, override_grid
        from ..config import REFERENCE_RESONANT_SENSOR

        task = LoopSweepTask(duration=duration)
        grid = override_grid(REFERENCE_RESONANT_SENSOR, PATH, list(values))
        rows = [task(point) for point in grid]
        _REFERENCES[key] = {
            name: np.asarray([row[name] for row in rows], dtype=float)
            for name in rows[0]
        }
    return _REFERENCES[key]


# -- schedules ----------------------------------------------------------------


def _run_kill(sc: _Scenario) -> dict:
    """kill -9 a worker mid-chunk; two fresh workers resume, zero recompute."""
    sc.duration = 0.05  # slow points: a fat window to land the SIGKILL in
    sc.start_server()
    sc.submit()
    doomed = sc.worker("doomed", lease_seconds=2.0)
    deadline = time.monotonic() + 60.0
    while sc.server_blobs() < 2:
        _require(doomed.poll() is None, "worker exited before the kill")
        _require(time.monotonic() < deadline, "no blobs appeared to kill at")
        time.sleep(0.005)
    doomed.send_signal(signal.SIGKILL)
    doomed.wait(timeout=30)
    _require(doomed.returncode == -signal.SIGKILL,
             f"doomed worker exited {doomed.returncode}, not SIGKILL")
    survivors = sc.server_blobs()
    _require(survivors < sc.points,
             f"kill landed too late: all {survivors} points already pushed")
    counts = sc.client.fabric_chunks(sc.job_id)["counts"]
    _require(counts.get("leased", 0) >= 1,
             f"no orphaned lease after SIGKILL (not mid-chunk?): {counts}")

    resumers = [sc.worker(f"resume-{i}", lease_seconds=2.0, idle_exit=8.0)
                for i in range(2)]
    for proc in resumers:
        sc.finish_worker(proc)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    computed = sum(sc.stats(f"resume-{i}")["stats"]["points_computed"]
                   for i in range(2))
    _require(computed == sc.points - survivors,
             f"recompute detected: resumers computed {computed}, the kill "
             f"left only {sc.points - survivors} points missing")
    return {"survivors": survivors, "resumed_computed": computed}


def _run_crashpoint(sc: _Scenario) -> dict:
    """Die in the worst window: point cached, chunk not completed."""
    crash_after = sc.chunk_size + 1  # one point into the second chunk
    sc.start_server()
    sc.submit()
    plan = FaultPlan.single("fabric.crash", at=crash_after - 1, seed=sc.seed)
    doomed = sc.worker("doomed", plan, lease_seconds=2.0)
    sc.finish_worker(doomed, expect=CRASH_EXIT_CODE)
    survivors = sc.server_blobs()
    _require(survivors == crash_after,
             f"{survivors} blobs survived the crash, expected {crash_after}")

    resumers = [sc.worker(f"resume-{i}", lease_seconds=2.0, idle_exit=8.0)
                for i in range(2)]
    for proc in resumers:
        sc.finish_worker(proc)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    computed = sum(sc.stats(f"resume-{i}")["stats"]["points_computed"]
                   for i in range(2))
    _require(computed == sc.points - survivors,
             f"recompute detected: resumers computed {computed}, the crash "
             f"left only {sc.points - survivors} points missing")
    return {"survivors": survivors, "resumed_computed": computed}


def _run_brownout(sc: _Scenario) -> dict:
    """Remote cache tier browns out; the worker degrades, then drains."""
    sc.start_server()
    sc.submit()
    plan = FaultPlan(faults=(
        FaultSpec(site="cache.remote", kind="raise", count=4),
    ), seed=sc.seed)
    worker = sc.worker("solo", plan, max_attempts=5)
    sc.finish_worker(worker)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    stats = sc.stats("solo")
    remote = next(t for t in stats["cache"]["tiers"]
                  if t["name"] == "remote")
    _require(remote["trips"] >= 1,
             f"remote tier never tripped under brownout: {remote}")
    _require(remote["pending"] == 0,
             f"{remote['pending']} blob(s) stranded in the write-behind "
             f"queue after recovery")
    _require(stats["stats"]["points_computed"] == sc.points,
             f"recompute under brownout: computed "
             f"{stats['stats']['points_computed']} of {sc.points}")
    return {"remote_tier": remote,
            "computed": stats["stats"]["points_computed"]}


def _run_transport(sc: _Scenario) -> dict:
    """Refused, hung and 5xx HTTP requests absorbed by client retries."""
    sc.start_server()
    sc.submit()
    plan = FaultPlan(faults=(
        FaultSpec(site="http.request", kind="raise", count=2),
        FaultSpec(site="http.request", kind="hang", at=6, payload=0.05),
        FaultSpec(site="http.request", kind="device", at=10),
    ), seed=sc.seed)
    workers = [sc.worker(f"w{i}", plan) for i in range(2)]
    for proc in workers:
        sc.finish_worker(proc)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    computed = retries = 0
    for i in range(2):
        stats = sc.stats(f"w{i}")
        computed += stats["stats"]["points_computed"]
        retries += stats["transport"]["retries"]
        _require(stats["transport"]["retries"] >= 2,
                 f"worker w{i} absorbed no transport faults: "
                 f"{stats['transport']}")
        _require(stats["transport"]["errors"] == 0,
                 f"worker w{i} exhausted retries: {stats['transport']}")
    _require(computed == sc.points,
             f"recompute under transport faults: computed {computed}")
    return {"computed": computed, "retries": retries}


def _run_lease_skew(sc: _Scenario) -> dict:
    """Collapsed lease TTL + a lost heartbeat: abandon, requeue, resume."""
    sc.start_server()
    sc.submit()
    plan = FaultPlan(faults=(
        # chunk 0's heartbeats extend the lease by 20 ms only
        FaultSpec(site="fabric.lease", at=0, payload=0.02),
        # and the heartbeat after the third point vanishes outright
        FaultSpec(site="fabric.heartbeat", at=2),
    ), seed=sc.seed)
    worker = sc.worker("solo", plan, lease_seconds=1.5, idle_exit=6.0,
                       max_attempts=5)
    sc.finish_worker(worker)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    stats = sc.stats("solo")["stats"]
    _require(stats["leases_lost"] >= 1,
             f"injected heartbeat loss had no effect: {stats}")
    _require(stats["points_computed"] == sc.points,
             f"recompute after lease loss: computed "
             f"{stats['points_computed']} of {sc.points} (the abandoned "
             f"chunk must resume from cache hits)")
    return {"leases_lost": stats["leases_lost"],
            "computed": stats["points_computed"]}


def _run_store_contention(sc: _Scenario) -> dict:
    """SQLITE_BUSY storms + CAS races server-side, lost ack worker-side."""
    server_plan = FaultPlan(faults=(
        FaultSpec(site="store.op", kind="raise", count=4),
        FaultSpec(site="store.claim", kind="raise", count=2),
    ), seed=sc.seed)
    sc.start_server(server_plan)
    sc.submit()
    # each worker's second completion ack is lost -> duplicate complete
    worker_plan = FaultPlan.single("fabric.complete", at=1, seed=sc.seed)
    workers = [sc.worker(f"w{i}", worker_plan) for i in range(2)]
    for proc in workers:
        sc.finish_worker(proc)
    sc.wait_done(timeout=60.0)
    sc.assert_all_chunks_done_once()
    sc.assert_bit_exact()
    computed = sum(sc.stats(f"w{i}")["stats"]["points_computed"]
                   for i in range(2))
    done = sum(sc.stats(f"w{i}")["stats"]["chunks_done"] for i in range(2))
    _require(computed == sc.points,
             f"recompute under store contention: computed {computed}")
    _require(done == sc.n_chunks,
             f"double completion: workers report {done} chunks done, "
             f"the job has {sc.n_chunks}")
    return {"computed": computed, "chunks_done": done}


SCHEDULES = {
    "kill": _run_kill,
    "crashpoint": _run_crashpoint,
    "brownout": _run_brownout,
    "transport": _run_transport,
    "lease_skew": _run_lease_skew,
    "store_contention": _run_store_contention,
}


def run_chaos_suite(
    workdir: str | os.PathLike | None = None,
    *,
    seed: int = 2026,
    schedules: list[str] | None = None,
    points: int = 12,
    chunk_size: int = 4,
    duration: float = 0.004,
    keep: bool = False,
    echo=print,
) -> list[ChaosReport]:
    """Run the chaos schedules; one :class:`ChaosReport` each.

    Every schedule gets a fresh subdirectory (server store + cache,
    per-worker caches, stats dumps) under ``workdir`` (a temp dir by
    default, removed afterwards unless ``keep``).  Failures never
    raise: they land in the report so ``repro chaos`` can print the
    whole scorecard and exit non-zero once.
    """
    names = list(schedules) if schedules else list(SCHEDULES)
    unknown = [n for n in names if n not in SCHEDULES]
    if unknown:
        raise ValueError(
            f"unknown chaos schedule(s) {unknown}; known: {list(SCHEDULES)}"
        )
    root = Path(workdir) if workdir is not None else \
        Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    reports = []
    try:
        for name in names:
            scenario = _Scenario(
                name, root, seed, points=points,
                chunk_size=chunk_size, duration=duration,
            )
            report = ChaosReport(schedule=name, seed=scenario.seed)
            echo(f"chaos: [{name}] seed={scenario.seed} "
                 f"({points} points / {scenario.n_chunks} chunks)")
            started = time.monotonic()
            try:
                report.details = SCHEDULES[name](scenario)
                report.passed = True
            except Exception as err:  # noqa: BLE001 - scorecard, not crash
                report.error = f"{type(err).__name__}: {err}"
            finally:
                scenario.stop_server()
            report.duration_s = time.monotonic() - started
            verdict = "PASS" if report.passed else f"FAIL ({report.error})"
            echo(f"chaos: [{name}] {verdict} in {report.duration_s:.1f}s")
            reports.append(report)
    finally:
        if not keep:
            shutil.rmtree(root, ignore_errors=True)
        else:
            echo(f"chaos: artifacts kept in {root}")
    return reports
