"""The worker pump: claims queued jobs and drives them to a terminal phase.

The glue between the durable :class:`~repro.service.store.JobStore`
and the execution stack: each pump worker thread snapshots the store,
asks the scheduler (:func:`~repro.service.scheduler.select_next`) for
the best claimable job, wins it with the store's atomic claim, and
executes the sweep through
:func:`repro.analysis.run_sweep_outcomes` — the same cache-first,
batched-kernel path the CLI uses — streaming per-point outcomes back
into the store as they settle, so a status poll mid-job shows live
progress and a crash loses at most the points not yet cached.

Result blobs are written through the checksummed
:class:`~repro.engine.ResultCache` under a key derived from the job's
``work_hash``; a deduplicated follower job therefore finds both its
per-point values *and* its finished table already cached, and
completes with zero recomputes.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import replace
from typing import Any

from ..errors import TaskCancelled, WatchdogTimeout
from .health import resilience_snapshot
from .jobs import JobRecord
from .scheduler import SchedulerPolicy, select_next
from .store import JobStore, PointOutcome

__all__ = ["WorkerPump", "execute_job", "sweep_result_key"]

logger = logging.getLogger(__name__)


def sweep_result_key(work_hash: str) -> str:
    """Result-cache key of a job's finished sweep table.

    A pure function of the idempotency key, so every job asking for the
    same computation — resubmissions, other tenants — reads and writes
    one blob.
    """
    from ..engine.cache import stable_hash

    return stable_hash("repro-job-result", work_hash)


def _point_health(outcome) -> dict[str, Any]:
    """PR-5 channel-health verdict for one settled grid point."""
    from ..core.health import STATUS_FAILED, STATUS_OK, ChannelHealth

    if outcome.ok:
        health = ChannelHealth(channel=outcome.index, status=STATUS_OK,
                               retries=outcome.retries)
    else:
        if isinstance(outcome.error, WatchdogTimeout):
            reason = "timeout"
        elif isinstance(outcome.error, TaskCancelled):
            reason = "cancelled"
        else:
            reason = "task-error"
        health = ChannelHealth(
            channel=outcome.index, status=STATUS_FAILED, reason=reason,
            detail=str(outcome.error), retries=outcome.retries,
        )
    return {
        "channel": health.channel,
        "status": health.status,
        "reason": health.reason,
        "detail": health.detail,
        "retries": health.retries,
    }


def _assemble_result(spec, outcomes) -> dict[str, Any]:
    """The job's result payload: a JSON-ready sweep table + point verdicts.

    Failed points hold ``None`` in every column (the NaN-poisoning
    idea from array assays: a sick point can never be mistaken for a
    measurement), and the per-point section says why.
    """
    columns: dict[str, list] = {}
    names: list[str] | None = None
    for outcome in outcomes:
        if outcome.ok:
            names = list(outcome.value)
            break
    if names is not None:
        for name in names:
            columns[name] = [
                (None if not o.ok else _json_number(o.value[name]))
                for o in outcomes
            ]
    return {
        "parameter_name": spec.path,
        "parameters": list(spec.values),
        "columns": columns,
        "points": [
            {
                "index": o.index,
                "ok": o.ok,
                "cached": o.cached,
                "retries": o.retries,
                "error": "" if o.ok else str(o.error),
            }
            for o in outcomes
        ],
    }


def _json_number(value):
    """Coerce numpy scalars to plain JSON numbers; leave the rest alone."""
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    return value


def execute_job(
    record: JobRecord,
    store: JobStore,
    cache,
    cancel_event: threading.Event | None = None,
) -> JobRecord:
    """Run one claimed job to a terminal phase; returns the final record.

    The record must already be in phase ``running`` (claimed).  Every
    grid point settles as a persisted
    :class:`~repro.service.store.PointOutcome`; the finished table goes
    through the result cache; the final state carries progress
    counters, the engine resilience snapshot, and — on unexpected
    infrastructure errors — the captured exception text under phase
    ``failed``.  Per-point task errors are *not* job failures: the
    per-task error-capture ethos of the executor carries through, and
    a job with sick points finishes ``done`` with its casualties
    flagged.
    """
    from ..analysis import LoopSweepTask, override_grid, run_sweep_outcomes
    from .jobs import device_spec_from_dict

    spec = record.spec
    state_lock = threading.Lock()
    counters = {"completed": 0, "failed": 0, "cache_hits": 0, "retries": 0}

    def on_point(outcome) -> None:
        store.record_outcome(
            record.job_id,
            PointOutcome(
                index=outcome.index, ok=outcome.ok, cached=outcome.cached,
                retries=outcome.retries,
                error="" if outcome.ok else str(outcome.error),
                health=_point_health(outcome),
            ),
        )
        with state_lock:
            counters["completed"] += 1
            counters["retries"] += outcome.retries
            if outcome.cached:
                counters["cache_hits"] += 1
            if not outcome.ok:
                counters["failed"] += 1
            live = record.advanced(
                total=len(spec.values), **counters
            )
        store.update(live)

    def cancelled() -> bool:
        return cancel_event is not None and cancel_event.is_set()

    try:
        base = device_spec_from_dict(spec.base)
        grid = override_grid(base, spec.path, list(spec.values))
        task = LoopSweepTask(duration=spec.duration)
        outcomes = run_sweep_outcomes(
            grid,
            task,
            workers=spec.workers,
            backend=spec.backend,
            cache=cache,
            timeout=spec.timeout,
            retry=spec.retries,
            progress=on_point,
            cancel=cancelled if cancel_event is not None else None,
        )
    except Exception as err:  # noqa: BLE001 - a job must always settle
        logger.exception("job %s failed", record.job_id)
        final = record.advanced(
            phase="failed", error=f"{type(err).__name__}: {err}",
            finished_at=time.time(), total=len(spec.values), **counters,
        )
        final = _with_resilience(final)
        store.update(final)
        return final

    was_cancelled = any(
        isinstance(o.error, TaskCancelled) for o in outcomes if not o.ok
    )

    result_key = sweep_result_key(record.work_hash)
    final = record
    if not was_cancelled:
        # idempotent result write: dedup followers find the blob cached
        if cache.get(result_key) is cache.MISS:
            cache.put(result_key, _assemble_result(spec, outcomes))
        final = replace(record, result_key=result_key)

    final = final.advanced(
        phase="cancelled" if was_cancelled else "done",
        finished_at=time.time(),
        total=len(spec.values),
        **counters,
    )
    final = _with_resilience(final)
    store.update(final)
    return final


def _with_resilience(record: JobRecord) -> JobRecord:
    """Attach the engine's current resilience snapshot to the record."""
    return replace(record, resilience=resilience_snapshot())


class WorkerPump:
    """Background workers turning queued jobs into finished ones.

    Parameters
    ----------
    store / cache:
        The durable job store and the result cache every execution
        flows through.
    policy:
        Scheduler fairness knobs (tenant quotas).
    workers:
        Pump worker *threads* (job-level concurrency).  Each job's
        internal parallelism is the executor's business; the default of
        1 keeps a small box from multiplying parallelism.
    poll_interval:
        Idle sleep between store snapshots [s].
    """

    def __init__(
        self,
        store: JobStore,
        cache,
        policy: SchedulerPolicy | None = None,
        workers: int = 1,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store
        self.cache = cache
        self.policy = policy or SchedulerPolicy()
        self.workers = max(1, int(workers))
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._cancel_events: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        # coordinator-duty counters, surfaced in /healthz ("fabric")
        self.fabric_stats: dict[str, int] = {
            "ticks": 0, "leases_expired": 0,
            "jobs_finalized": 0, "jobs_failed": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Re-queue orphans and launch the worker threads (idempotent)."""
        if self._threads:
            return
        orphans = self.store.requeue_running()
        if orphans:
            logger.info("re-queued %d job(s) orphaned by a previous process",
                        orphans)
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-pump-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the workers and wait for in-flight jobs to settle."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    @property
    def alive(self) -> bool:
        """True while at least one worker thread is running."""
        return any(t.is_alive() for t in self._threads)

    def request_cancel(self, job_id: str) -> None:
        """Flip the in-process cancel flag of a running job (if ours)."""
        with self._lock:
            event = self._cancel_events.get(job_id)
        if event is not None:
            event.set()

    # -- the loop ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._fabric_tick()
            except Exception:  # pragma: no cover - tick must never kill pump
                logger.exception("fabric tick failed")
            record = self._claim_next()
            if record is None:
                self._stop.wait(self.poll_interval)
                continue
            event = threading.Event()
            if record.state.cancel_requested:
                event.set()
            with self._lock:
                self._cancel_events[record.job_id] = event
            try:
                execute_job(record, self.store, self.cache, event)
            except Exception:  # pragma: no cover - execute_job settles jobs
                logger.exception("pump worker crashed on job %s",
                                 record.job_id)
            finally:
                with self._lock:
                    self._cancel_events.pop(record.job_id, None)

    def _fabric_tick(self) -> None:
        """Watchdog + finalizer duty for chunk-leased fabric jobs.

        Fabric jobs are executed by leased :class:`~repro.engine.fabric`
        workers, not by this pump — but the pump is the always-on
        process, so it plays coordinator: expire stale chunk leases
        (dead worker ⇒ chunks requeue), move a queued fabric job to
        ``running`` once workers may lease it, and settle the job when
        every chunk is done (assemble the result blob from the cache)
        or permanently failed.
        """
        from ..engine.fabric import finalize_fabric_job

        self.fabric_stats["ticks"] += 1
        expired = self.store.expire_chunk_leases()
        if expired:
            self.fabric_stats["leases_expired"] += expired
            logger.info("fabric tick requeued %d expired chunk lease(s)",
                        expired)
        fabric = [
            r for r in self.store.list_jobs()
            if r.spec.fabric and r.state.phase in ("queued", "running")
        ]
        for record in fabric:
            counts = self.store.chunk_counts(record.job_id)
            total = sum(counts.values())
            if not total:
                continue
            if record.state.phase == "queued":
                claimed = self.store.claim(record.job_id)
                if claimed is None:
                    continue
                record = claimed
            if counts.get("done", 0) == total:
                finalize_fabric_job(self.store, self.cache, record)
                self.fabric_stats["jobs_finalized"] += 1
            elif counts.get("failed", 0) and \
                    counts.get("done", 0) + counts["failed"] == total:
                first = next(c for c in self.store.chunks(record.job_id)
                             if c.state == "failed")
                self.store.update(record.advanced(
                    phase="failed", finished_at=time.time(),
                    error=first.error,
                ))
                self.fabric_stats["jobs_failed"] += 1

    def _claim_next(self) -> JobRecord | None:
        queued = [r for r in self.store.list_jobs(phase="queued")
                  if not r.spec.fabric]
        if not queued:
            return None
        running = self.store.list_jobs(phase="running")
        phase_of = {
            r.job_id: r.state.phase for r in self.store.list_jobs()
        }
        # walk the eligible ranking until a CAS claim wins (another
        # worker may take the front-runner between snapshot and claim)
        while True:
            best = select_next(queued, running, self.policy, phase_of)
            if best is None:
                return None
            claimed = self.store.claim(best.job_id)
            if claimed is not None:
                return claimed
            queued = [r for r in queued if r.job_id != best.job_id]
