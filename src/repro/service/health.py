"""Machine-readable engine/service health (the readiness probe's food).

One function, one dict: :func:`health_snapshot` collects the execution
engine's state — compiler availability, kernel run/degrade counters,
circuit breakers, optionally a cache integrity audit — as plain JSON
types.  ``repro health --json`` prints it verbatim and the serve
layer's ``/healthz`` endpoint embeds it, so a load balancer and a
human read the same numbers.
"""

from __future__ import annotations

from typing import Any

__all__ = ["health_snapshot", "resilience_snapshot"]


def resilience_snapshot() -> dict[str, Any]:
    """The engine's current resilience counters, as plain JSON types.

    The per-job slice of :func:`health_snapshot`: kernel degrade /
    fallback counters and breaker states, captured into each finished
    :class:`~repro.service.JobRecord` so a job's status payload shows
    what the engine survived while computing it.
    """
    from ..engine import breaker_report, kernel_info

    info = kernel_info()
    return {
        "cc_quarantined": bool(info.cc_quarantined),
        "kernel_runs": dict(info.runs),
        "batch_runs": info.batch_runs,
        "batch_instances": info.batch_instances,
        "batch_declined": info.batch_declined,
        "batch_columnar_runs": info.batch_columnar_runs,
        "batch_row_runs": info.batch_row_runs,
        "op_samples": dict(info.op_samples or {}),
        "fusion_decisions": [dict(d) for d in info.fusion_decisions],
        "fallbacks": info.fallbacks,
        "last_fallback_reason": info.last_fallback_reason or None,
        "degrades": info.degrades,
        "last_degrade_reason": info.last_degrade_reason or None,
        "breakers": {
            name: {
                "open": b.open,
                "failures": b.failures,
                "trips": b.trips,
            }
            for name, b in sorted(breaker_report().items())
        },
    }


def health_snapshot(
    cache_dir: str | None = None, evict: bool = False
) -> dict[str, Any]:
    """Full engine health as one JSON-ready dict.

    Parameters
    ----------
    cache_dir:
        When given, also integrity-scan that
        :class:`~repro.engine.ResultCache` directory and report
        intact/damaged counts (the scan is an audit: hit/miss counters
        are untouched).
    evict:
        Forwarded to :meth:`~repro.engine.ResultCache.verify` — evict
        damaged entries found by the scan.

    The top-level ``"ok"`` field is the readiness verdict: True unless
    the compiled engine is quarantined, a breaker is open, or the cache
    scan found damage it was not allowed to evict.
    """
    from ..engine import cc_available, kernel_info, numba_available
    from .transport import transport_report

    info = kernel_info()
    resilience = resilience_snapshot()
    snapshot: dict[str, Any] = {
        "compiler_available": bool(cc_available()),
        "compiler_error": info.cc_build_error or None,
        "numba_available": bool(numba_available()),
        **resilience,
        # outbound HTTP vitals: retry / deadline-shed / breaker counters
        # for this process's ServiceClient + HTTPRemoteStore traffic
        "transport": transport_report(),
    }

    ok = not resilience["cc_quarantined"] and not any(
        b["open"] for b in resilience["breakers"].values()
    )
    if cache_dir is not None:
        from ..engine import ResultCache

        intact, damaged = ResultCache(cache_dir).verify(evict=evict)
        snapshot["cache"] = {
            "directory": str(cache_dir),
            "intact": intact,
            "damaged": damaged,
            "evicted": bool(evict),
        }
        ok = ok and (damaged == 0 or evict)
    snapshot["ok"] = ok
    return snapshot
