"""Transport telemetry + deadline protocol shared by client and server.

One small module owns the wire-level resilience vocabulary:

* :data:`DEADLINE_HEADER` — every :class:`~repro.service.client.ServiceClient`
  request (and :class:`~repro.engine.cache.HTTPRemoteStore` round-trip)
  may carry an absolute-epoch deadline.  The server refuses — *sheds* —
  work it cannot even start before the deadline with a ``503`` +
  ``Retry-After`` instead of burning cycles on an answer nobody is
  waiting for.
* :data:`SHED_HEADER` — tags a 503 with *why* it was shed
  (``"deadline"`` or ``"backpressure"``) so clients count the two
  separately and only retry the one that can succeed.
* :class:`TransportCounters` — a thread-safe counter block.  The
  process-global client-side instance (:func:`transport_counters`)
  feeds the ``transport`` section of ``repro health --json``; the
  server keeps its own per-service instance surfaced in ``/healthz``.

Everything here is counters and constants — no sockets — so the module
imports in microseconds and never drags urllib into the engine layer.
"""

from __future__ import annotations

import threading

__all__ = [
    "DEADLINE_HEADER",
    "RETRY_AFTER_HEADER",
    "SHED_HEADER",
    "TransportCounters",
    "reset_transport",
    "transport_counters",
    "transport_report",
]

#: Absolute unix-epoch deadline (seconds, float) a request must start by.
DEADLINE_HEADER = "X-Repro-Deadline"

#: Why a 503 was shed: ``"deadline"`` or ``"backpressure"``.
SHED_HEADER = "X-Repro-Shed"

#: Standard header carrying the suggested backoff on a shed response.
RETRY_AFTER_HEADER = "Retry-After"


class TransportCounters:
    """Thread-safe transport counters (client- or server-side).

    ``requests``
        Logical operations attempted (one per call, not per retry).
    ``retries``
        Extra attempts spent absorbing transient faults.
    ``errors``
        Logical operations that failed after exhausting retries.
    ``deadline_sheds``
        Requests refused because their deadline had already passed —
        observed 503s on the client, refusals issued on the server.
    ``backpressure_rejections``
        Requests refused because the server was at its inflight bound.
    """

    _FIELDS = (
        "requests", "retries", "errors",
        "deadline_sheds", "backpressure_rejections",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def note(self, field: str, n: int = 1) -> None:
        if field not in self._FIELDS:
            raise ValueError(f"unknown transport counter {field!r}")
        with self._lock:
            setattr(self, field, getattr(self, field) + n)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def reset(self) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, 0)


_CLIENT = TransportCounters()


def transport_counters() -> TransportCounters:
    """The process-global client-side counter block."""
    return _CLIENT


def transport_report() -> dict:
    """Client-side transport snapshot plus transport breaker states.

    The ``transport`` section of ``repro health --json``: retry and
    deadline-shed counters from this process's outbound requests, and
    every circuit breaker registered under a ``transport:`` name.
    """
    from ..engine.resilience import breaker_report

    breakers = {
        name: {
            "open": info.open,
            "failures": info.failures,
            "consecutive_failures": info.consecutive_failures,
            "trips": info.trips,
            "threshold": info.threshold,
        }
        for name, info in breaker_report().items()
        if name.startswith("transport:")
    }
    report = _CLIENT.snapshot()
    report["breakers"] = breakers
    return report


def reset_transport() -> None:
    """Zero the client-side counters (test isolation)."""
    _CLIENT.reset()
