"""Stdlib HTTP client for the simulation service.

A thin, dependency-free (urllib) wrapper over the ``/v1/jobs`` API so
scripts, tests, and the ``repro submit|status|results|cancel`` CLI
commands share one request path.  Server-side errors come back as the
same exception types the service raises locally: a 400 is a
:class:`~repro.errors.JobError`, any other error status a
:class:`~repro.errors.ServiceError` carrying the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..errors import JobError, ServiceError
from .jobs import JOB_TERMINAL_PHASES, JobSpec

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8347`` (trailing slash ok).
    timeout:
        Per-request socket timeout [s].
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- raw request ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        body = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read() or b"null")
        except urllib.error.HTTPError as err:
            raw = err.read()
            try:
                message = json.loads(raw)["error"]
            except Exception:  # noqa: BLE001 - body may be anything
                message = raw.decode(errors="replace") or str(err)
            if err.code == 400:
                raise JobError(message) from None
            raise ServiceError(
                f"HTTP {err.code} from {method} {path}: {message}"
            ) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                f"cannot reach service at {self.url}: {err.reason}"
            ) from None

    # -- API -----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Submit a job spec; returns the queued job record."""
        return self._request("POST", "/v1/jobs", spec.to_dict())

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def results_ndjson(self, job_id: str) -> list[dict[str, Any]]:
        """The streaming fetch: one decoded dict per grid point."""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/results?format=ndjson"
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return [
                    json.loads(line)
                    for line in response.read().splitlines()
                    if line.strip()
                ]
        except urllib.error.HTTPError as err:
            raise ServiceError(
                f"HTTP {err.code} fetching ndjson results for {job_id}"
            ) from None

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[dict[str, Any]]:
        query = "&".join(
            f"{k}={v}" for k, v in
            (("tenant", tenant), ("phase", phase)) if v
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches a terminal phase; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(job_id)
            if payload["state"]["phase"] in JOB_TERMINAL_PHASES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']['phase']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)
