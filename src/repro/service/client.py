"""Stdlib HTTP client for the simulation service.

A thin, dependency-free (urllib) wrapper over the ``/v1/jobs`` API so
scripts, tests, and the ``repro submit|status|results|cancel`` CLI
commands share one request path.  Server-side errors come back as the
same exception types the service raises locally: a 400 is a
:class:`~repro.errors.JobError`, any other error status a
:class:`~repro.errors.ServiceError` carrying the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..errors import JobError, ServiceError
from .jobs import JOB_TERMINAL_PHASES, JobRecord, JobSpec

__all__ = ["RemoteFabricStore", "ServiceClient"]


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8347`` (trailing slash ok).
    timeout:
        Per-request socket timeout [s].
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- raw request ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        body = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read() or b"null")
        except urllib.error.HTTPError as err:
            raw = err.read()
            try:
                message = json.loads(raw)["error"]
            except Exception:  # noqa: BLE001 - body may be anything
                message = raw.decode(errors="replace") or str(err)
            if err.code == 400:
                raise JobError(message) from None
            raise ServiceError(
                f"HTTP {err.code} from {method} {path}: {message}"
            ) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                f"cannot reach service at {self.url}: {err.reason}"
            ) from None

    # -- API -----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Submit a job spec; returns the queued job record."""
        return self._request("POST", "/v1/jobs", spec.to_dict())

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def results_ndjson(self, job_id: str) -> list[dict[str, Any]]:
        """The streaming fetch: one decoded dict per grid point."""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/results?format=ndjson"
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return [
                    json.loads(line)
                    for line in response.read().splitlines()
                    if line.strip()
                ]
        except urllib.error.HTTPError as err:
            raise ServiceError(
                f"HTTP {err.code} fetching ndjson results for {job_id}"
            ) from None

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[dict[str, Any]]:
        query = "&".join(
            f"{k}={v}" for k, v in
            (("tenant", tenant), ("phase", phase)) if v
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches a terminal phase; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(job_id)
            if payload["state"]["phase"] in JOB_TERMINAL_PHASES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']['phase']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)

    # -- fabric (chunk-lease protocol) ---------------------------------------

    def fabric_lease(self, worker_id: str, lease_seconds: float = 30.0,
                     job_id: str | None = None) -> dict[str, Any] | None:
        payload = self._request("POST", "/v1/fabric/lease", {
            "worker_id": worker_id, "lease_seconds": lease_seconds,
            "job_id": job_id,
        })
        return payload["chunk"]

    def fabric_heartbeat(self, job_id: str, chunk_id: int, worker_id: str,
                         lease_seconds: float = 30.0) -> bool:
        return bool(self._request("POST", "/v1/fabric/heartbeat", {
            "job_id": job_id, "chunk_id": chunk_id,
            "worker_id": worker_id, "lease_seconds": lease_seconds,
        })["ok"])

    def fabric_complete(self, job_id: str, chunk_id: int,
                        worker_id: str) -> bool:
        return bool(self._request("POST", "/v1/fabric/complete", {
            "job_id": job_id, "chunk_id": chunk_id, "worker_id": worker_id,
        })["ok"])

    def fabric_fail(self, job_id: str, chunk_id: int, worker_id: str,
                    error: str, max_attempts: int = 3) -> str | None:
        return self._request("POST", "/v1/fabric/fail", {
            "job_id": job_id, "chunk_id": chunk_id, "worker_id": worker_id,
            "error": error, "max_attempts": max_attempts,
        })["state"]

    def fabric_outcomes(self, job_id: str,
                        outcomes: list[dict]) -> dict[str, Any]:
        return self._request("POST", "/v1/fabric/outcomes", {
            "job_id": job_id, "outcomes": outcomes,
        })

    def fabric_chunks(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/fabric/chunks/{job_id}")

    def job_record(self, job_id: str) -> JobRecord:
        """The typed job record (status payload minus view-only keys)."""
        payload = self.status(job_id)
        fields = set(JobRecord.__dataclass_fields__)
        return JobRecord.from_dict(
            {k: v for k, v in payload.items() if k in fields}
        )


class RemoteFabricStore:
    """The :class:`~repro.service.store.JobStore` face of a remote server.

    Adapts a :class:`ServiceClient` to the exact method subset
    :class:`repro.engine.fabric.FabricWorker` calls, so ``repro worker
    --url http://coordinator:8347`` runs the same leasing loop as a
    local worker — chunk leases travel as JSON, result values travel
    through the tiered cache's HTTP remote tier
    (:class:`repro.engine.HTTPRemoteStore`), and the server's store
    stays the single source of truth.

    Lease expiry is the server's duty (every ``/v1/fabric/lease`` call
    sweeps stale leases first), so :meth:`expire_chunk_leases` is a
    deliberate no-op here.
    """

    def __init__(self, client: ServiceClient) -> None:
        from .store import ChunkRow

        self.client = client
        self._chunk_row = ChunkRow

    def get(self, job_id: str):
        try:
            return self.client.job_record(job_id)
        except JobError:
            return None

    def expire_chunk_leases(self, now: float | None = None) -> int:
        return 0

    def lease_chunk(self, worker_id: str, lease_seconds: float,
                    job_id: str | None = None):
        chunk = self.client.fabric_lease(worker_id, lease_seconds, job_id)
        return self._chunk_row.from_dict(chunk) if chunk is not None else None

    def heartbeat_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                        lease_seconds: float) -> bool:
        return self.client.fabric_heartbeat(job_id, chunk_id, worker_id,
                                            lease_seconds)

    def complete_chunk(self, job_id: str, chunk_id: int,
                       worker_id: str) -> bool:
        return self.client.fabric_complete(job_id, chunk_id, worker_id)

    def fail_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                   error: str, max_attempts: int = 3) -> str | None:
        return self.client.fabric_fail(job_id, chunk_id, worker_id, error,
                                       max_attempts)

    def record_outcomes(self, job_id: str, outcomes) -> None:
        self.client.fabric_outcomes(
            job_id, [o.to_dict() for o in outcomes]
        )

    def chunk_counts(self, job_id: str) -> dict[str, int]:
        return self.client.fabric_chunks(job_id)["counts"]

    def chunks(self, job_id: str):
        return [self._chunk_row.from_dict(c)
                for c in self.client.fabric_chunks(job_id)["chunks"]]
