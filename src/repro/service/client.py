"""Stdlib HTTP client for the simulation service.

A thin, dependency-free (urllib) wrapper over the ``/v1/jobs`` API so
scripts, tests, and the ``repro submit|status|results|cancel`` CLI
commands share one request path.  Server-side errors come back as the
same exception types the service raises locally: a 400 is a
:class:`~repro.errors.JobError`, any other error status a
:class:`~repro.errors.ServiceError` carrying the server's message.

Transient transport failures — connection refused/reset, 5xx, a
truncated response body — are absorbed by a deterministic
:class:`~repro.engine.resilience.RetryPolicy` before any exception
escapes, and every retry is counted in the process-global transport
counters (``repro health --json`` → ``transport``).  A client created
with a ``deadline`` stamps each request with an absolute
:data:`~repro.service.transport.DEADLINE_HEADER`; the server sheds
(503) work it cannot start in time, which the client maps to a
non-retryable :class:`~repro.errors.ServiceError` — retrying a missed
deadline only misses it harder.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..engine.resilience import RetryPolicy, get_breaker, poll_fault
from ..errors import JobError, ServiceError
from .jobs import JOB_TERMINAL_PHASES, JobRecord, JobSpec
from .transport import (
    DEADLINE_HEADER,
    RETRY_AFTER_HEADER,
    SHED_HEADER,
    transport_counters,
)

__all__ = ["RemoteFabricStore", "ServiceClient"]


class _TransientError(Exception):
    """Internal: a failed attempt the retry loop may absorb."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8347`` (trailing slash ok).
    timeout:
        Per-request socket timeout [s].
    retry:
        Backoff schedule for transient transport faults.  ``None``
        (default) uses 3 retries of seeded-jitter exponential backoff;
        pass ``RetryPolicy(retries=0)`` to fail fast.
    deadline:
        Per-request time budget [s].  Each request carries an absolute
        ``X-Repro-Deadline`` header this many seconds in the future;
        retries stop once it passes, and a server-side deadline shed is
        surfaced immediately instead of retried.
    """

    #: Consecutive *final* (post-retry) failures before the client
    #: breaker quarantines the transport and fails fast.
    BREAKER_THRESHOLD = 6

    def __init__(self, url: str, timeout: float = 30.0, *,
                 retry: RetryPolicy | None = None,
                 deadline: float | None = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy(
            retries=3, base_delay=0.05, max_delay=1.0, jitter=0.1)
        self.deadline = deadline
        self.breaker = get_breaker(
            "transport:client", threshold=self.BREAKER_THRESHOLD)

    # -- raw request ---------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: bytes | None, deadline_at: float | None) -> Any:
        """One attempt; transient failures raise :class:`_TransientError`."""
        counters = transport_counters()
        fault = poll_fault("http.request")
        if fault is not None:
            if fault.kind == "hang":       # slow response
                time.sleep(fault.payload or 0.05)
                fault = None
            elif fault.kind == "raise":    # connection refused
                raise _TransientError(
                    f"cannot reach service at {self.url}: injected refusal")
            elif fault.kind == "device":   # server-side 5xx
                raise _TransientError("injected HTTP 500 from server")
        headers = {"Content-Type": "application/json"}
        if deadline_at is not None:
            headers[DEADLINE_HEADER] = f"{deadline_at:.6f}"
        request = urllib.request.Request(
            self.url + path, data=body, method=method, headers=headers,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as err:
            raw = err.read()
            try:
                message = json.loads(raw)["error"]
            except Exception:  # noqa: BLE001 - body may be anything
                message = raw.decode(errors="replace") or str(err)
            if err.code == 400:
                raise JobError(message) from None
            if err.code == 503:
                shed = err.headers.get(SHED_HEADER, "")
                retry_after = float(
                    err.headers.get(RETRY_AFTER_HEADER) or 0.0)
                if shed == "deadline":
                    counters.note("deadline_sheds")
                    raise ServiceError(
                        f"deadline exceeded: server shed {method} {path}"
                    ) from None
                if shed == "backpressure":
                    counters.note("backpressure_rejections")
                    raise _TransientError(
                        f"server at capacity for {method} {path}",
                        retry_after=retry_after,
                    ) from None
                raise _TransientError(
                    f"HTTP 503 from {method} {path}: {message}") from None
            if err.code >= 500:
                raise _TransientError(
                    f"HTTP {err.code} from {method} {path}: {message}"
                ) from None
            raise ServiceError(
                f"HTTP {err.code} from {method} {path}: {message}"
            ) from None
        except urllib.error.URLError as err:
            raise _TransientError(
                f"cannot reach service at {self.url}: {err.reason}"
            ) from None
        if fault is not None and fault.kind == "corrupt":
            # mid-body disconnect: the JSON below fails to parse and the
            # retry loop re-issues the request
            raw = raw[: max(1, len(raw) // 2)]
        try:
            return json.loads(raw or b"null")
        except ValueError:
            raise _TransientError(
                f"truncated response body from {method} {path}"
            ) from None

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        counters = transport_counters()
        counters.note("requests")
        if not self.breaker.allow():
            counters.note("errors")
            raise ServiceError(
                f"transport breaker open after "
                f"{self.breaker.consecutive} consecutive failures "
                f"(last: {self.breaker.last_failure_reason})"
            )
        body = json.dumps(payload).encode() if payload is not None else None
        deadline_at = (
            time.time() + self.deadline if self.deadline is not None else None
        )
        last: _TransientError | None = None
        for attempt in range(self.retry.retries + 1):
            try:
                result = self._request_once(method, path, body, deadline_at)
            except _TransientError as err:
                last = err
                if attempt >= self.retry.retries:
                    break
                if deadline_at is not None and time.time() >= deadline_at:
                    break
                counters.note("retries")
                time.sleep(max(self.retry.delay(attempt, key=path),
                               err.retry_after))
                continue
            except (JobError, ServiceError):
                # definitive server answer: the transport itself worked
                self.breaker.record_success()
                raise
            self.breaker.record_success()
            return result
        counters.note("errors")
        self.breaker.record_failure(str(last))
        raise ServiceError(str(last)) from None

    # -- API -----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        """Submit a job spec; returns the queued job record."""
        return self._request("POST", "/v1/jobs", spec.to_dict())

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def results_ndjson(self, job_id: str) -> list[dict[str, Any]]:
        """The streaming fetch: one decoded dict per grid point."""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/results?format=ndjson"
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return [
                    json.loads(line)
                    for line in response.read().splitlines()
                    if line.strip()
                ]
        except urllib.error.HTTPError as err:
            raise ServiceError(
                f"HTTP {err.code} fetching ndjson results for {job_id}"
            ) from None

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[dict[str, Any]]:
        query = "&".join(
            f"{k}={v}" for k, v in
            (("tenant", tenant), ("phase", phase)) if v
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_interval: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches a terminal phase; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(job_id)
            if payload["state"]["phase"] in JOB_TERMINAL_PHASES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']['phase']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll_interval)

    # -- fabric (chunk-lease protocol) ---------------------------------------

    def fabric_lease(self, worker_id: str, lease_seconds: float = 30.0,
                     job_id: str | None = None) -> dict[str, Any] | None:
        payload = self._request("POST", "/v1/fabric/lease", {
            "worker_id": worker_id, "lease_seconds": lease_seconds,
            "job_id": job_id,
        })
        return payload["chunk"]

    def fabric_heartbeat(self, job_id: str, chunk_id: int, worker_id: str,
                         lease_seconds: float = 30.0) -> bool:
        return bool(self._request("POST", "/v1/fabric/heartbeat", {
            "job_id": job_id, "chunk_id": chunk_id,
            "worker_id": worker_id, "lease_seconds": lease_seconds,
        })["ok"])

    def fabric_complete(self, job_id: str, chunk_id: int,
                        worker_id: str) -> bool:
        return bool(self._request("POST", "/v1/fabric/complete", {
            "job_id": job_id, "chunk_id": chunk_id, "worker_id": worker_id,
        })["ok"])

    def fabric_fail(self, job_id: str, chunk_id: int, worker_id: str,
                    error: str, max_attempts: int = 3) -> str | None:
        return self._request("POST", "/v1/fabric/fail", {
            "job_id": job_id, "chunk_id": chunk_id, "worker_id": worker_id,
            "error": error, "max_attempts": max_attempts,
        })["state"]

    def fabric_outcomes(self, job_id: str,
                        outcomes: list[dict]) -> dict[str, Any]:
        return self._request("POST", "/v1/fabric/outcomes", {
            "job_id": job_id, "outcomes": outcomes,
        })

    def fabric_chunks(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/fabric/chunks/{job_id}")

    def job_record(self, job_id: str) -> JobRecord:
        """The typed job record (status payload minus view-only keys)."""
        payload = self.status(job_id)
        fields = set(JobRecord.__dataclass_fields__)
        return JobRecord.from_dict(
            {k: v for k, v in payload.items() if k in fields}
        )


class RemoteFabricStore:
    """The :class:`~repro.service.store.JobStore` face of a remote server.

    Adapts a :class:`ServiceClient` to the exact method subset
    :class:`repro.engine.fabric.FabricWorker` calls, so ``repro worker
    --url http://coordinator:8347`` runs the same leasing loop as a
    local worker — chunk leases travel as JSON, result values travel
    through the tiered cache's HTTP remote tier
    (:class:`repro.engine.HTTPRemoteStore`), and the server's store
    stays the single source of truth.

    Lease expiry is the server's duty (every ``/v1/fabric/lease`` call
    sweeps stale leases first), so :meth:`expire_chunk_leases` is a
    deliberate no-op here.

    Retries stack deliberately: the wrapped :class:`ServiceClient`
    absorbs *transport* faults (refused connections, 5xx, truncated
    bodies) under its own :class:`RetryPolicy`, while the
    :class:`~repro.engine.fabric.FabricWorker` retries whole *store
    calls* on top — the same division of labor a local worker gets from
    SQLite's busy handler below the store-level retry.  Pass ``retry``
    to override the transport schedule without rebuilding the client.
    """

    def __init__(self, client: ServiceClient, *,
                 retry: RetryPolicy | None = None) -> None:
        from .store import ChunkRow

        self.client = client
        if retry is not None:
            self.client.retry = retry
        self._chunk_row = ChunkRow

    def get(self, job_id: str):
        try:
            return self.client.job_record(job_id)
        except JobError:
            return None

    def expire_chunk_leases(self, now: float | None = None) -> int:
        return 0

    def lease_chunk(self, worker_id: str, lease_seconds: float,
                    job_id: str | None = None):
        chunk = self.client.fabric_lease(worker_id, lease_seconds, job_id)
        return self._chunk_row.from_dict(chunk) if chunk is not None else None

    def heartbeat_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                        lease_seconds: float) -> bool:
        return self.client.fabric_heartbeat(job_id, chunk_id, worker_id,
                                            lease_seconds)

    def complete_chunk(self, job_id: str, chunk_id: int,
                       worker_id: str) -> bool:
        return self.client.fabric_complete(job_id, chunk_id, worker_id)

    def fail_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                   error: str, max_attempts: int = 3) -> str | None:
        return self.client.fabric_fail(job_id, chunk_id, worker_id, error,
                                       max_attempts)

    def record_outcomes(self, job_id: str, outcomes) -> None:
        self.client.fabric_outcomes(
            job_id, [o.to_dict() for o in outcomes]
        )

    def chunk_counts(self, job_id: str) -> dict[str, int]:
        return self.client.fabric_chunks(job_id)["counts"]

    def chunks(self, job_id: str):
        return [self._chunk_row.from_dict(c)
                for c in self.client.fabric_chunks(job_id)["chunks"]]
