"""The service job model: what a client submits, what the store keeps.

Mirrors the :mod:`repro.config` idiom — frozen dataclasses, eager
validation with dotted field paths, exact ``to_dict``/``from_dict``/JSON
round-trips — for the unit of work the simulation service schedules:

* :class:`JobSpec` — a declarative sweep request: a device spec (its
  ``to_dict`` form), one dotted override path, the values to sweep, and
  scheduling metadata (tenant, priority) plus execution knobs that do
  not change results (executor backend, workers, retries, timeout).
* :class:`JobState` — one immutable snapshot of a job's lifecycle:
  phase, per-point progress counters, timestamps, error text.
* :class:`JobRecord` — the durable row: id, spec, state, idempotency
  key, dedup linkage, and the :class:`~repro.engine.ResultCache` key
  the finished result blob lives under.

The idempotency key (:meth:`JobSpec.work_hash`) hashes only the fields
that determine the *answer* — device spec dict, sweep path, values,
loop duration — through the same :func:`repro.engine.stable_hash` that
keys the result cache.  Tenant, priority, and executor knobs are
excluded on purpose: two tenants submitting the same grid share one
computation (the cross-tenant dedup contract), and a sweep gives
bit-identical results at any worker count.
"""

from __future__ import annotations

import json
import math
import uuid
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

from ..errors import JobError

__all__ = [
    "JOB_PHASES",
    "JOB_TERMINAL_PHASES",
    "JobRecord",
    "JobSpec",
    "JobState",
    "device_spec_from_dict",
    "new_job_id",
]

#: Lifecycle phases, in nominal order.  ``queued -> running`` happens at
#: claim time (atomically, in the store); ``running`` ends in exactly one
#: of the terminal phases.
JOB_PHASES = ("queued", "running", "done", "failed", "cancelled")
#: Phases a job never leaves.
JOB_TERMINAL_PHASES = ("done", "failed", "cancelled")


def _fail(path: str, message: str):
    raise JobError(f"{path}: {message}")


def device_spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a device :class:`~repro.config.Spec` from its dict form.

    Dispatches on the ``"$spec"`` meta key to the matching registered
    spec class (the inverse of ``Spec.to_dict`` for any node type), so
    the service can deserialize whatever device a client submitted.
    """
    from ..config.specs import Spec

    if not isinstance(data, Mapping):
        raise JobError(
            f"base: expected a device-spec mapping, got {type(data).__name__}"
        )
    kind = data.get("$spec")
    if not kind:
        raise JobError("base.$spec: missing device spec kind")

    def walk(cls):
        for sub in cls.__subclasses__():
            if sub.spec_kind == kind:
                return sub
            found = walk(sub)
            if found is not None:
                return found
        return None

    spec_cls = walk(Spec)
    if spec_cls is None:
        raise JobError(f"base.$spec: unknown device spec kind {kind!r}")
    return spec_cls.from_dict(data)


def new_job_id() -> str:
    """A fresh, collision-resistant job id (``job-<12 hex>``)."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class JobSpec:
    """One submitted sweep campaign, as a pure value object.

    Parameters
    ----------
    base:
        The device spec's ``to_dict`` form (any registered ``$spec``
        kind).  Kept as a plain dict so the job row round-trips through
        JSON without importing device classes.
    path:
        Dotted spec path to sweep (``"cantilever.length_um"``).
    values:
        The grid values, one closed-loop point each.
    duration:
        Closed-loop settling seconds per point.
    tenant / priority:
        Scheduling metadata: quota bucket and urgency (higher runs
        first).  Not part of :meth:`work_hash`.
    backend / workers / retries / timeout:
        Executor knobs forwarded to
        :func:`repro.analysis.run_sweep_outcomes`; results are
        backend-independent (the engine's bit-exactness contract), so
        none of these enter :meth:`work_hash` either.
    fabric / chunk_size:
        Distribution knobs: ``fabric=True`` splits the grid into
        ``chunk_size``-point lease chunks executed by ``repro worker``
        nodes instead of the in-process pump.  Pure executor knobs —
        the fabric keeps bit-exactness, so neither enters
        :meth:`work_hash`.
    """

    base: Mapping[str, Any]
    path: str
    values: tuple = ()
    duration: float = 0.01
    tenant: str = "default"
    priority: int = 0
    backend: str = "kernel-batch"
    workers: int | None = None
    retries: int | None = None
    timeout: float | None = None
    fabric: bool = False
    chunk_size: int = 8

    def __post_init__(self) -> None:
        from ..engine.executor import BACKENDS

        if not isinstance(self.base, Mapping) or "$spec" not in self.base:
            _fail("base", "expected a device spec dict with a '$spec' key")
        # normalize to hashable, JSON-stable forms
        object.__setattr__(self, "base", _freeze(self.base))
        if not isinstance(self.path, str) or not self.path.strip():
            _fail("path", "expected a non-empty dotted spec path")
        try:
            values = tuple(float(v) for v in self.values)
        except (TypeError, ValueError):
            _fail("values", f"expected a sequence of numbers, got {self.values!r}")
        if not values:
            _fail("values", "sweep needs at least one value")
        if not all(math.isfinite(v) for v in values):
            _fail("values", "sweep values must be finite")
        object.__setattr__(self, "values", values)
        if not (isinstance(self.duration, (int, float))
                and math.isfinite(self.duration) and self.duration > 0):
            _fail("duration", f"must be a positive finite number, "
                              f"got {self.duration!r}")
        if not isinstance(self.tenant, str) or not self.tenant.strip():
            _fail("tenant", "expected a non-empty tenant name")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            _fail("priority", f"expected an int, got {self.priority!r}")
        if self.backend not in BACKENDS:
            _fail("backend", f"unknown backend {self.backend!r}; "
                             f"pick one of {BACKENDS}")
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 0
        ):
            _fail("workers", f"must be >= 0, got {self.workers!r}")
        if self.retries is not None and (
            not isinstance(self.retries, int) or self.retries < 0
        ):
            _fail("retries", f"must be >= 0, got {self.retries!r}")
        if self.timeout is not None and not (
            isinstance(self.timeout, (int, float)) and self.timeout > 0
        ):
            _fail("timeout", f"must be > 0, got {self.timeout!r}")
        if not isinstance(self.fabric, bool):
            _fail("fabric", f"expected a bool, got {self.fabric!r}")
        if not isinstance(self.chunk_size, int) \
                or isinstance(self.chunk_size, bool) or self.chunk_size < 1:
            _fail("chunk_size", f"must be an int >= 1, got {self.chunk_size!r}")

    # -- idempotency ---------------------------------------------------------

    def work_hash(self) -> str:
        """Stable idempotency key of the *computation* this job asks for.

        Hashes (device dict, path, values, duration) through
        :func:`repro.engine.stable_hash` — the same primitive under
        ``spec_hash`` and the result cache — and deliberately excludes
        tenant, priority, and executor knobs, so identical grids from
        different tenants (or at different worker counts) share one key.
        """
        from ..engine.cache import stable_hash

        return stable_hash(
            "repro-job", _thaw(self.base), self.path, list(self.values),
            self.duration,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        # not asdict(): the frozen base mapping must thaw, not deep-copy
        return {
            "base": _thaw(self.base),
            "path": self.path,
            "values": list(self.values),
            "duration": self.duration,
            "tenant": self.tenant,
            "priority": self.priority,
            "backend": self.backend,
            "workers": self.workers,
            "retries": self.retries,
            "timeout": self.timeout,
            "fabric": self.fabric,
            "chunk_size": self.chunk_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise JobError(f"job spec: expected a mapping, got "
                           f"{type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        for name in data:
            if name not in known:
                _fail(name, f"unknown job-spec field; "
                            f"known: {', '.join(sorted(known))}")
        kwargs = dict(data)
        if "values" in kwargs and isinstance(kwargs["values"], list):
            kwargs["values"] = tuple(kwargs["values"])
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise JobError(f"job spec: invalid JSON: {err}") from None
        return cls.from_dict(data)


def _freeze(value):
    """Recursively convert dicts/lists to hashable immutable twins."""
    if isinstance(value, Mapping):
        return _FrozenDict({k: _freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze`: back to plain JSON types."""
    if isinstance(value, Mapping):
        return {k: _thaw(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


class _FrozenDict(dict):
    """A dict that refuses mutation (so frozen specs stay value objects)."""

    def _readonly(self, *args, **kwargs):
        raise TypeError("job spec contents are immutable")

    __setitem__ = __delitem__ = _readonly
    pop = popitem = clear = update = setdefault = _readonly

    def __hash__(self) -> int:  # content hash, like the tuples around it
        return hash(tuple(sorted(self.items())))


@dataclass(frozen=True)
class JobState:
    """One immutable snapshot of a job's lifecycle and progress.

    ``completed`` counts every settled point (ok, failed, or cache
    hit); ``failed``/``cache_hits``/``retries`` break the total down.
    Timestamps are POSIX seconds (0 / None = not reached yet).
    """

    phase: str = "queued"
    total: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    retries: int = 0
    error: str = ""
    cancel_requested: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    def __post_init__(self) -> None:
        if self.phase not in JOB_PHASES:
            _fail("phase", f"unknown phase {self.phase!r}; "
                           f"known: {JOB_PHASES}")
        for name in ("total", "completed", "failed", "cache_hits", "retries"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                _fail(name, f"must be a non-negative int, got {v!r}")

    @property
    def terminal(self) -> bool:
        """True once the job can never change again."""
        return self.phase in JOB_TERMINAL_PHASES

    def advanced(self, **changes) -> "JobState":
        """A new snapshot with ``changes`` applied (frozen-friendly)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobState":
        known = {f for f in cls.__dataclass_fields__}
        for name in data:
            if name not in known:
                _fail(name, "unknown job-state field")
        return cls(**dict(data))


@dataclass(frozen=True)
class JobRecord:
    """The durable job row: spec + state + dedup linkage + result pointer.

    Parameters
    ----------
    job_id:
        Unique id minted at submission (:func:`new_job_id`).
    spec / state:
        The request and its current lifecycle snapshot.
    work_hash:
        Cached :meth:`JobSpec.work_hash` (indexed by the store for
        dedup lookups).
    dedup_of:
        Id of the earlier job with the same ``work_hash`` this one
        shares a computation with (``None`` = this job is the primary).
    result_key:
        :class:`~repro.engine.ResultCache` key of the finished result
        blob (``None`` until done).  Derived from ``work_hash``, so
        deduplicated jobs point at the same blob.
    resilience:
        Snapshot of the engine's resilience state (kernel degrades,
        breaker trips, retry totals) captured when the job finished.
    """

    job_id: str
    spec: JobSpec
    state: JobState = field(default_factory=JobState)
    work_hash: str = ""
    dedup_of: str | None = None
    result_key: str | None = None
    resilience: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.job_id, str) or not self.job_id:
            _fail("job_id", "expected a non-empty string")
        if not self.work_hash:
            object.__setattr__(self, "work_hash", self.spec.work_hash())
        if self.resilience is not None:
            object.__setattr__(self, "resilience", _freeze(self.resilience))

    def advanced(self, **state_changes) -> "JobRecord":
        """A new record whose state snapshot has ``state_changes`` applied."""
        return replace(self, state=self.state.advanced(**state_changes))

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state.to_dict(),
            "work_hash": self.work_hash,
            "dedup_of": self.dedup_of,
            "result_key": self.result_key,
            "resilience": _thaw(self.resilience)
            if self.resilience is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        for name in data:
            if name not in known:
                _fail(name, "unknown job-record field")
        kwargs = dict(data)
        kwargs["spec"] = JobSpec.from_dict(kwargs["spec"])
        if "state" in kwargs:
            kwargs["state"] = JobState.from_dict(kwargs["state"])
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise JobError(f"job record: invalid JSON: {err}") from None
        return cls.from_dict(data)
