"""Durable job store: SQLite today, Postgres-shaped on purpose.

The store is the service's source of truth: every job submission,
state transition, and per-point outcome lands here before the HTTP
layer acknowledges it, so a killed server process loses nothing — on
restart the pump re-queues orphaned ``running`` jobs and the result
cache makes the replay all hits.

Two layers:

* :class:`JobStore` — the abstract interface the scheduler, pump, and
  HTTP front end program against.  Nothing above this module may issue
  SQL.
* :class:`SQLiteJobStore` — the stdlib implementation.  Schema changes
  ship as ordered :data:`MIGRATIONS` recorded in a
  ``schema_migrations`` table (version + applied-at timestamp), so a
  store created by an older build upgrades in place at open — and a
  Postgres backend can replay the same ordered DDL.  Every call opens
  its own connection (WAL journal, busy timeout), which makes the
  store thread-safe for the pump's workers and process-safe for a
  sibling CLI poking at the same file.

Result *blobs* do not live here: finished sweep tables are written
through the checksummed :class:`~repro.engine.ResultCache` and the row
keeps only the cache key (``result_key``) — the store stays small and
the blobs inherit the cache's corruption detection.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..errors import ServiceError
from .jobs import JobRecord, JobSpec, JobState

__all__ = [
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "JobStore",
    "PointOutcome",
    "SQLiteJobStore",
    "open_job_store",
]

#: Ordered, append-only schema history.  Never edit a shipped entry —
#: add a new version; existing stores apply only what they are missing.
MIGRATIONS: tuple[tuple[int, tuple[str, ...]], ...] = (
    (
        1,
        (
            """
            CREATE TABLE IF NOT EXISTS jobs (
                job_id        TEXT PRIMARY KEY,
                tenant        TEXT NOT NULL,
                priority      INTEGER NOT NULL DEFAULT 0,
                phase         TEXT NOT NULL,
                work_hash     TEXT NOT NULL,
                dedup_of      TEXT,
                result_key    TEXT,
                spec_json     TEXT NOT NULL,
                state_json    TEXT NOT NULL,
                submitted_at  REAL NOT NULL,
                updated_at    REAL NOT NULL
            )
            """,
            "CREATE INDEX IF NOT EXISTS idx_jobs_phase ON jobs (phase)",
            "CREATE INDEX IF NOT EXISTS idx_jobs_work ON jobs (work_hash)",
            "CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant)",
            """
            CREATE TABLE IF NOT EXISTS outcomes (
                job_id   TEXT NOT NULL,
                idx      INTEGER NOT NULL,
                ok       INTEGER NOT NULL,
                cached   INTEGER NOT NULL DEFAULT 0,
                retries  INTEGER NOT NULL DEFAULT 0,
                error    TEXT NOT NULL DEFAULT '',
                health_json TEXT,
                PRIMARY KEY (job_id, idx)
            )
            """,
        ),
    ),
    (
        2,
        (
            # per-job resilience snapshot (kernel degrades, breaker trips)
            # surfaced in status payloads since the serve front end landed
            "ALTER TABLE jobs ADD COLUMN resilience_json TEXT",
        ),
    ),
)

#: The schema version a fresh store is created at.
SCHEMA_VERSION = MIGRATIONS[-1][0]


class PointOutcome:
    """One persisted grid-point outcome row (plain value object).

    The durable twin of :class:`~repro.engine.TaskOutcome`: keeps the
    verdict (ok/cached/retries/error) and the PR-5
    :class:`~repro.core.health.ChannelHealth` dict, not the value — the
    value lives in the result cache.
    """

    __slots__ = ("index", "ok", "cached", "retries", "error", "health")

    def __init__(self, index: int, ok: bool, cached: bool = False,
                 retries: int = 0, error: str = "",
                 health: Mapping | None = None) -> None:
        self.index = int(index)
        self.ok = bool(ok)
        self.cached = bool(cached)
        self.retries = int(retries)
        self.error = str(error)
        self.health = dict(health) if health is not None else None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "ok": self.ok,
            "cached": self.cached,
            "retries": self.retries,
            "error": self.error,
            "health": self.health,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "ok" if self.ok else f"error={self.error!r}"
        return f"PointOutcome(index={self.index}, {verdict})"


class JobStore:
    """Abstract durable job store (see :class:`SQLiteJobStore`).

    Implementations must make :meth:`claim` atomic — two pump workers
    claiming the same queued job must see exactly one winner — and make
    every mutation durable before returning.
    """

    def put(self, record: JobRecord) -> None:
        """Insert a new job row; raises on duplicate id."""
        raise NotImplementedError

    def get(self, job_id: str) -> JobRecord | None:
        """The current record for ``job_id``, or None."""
        raise NotImplementedError

    def update(self, record: JobRecord) -> None:
        """Replace the stored row for ``record.job_id``."""
        raise NotImplementedError

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[JobRecord]:
        """All matching jobs, oldest submission first."""
        raise NotImplementedError

    def claim(self, job_id: str) -> JobRecord | None:
        """Atomic ``queued -> running`` transition; None if lost the race."""
        raise NotImplementedError

    def find_by_work_hash(self, work_hash: str) -> list[JobRecord]:
        """Jobs sharing an idempotency key, oldest first (dedup lookup)."""
        raise NotImplementedError

    def request_cancel(self, job_id: str) -> JobRecord | None:
        """Durably flag a job for cancellation; returns the new record."""
        raise NotImplementedError

    def requeue_running(self) -> int:
        """Re-queue jobs orphaned mid-run by a dead process; returns count."""
        raise NotImplementedError

    def record_outcome(self, job_id: str, outcome: PointOutcome) -> None:
        """Upsert one per-point outcome row."""
        raise NotImplementedError

    def outcomes(self, job_id: str) -> list[PointOutcome]:
        """All persisted point outcomes of a job, in grid order."""
        raise NotImplementedError

    def counts(self) -> dict[str, int]:
        """Jobs per phase (zero-phases omitted)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (per-call-connection stores: no-op)."""


def open_job_store(url: str | Path) -> JobStore:
    """Open a job store from a location string.

    Accepts a filesystem path or a ``sqlite:///path`` URL.  Other URL
    schemes (``postgres://...``) name backends the interface is shaped
    for but this build does not ship; they raise :class:`ServiceError`
    eagerly rather than half-working.
    """
    text = str(url)
    if text.startswith("sqlite:///"):
        return SQLiteJobStore(text[len("sqlite:///"):])
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ServiceError(
            f"job-store backend {scheme!r} is not available in this build; "
            "use a filesystem path or sqlite:///path"
        )
    return SQLiteJobStore(text)


class SQLiteJobStore(JobStore):
    """Stdlib SQLite implementation of :class:`JobStore`.

    Parameters
    ----------
    path:
        Database file (parent directories are created).  ``":memory:"``
        is rejected — a memory store cannot honor the durability
        contract (and each call opens a fresh connection anyway).
    """

    def __init__(self, path: str | Path) -> None:
        if str(path) == ":memory:":
            raise ServiceError(
                "SQLiteJobStore needs a file path; ':memory:' would not "
                "survive the process, which defeats the durable-store contract"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._conn() as conn:
            self._migrate(conn)

    # -- connection & schema -------------------------------------------------

    @contextmanager
    def _conn(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            # WAL lets the pump write while a status poll reads; harmless
            # to re-request, quietly ignored on filesystems that refuse it
            conn.execute("PRAGMA journal_mode = WAL")
            yield conn
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            conn.close()

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Apply every migration newer than the store's recorded version."""
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS schema_migrations (
                version    INTEGER PRIMARY KEY,
                applied_at TEXT NOT NULL
            )
            """
        )
        applied = {
            row[0]
            for row in conn.execute("SELECT version FROM schema_migrations")
        }
        for version, statements in MIGRATIONS:
            if version in applied:
                continue
            for statement in statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_migrations (version, applied_at) "
                "VALUES (?, ?)",
                (version, time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())),
            )

    def schema_version(self) -> int:
        """Highest applied migration version."""
        with self._conn() as conn:
            row = conn.execute(
                "SELECT MAX(version) FROM schema_migrations"
            ).fetchone()
        return int(row[0] or 0)

    # -- row mapping ---------------------------------------------------------

    @staticmethod
    def _to_row(record: JobRecord) -> dict:
        return {
            "job_id": record.job_id,
            "tenant": record.spec.tenant,
            "priority": record.spec.priority,
            "phase": record.state.phase,
            "work_hash": record.work_hash,
            "dedup_of": record.dedup_of,
            "result_key": record.result_key,
            "spec_json": record.spec.to_json(),
            "state_json": json.dumps(record.state.to_dict()),
            "resilience_json": json.dumps(dict(record.resilience))
            if record.resilience is not None else None,
            "submitted_at": record.state.submitted_at,
            "updated_at": time.time(),
        }

    @staticmethod
    def _from_row(row: sqlite3.Row) -> JobRecord:
        resilience = None
        if row["resilience_json"]:
            resilience = json.loads(row["resilience_json"])
        return JobRecord(
            job_id=row["job_id"],
            spec=JobSpec.from_json(row["spec_json"]),
            state=JobState.from_dict(json.loads(row["state_json"])),
            work_hash=row["work_hash"],
            dedup_of=row["dedup_of"],
            result_key=row["result_key"],
            resilience=resilience,
        )

    # -- JobStore interface --------------------------------------------------

    def put(self, record: JobRecord) -> None:
        row = self._to_row(record)
        columns = ", ".join(row)
        holes = ", ".join(f":{c}" for c in row)
        try:
            with self._conn() as conn:
                conn.execute(
                    f"INSERT INTO jobs ({columns}) VALUES ({holes})", row
                )
        except sqlite3.IntegrityError:
            raise ServiceError(
                f"job {record.job_id!r} already exists"
            ) from None

    def get(self, job_id: str) -> JobRecord | None:
        with self._conn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._from_row(row) if row is not None else None

    def update(self, record: JobRecord) -> None:
        row = self._to_row(record)
        assignments = ", ".join(f"{c} = :{c}" for c in row if c != "job_id")
        with self._conn() as conn:
            cur = conn.execute(
                f"UPDATE jobs SET {assignments} WHERE job_id = :job_id", row
            )
            if cur.rowcount != 1:
                raise ServiceError(f"job {record.job_id!r} not found")

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[JobRecord]:
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if phase is not None:
            clauses.append("phase = ?")
            params.append(phase)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._conn() as conn:
            rows = conn.execute(
                f"SELECT * FROM jobs{where} "
                "ORDER BY submitted_at, job_id", params
            ).fetchall()
        return [self._from_row(r) for r in rows]

    def claim(self, job_id: str) -> JobRecord | None:
        """CAS on the phase column: exactly one claimer wins."""
        now = time.time()
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET phase = 'running', updated_at = ? "
                "WHERE job_id = ? AND phase = 'queued'",
                (now, job_id),
            )
            if cur.rowcount != 1:
                return None
        record = self.get(job_id)
        if record is None:  # pragma: no cover - deleted between statements
            return None
        record = record.advanced(phase="running", started_at=now)
        self.update(record)
        return record

    def find_by_work_hash(self, work_hash: str) -> list[JobRecord]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE work_hash = ? "
                "ORDER BY submitted_at, job_id",
                (work_hash,),
            ).fetchall()
        return [self._from_row(r) for r in rows]

    def request_cancel(self, job_id: str) -> JobRecord | None:
        record = self.get(job_id)
        if record is None:
            return None
        if record.state.terminal:
            return record
        if record.state.phase == "queued":
            record = record.advanced(
                phase="cancelled", cancel_requested=True,
                finished_at=time.time(),
            )
        else:
            record = record.advanced(cancel_requested=True)
        self.update(record)
        return record

    def requeue_running(self) -> int:
        requeued = 0
        for record in self.list_jobs(phase="running"):
            self.update(record.advanced(phase="queued", started_at=None))
            requeued += 1
        return requeued

    def record_outcome(self, job_id: str, outcome: PointOutcome) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO outcomes "
                "(job_id, idx, ok, cached, retries, error, health_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id, outcome.index, int(outcome.ok),
                    int(outcome.cached), outcome.retries, outcome.error,
                    json.dumps(outcome.health)
                    if outcome.health is not None else None,
                ),
            )

    def record_outcomes(self, job_id: str,
                        outcomes: Sequence[PointOutcome]) -> None:
        """Bulk upsert (one transaction) for batch completions."""
        with self._conn() as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO outcomes "
                "(job_id, idx, ok, cached, retries, error, health_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        job_id, o.index, int(o.ok), int(o.cached), o.retries,
                        o.error,
                        json.dumps(o.health) if o.health is not None else None,
                    )
                    for o in outcomes
                ],
            )

    def outcomes(self, job_id: str) -> list[PointOutcome]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM outcomes WHERE job_id = ? ORDER BY idx",
                (job_id,),
            ).fetchall()
        return [
            PointOutcome(
                index=row["idx"], ok=bool(row["ok"]),
                cached=bool(row["cached"]), retries=row["retries"],
                error=row["error"],
                health=json.loads(row["health_json"])
                if row["health_json"] else None,
            )
            for row in rows
        ]

    def counts(self) -> dict[str, int]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT phase, COUNT(*) AS n FROM jobs GROUP BY phase"
            ).fetchall()
        return {row["phase"]: row["n"] for row in rows}
