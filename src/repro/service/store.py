"""Durable job store: SQLite today, Postgres-shaped on purpose.

The store is the service's source of truth: every job submission,
state transition, and per-point outcome lands here before the HTTP
layer acknowledges it, so a killed server process loses nothing — on
restart the pump re-queues orphaned ``running`` jobs and the result
cache makes the replay all hits.

Two layers:

* :class:`JobStore` — the abstract interface the scheduler, pump, and
  HTTP front end program against.  Nothing above this module may issue
  SQL.
* :class:`SQLiteJobStore` — the stdlib implementation.  Schema changes
  ship as ordered :data:`MIGRATIONS` recorded in a
  ``schema_migrations`` table (version + applied-at timestamp), so a
  store created by an older build upgrades in place at open — and a
  Postgres backend can replay the same ordered DDL.  Every call opens
  its own connection (WAL journal, busy timeout), which makes the
  store thread-safe for the pump's workers and process-safe for a
  sibling CLI poking at the same file.

Result *blobs* do not live here: finished sweep tables are written
through the checksummed :class:`~repro.engine.ResultCache` and the row
keeps only the cache key (``result_key``) — the store stays small and
the blobs inherit the cache's corruption detection.
"""

from __future__ import annotations

import functools
import json
import logging
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..engine.resilience import RetryPolicy, poll_fault
from ..errors import ServiceError
from .jobs import JobRecord, JobSpec, JobState

logger = logging.getLogger(__name__)

__all__ = [
    "CHUNK_STATES",
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "ChunkRow",
    "JobStore",
    "PointOutcome",
    "SQLiteJobStore",
    "open_job_store",
]

#: Ordered, append-only schema history.  Never edit a shipped entry —
#: add a new version; existing stores apply only what they are missing.
MIGRATIONS: tuple[tuple[int, tuple[str, ...]], ...] = (
    (
        1,
        (
            """
            CREATE TABLE IF NOT EXISTS jobs (
                job_id        TEXT PRIMARY KEY,
                tenant        TEXT NOT NULL,
                priority      INTEGER NOT NULL DEFAULT 0,
                phase         TEXT NOT NULL,
                work_hash     TEXT NOT NULL,
                dedup_of      TEXT,
                result_key    TEXT,
                spec_json     TEXT NOT NULL,
                state_json    TEXT NOT NULL,
                submitted_at  REAL NOT NULL,
                updated_at    REAL NOT NULL
            )
            """,
            "CREATE INDEX IF NOT EXISTS idx_jobs_phase ON jobs (phase)",
            "CREATE INDEX IF NOT EXISTS idx_jobs_work ON jobs (work_hash)",
            "CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant)",
            """
            CREATE TABLE IF NOT EXISTS outcomes (
                job_id   TEXT NOT NULL,
                idx      INTEGER NOT NULL,
                ok       INTEGER NOT NULL,
                cached   INTEGER NOT NULL DEFAULT 0,
                retries  INTEGER NOT NULL DEFAULT 0,
                error    TEXT NOT NULL DEFAULT '',
                health_json TEXT,
                PRIMARY KEY (job_id, idx)
            )
            """,
        ),
    ),
    (
        2,
        (
            # per-job resilience snapshot (kernel degrades, breaker trips)
            # surfaced in status payloads since the serve front end landed
            "ALTER TABLE jobs ADD COLUMN resilience_json TEXT",
        ),
    ),
    (
        3,
        (
            # sweep-fabric chunk leases: a fabric job's grid is split
            # into contiguous [start, stop) slices that workers lease,
            # heartbeat, and complete.  Lease expiry requeues the chunk;
            # attempts accumulate across leases so repeated failure can
            # park a chunk as 'failed' instead of looping forever.
            """
            CREATE TABLE IF NOT EXISTS chunks (
                job_id            TEXT NOT NULL,
                chunk_id          INTEGER NOT NULL,
                start             INTEGER NOT NULL,
                stop              INTEGER NOT NULL,
                state             TEXT NOT NULL DEFAULT 'queued',
                worker_id         TEXT,
                lease_expires_at  REAL,
                attempts          INTEGER NOT NULL DEFAULT 0,
                error             TEXT NOT NULL DEFAULT '',
                updated_at        REAL NOT NULL,
                PRIMARY KEY (job_id, chunk_id)
            )
            """,
            "CREATE INDEX IF NOT EXISTS idx_chunks_state ON chunks (state)",
        ),
    ),
)

#: Lifecycle of one fabric chunk row.
CHUNK_STATES = ("queued", "leased", "done", "failed")

#: The schema version a fresh store is created at.
SCHEMA_VERSION = MIGRATIONS[-1][0]


class PointOutcome:
    """One persisted grid-point outcome row (plain value object).

    The durable twin of :class:`~repro.engine.TaskOutcome`: keeps the
    verdict (ok/cached/retries/error) and the PR-5
    :class:`~repro.core.health.ChannelHealth` dict, not the value — the
    value lives in the result cache.
    """

    __slots__ = ("index", "ok", "cached", "retries", "error", "health")

    def __init__(self, index: int, ok: bool, cached: bool = False,
                 retries: int = 0, error: str = "",
                 health: Mapping | None = None) -> None:
        self.index = int(index)
        self.ok = bool(ok)
        self.cached = bool(cached)
        self.retries = int(retries)
        self.error = str(error)
        self.health = dict(health) if health is not None else None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "ok": self.ok,
            "cached": self.cached,
            "retries": self.retries,
            "error": self.error,
            "health": self.health,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "ok" if self.ok else f"error={self.error!r}"
        return f"PointOutcome(index={self.index}, {verdict})"


class ChunkRow:
    """One fabric chunk: a leased ``[start, stop)`` slice of a job's grid."""

    __slots__ = ("job_id", "chunk_id", "start", "stop", "state",
                 "worker_id", "lease_expires_at", "attempts", "error")

    def __init__(self, job_id: str, chunk_id: int, start: int, stop: int,
                 state: str = "queued", worker_id: str | None = None,
                 lease_expires_at: float | None = None, attempts: int = 0,
                 error: str = "") -> None:
        self.job_id = str(job_id)
        self.chunk_id = int(chunk_id)
        self.start = int(start)
        self.stop = int(stop)
        self.state = str(state)
        self.worker_id = worker_id
        self.lease_expires_at = lease_expires_at
        self.attempts = int(attempts)
        self.error = str(error)

    @property
    def size(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "chunk_id": self.chunk_id,
            "start": self.start,
            "stop": self.stop,
            "state": self.state,
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChunkRow":
        return cls(**{slot: data[slot] for slot in cls.__slots__})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkRow({self.job_id}/{self.chunk_id} "
            f"[{self.start}:{self.stop}) {self.state})"
        )


class JobStore:
    """Abstract durable job store (see :class:`SQLiteJobStore`).

    Implementations must make :meth:`claim` atomic — two pump workers
    claiming the same queued job must see exactly one winner — and make
    every mutation durable before returning.
    """

    def put(self, record: JobRecord) -> None:
        """Insert a new job row; raises on duplicate id."""
        raise NotImplementedError

    def get(self, job_id: str) -> JobRecord | None:
        """The current record for ``job_id``, or None."""
        raise NotImplementedError

    def update(self, record: JobRecord) -> None:
        """Replace the stored row for ``record.job_id``."""
        raise NotImplementedError

    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[JobRecord]:
        """All matching jobs, oldest submission first."""
        raise NotImplementedError

    def claim(self, job_id: str) -> JobRecord | None:
        """Atomic ``queued -> running`` transition; None if lost the race."""
        raise NotImplementedError

    def find_by_work_hash(self, work_hash: str) -> list[JobRecord]:
        """Jobs sharing an idempotency key, oldest first (dedup lookup)."""
        raise NotImplementedError

    def request_cancel(self, job_id: str) -> JobRecord | None:
        """Durably flag a job for cancellation; returns the new record."""
        raise NotImplementedError

    def requeue_running(self) -> int:
        """Re-queue jobs orphaned mid-run by a dead process; returns count."""
        raise NotImplementedError

    def record_outcome(self, job_id: str, outcome: PointOutcome) -> None:
        """Upsert one per-point outcome row."""
        raise NotImplementedError

    def record_outcomes(self, job_id: str,
                        outcomes: Sequence[PointOutcome]) -> None:
        """Bulk upsert; backends may override with one transaction."""
        for outcome in outcomes:
            self.record_outcome(job_id, outcome)

    def outcomes(self, job_id: str) -> list[PointOutcome]:
        """All persisted point outcomes of a job, in grid order."""
        raise NotImplementedError

    def counts(self) -> dict[str, int]:
        """Jobs per phase (zero-phases omitted)."""
        raise NotImplementedError

    # -- fabric chunk leases -------------------------------------------------

    def create_chunks(self, job_id: str,
                      bounds: Sequence[tuple[int, int]]) -> int:
        """Insert queued chunk rows (idempotent); returns rows created.

        Re-submitting the same job's chunk plan is a no-op for rows that
        already exist, so resume-after-crash never duplicates work.
        """
        raise NotImplementedError

    def lease_chunk(self, worker_id: str, lease_seconds: float,
                    job_id: str | None = None) -> ChunkRow | None:
        """Atomically lease the oldest queued chunk; None when idle.

        Exactly one worker wins each chunk (CAS on state); the lease
        expires at ``now + lease_seconds`` unless heartbeat-extended.
        """
        raise NotImplementedError

    def heartbeat_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                        lease_seconds: float) -> bool:
        """Extend a held lease; False when it was lost (expired/requeued)."""
        raise NotImplementedError

    def complete_chunk(self, job_id: str, chunk_id: int,
                       worker_id: str) -> bool:
        """Mark a held lease done; False when the lease was lost."""
        raise NotImplementedError

    def fail_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                   error: str, max_attempts: int = 3) -> str | None:
        """Record a chunk failure; the chunk's new state, or None.

        Requeues the chunk until its accumulated attempts reach
        ``max_attempts``, then parks it as ``'failed'``.  Returns None
        when the caller no longer held the lease.
        """
        raise NotImplementedError

    def expire_chunk_leases(self, now: float | None = None) -> int:
        """Requeue every leased chunk whose lease expired; returns count.

        The fabric's watchdog: a worker that died (or lost its network)
        stops heartbeating, its leases lapse, and the chunks go back in
        the queue for a live worker.
        """
        raise NotImplementedError

    def chunks(self, job_id: str) -> list[ChunkRow]:
        """All chunk rows of a job, in chunk order."""
        raise NotImplementedError

    def chunk_counts(self, job_id: str) -> dict[str, int]:
        """Chunks per state for one job (zero-states omitted)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (per-call-connection stores: no-op)."""


def open_job_store(url: str | Path) -> JobStore:
    """Open a job store from a location string.

    Accepts a filesystem path or a ``sqlite:///path`` URL.  Other URL
    schemes (``postgres://...``) name backends the interface is shaped
    for but this build does not ship; they raise :class:`ServiceError`
    eagerly rather than half-working.
    """
    text = str(url)
    if text.startswith("sqlite:///"):
        return SQLiteJobStore(text[len("sqlite:///"):])
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ServiceError(
            f"job-store backend {scheme!r} is not available in this build; "
            "use a filesystem path or sqlite:///path"
        )
    return SQLiteJobStore(text)


#: Bounded, deterministic backoff for SQLITE_BUSY contention.  SQLite's
#: own ``busy_timeout`` blocks *inside* one statement; this retries the
#: whole store call, covering the "database is locked" errors the busy
#: handler cannot (e.g. a write colliding with a lagging WAL checkpoint).
_LOCK_RETRY = RetryPolicy(
    retries=5, base_delay=0.01, multiplier=2.0, max_delay=0.25, jitter=0.1,
)


def _is_locked(err: sqlite3.OperationalError) -> bool:
    msg = str(err).lower()
    return "locked" in msg or "busy" in msg


def _retry_locked(fn):
    """Retry a store call on ``sqlite3.OperationalError: database is locked``.

    Every public :class:`SQLiteJobStore` method wears this, so two
    workers hammering one ``--db`` never surface a raw lock error.  The
    ``store.op`` fault site injects the lock at the top of each attempt,
    which exercises exactly this loop.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        for attempt in range(_LOCK_RETRY.retries + 1):
            try:
                fault = poll_fault("store.op")
                if fault is not None:
                    raise sqlite3.OperationalError(
                        "database is locked (injected)")
                return fn(self, *args, **kwargs)
            except sqlite3.OperationalError as err:
                if not _is_locked(err) or attempt >= _LOCK_RETRY.retries:
                    raise
                delay = _LOCK_RETRY.delay(attempt, key=fn.__name__)
                logger.warning(
                    "store %s hit %s; retry %d/%d in %.3fs",
                    fn.__name__, err, attempt + 1, _LOCK_RETRY.retries, delay,
                )
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    return wrapper


class SQLiteJobStore(JobStore):
    """Stdlib SQLite implementation of :class:`JobStore`.

    Parameters
    ----------
    path:
        Database file (parent directories are created).  ``":memory:"``
        is rejected — a memory store cannot honor the durability
        contract (and each call opens a fresh connection anyway).
    """

    def __init__(self, path: str | Path) -> None:
        if str(path) == ":memory:":
            raise ServiceError(
                "SQLiteJobStore needs a file path; ':memory:' would not "
                "survive the process, which defeats the durable-store contract"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._conn() as conn:
            self._migrate(conn)

    # -- connection & schema -------------------------------------------------

    @contextmanager
    def _conn(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            # WAL lets the pump write while a status poll reads; harmless
            # to re-request, quietly ignored on filesystems that refuse it
            conn.execute("PRAGMA journal_mode = WAL")
            yield conn
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            conn.close()

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Apply every migration newer than the store's recorded version."""
        conn.execute(
            """
            CREATE TABLE IF NOT EXISTS schema_migrations (
                version    INTEGER PRIMARY KEY,
                applied_at TEXT NOT NULL
            )
            """
        )
        applied = {
            row[0]
            for row in conn.execute("SELECT version FROM schema_migrations")
        }
        for version, statements in MIGRATIONS:
            if version in applied:
                continue
            for statement in statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_migrations (version, applied_at) "
                "VALUES (?, ?)",
                (version, time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())),
            )

    def schema_version(self) -> int:
        """Highest applied migration version."""
        with self._conn() as conn:
            row = conn.execute(
                "SELECT MAX(version) FROM schema_migrations"
            ).fetchone()
        return int(row[0] or 0)

    # -- row mapping ---------------------------------------------------------

    @staticmethod
    def _to_row(record: JobRecord) -> dict:
        return {
            "job_id": record.job_id,
            "tenant": record.spec.tenant,
            "priority": record.spec.priority,
            "phase": record.state.phase,
            "work_hash": record.work_hash,
            "dedup_of": record.dedup_of,
            "result_key": record.result_key,
            "spec_json": record.spec.to_json(),
            "state_json": json.dumps(record.state.to_dict()),
            "resilience_json": json.dumps(dict(record.resilience))
            if record.resilience is not None else None,
            "submitted_at": record.state.submitted_at,
            "updated_at": time.time(),
        }

    @staticmethod
    def _from_row(row: sqlite3.Row) -> JobRecord:
        resilience = None
        if row["resilience_json"]:
            resilience = json.loads(row["resilience_json"])
        return JobRecord(
            job_id=row["job_id"],
            spec=JobSpec.from_json(row["spec_json"]),
            state=JobState.from_dict(json.loads(row["state_json"])),
            work_hash=row["work_hash"],
            dedup_of=row["dedup_of"],
            result_key=row["result_key"],
            resilience=resilience,
        )

    # -- JobStore interface --------------------------------------------------

    @_retry_locked
    def put(self, record: JobRecord) -> None:
        row = self._to_row(record)
        columns = ", ".join(row)
        holes = ", ".join(f":{c}" for c in row)
        try:
            with self._conn() as conn:
                conn.execute(
                    f"INSERT INTO jobs ({columns}) VALUES ({holes})", row
                )
        except sqlite3.IntegrityError:
            raise ServiceError(
                f"job {record.job_id!r} already exists"
            ) from None

    @_retry_locked
    def get(self, job_id: str) -> JobRecord | None:
        with self._conn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._from_row(row) if row is not None else None

    @_retry_locked
    def update(self, record: JobRecord) -> None:
        row = self._to_row(record)
        assignments = ", ".join(f"{c} = :{c}" for c in row if c != "job_id")
        with self._conn() as conn:
            cur = conn.execute(
                f"UPDATE jobs SET {assignments} WHERE job_id = :job_id", row
            )
            if cur.rowcount != 1:
                raise ServiceError(f"job {record.job_id!r} not found")

    @_retry_locked
    def list_jobs(self, tenant: str | None = None,
                  phase: str | None = None) -> list[JobRecord]:
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if phase is not None:
            clauses.append("phase = ?")
            params.append(phase)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._conn() as conn:
            rows = conn.execute(
                f"SELECT * FROM jobs{where} "
                "ORDER BY submitted_at, job_id", params
            ).fetchall()
        return [self._from_row(r) for r in rows]

    @_retry_locked
    def claim(self, job_id: str) -> JobRecord | None:
        """CAS on the phase column: exactly one claimer wins."""
        now = time.time()
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET phase = 'running', updated_at = ? "
                "WHERE job_id = ? AND phase = 'queued'",
                (now, job_id),
            )
            if cur.rowcount != 1:
                return None
        record = self.get(job_id)
        if record is None:  # pragma: no cover - deleted between statements
            return None
        record = record.advanced(phase="running", started_at=now)
        self.update(record)
        return record

    @_retry_locked
    def find_by_work_hash(self, work_hash: str) -> list[JobRecord]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE work_hash = ? "
                "ORDER BY submitted_at, job_id",
                (work_hash,),
            ).fetchall()
        return [self._from_row(r) for r in rows]

    @_retry_locked
    def request_cancel(self, job_id: str) -> JobRecord | None:
        record = self.get(job_id)
        if record is None:
            return None
        if record.state.terminal:
            return record
        if record.state.phase == "queued":
            record = record.advanced(
                phase="cancelled", cancel_requested=True,
                finished_at=time.time(),
            )
        else:
            record = record.advanced(cancel_requested=True)
        self.update(record)
        return record

    @_retry_locked
    def requeue_running(self) -> int:
        requeued = 0
        for record in self.list_jobs(phase="running"):
            self.update(record.advanced(phase="queued", started_at=None))
            requeued += 1
        return requeued

    @_retry_locked
    def record_outcome(self, job_id: str, outcome: PointOutcome) -> None:
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO outcomes "
                "(job_id, idx, ok, cached, retries, error, health_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id, outcome.index, int(outcome.ok),
                    int(outcome.cached), outcome.retries, outcome.error,
                    json.dumps(outcome.health)
                    if outcome.health is not None else None,
                ),
            )

    @_retry_locked
    def record_outcomes(self, job_id: str,
                        outcomes: Sequence[PointOutcome]) -> None:
        """Bulk upsert (one transaction) for batch completions."""
        with self._conn() as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO outcomes "
                "(job_id, idx, ok, cached, retries, error, health_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        job_id, o.index, int(o.ok), int(o.cached), o.retries,
                        o.error,
                        json.dumps(o.health) if o.health is not None else None,
                    )
                    for o in outcomes
                ],
            )

    @_retry_locked
    def outcomes(self, job_id: str) -> list[PointOutcome]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM outcomes WHERE job_id = ? ORDER BY idx",
                (job_id,),
            ).fetchall()
        return [
            PointOutcome(
                index=row["idx"], ok=bool(row["ok"]),
                cached=bool(row["cached"]), retries=row["retries"],
                error=row["error"],
                health=json.loads(row["health_json"])
                if row["health_json"] else None,
            )
            for row in rows
        ]

    @_retry_locked
    def counts(self) -> dict[str, int]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT phase, COUNT(*) AS n FROM jobs GROUP BY phase"
            ).fetchall()
        return {row["phase"]: row["n"] for row in rows}

    # -- fabric chunk leases -------------------------------------------------

    @staticmethod
    def _chunk_from_row(row: sqlite3.Row) -> ChunkRow:
        return ChunkRow(
            job_id=row["job_id"], chunk_id=row["chunk_id"],
            start=row["start"], stop=row["stop"], state=row["state"],
            worker_id=row["worker_id"],
            lease_expires_at=row["lease_expires_at"],
            attempts=row["attempts"], error=row["error"],
        )

    @_retry_locked
    def create_chunks(self, job_id: str,
                      bounds: Sequence[tuple[int, int]]) -> int:
        now = time.time()
        with self._conn() as conn:
            cur = conn.executemany(
                "INSERT OR IGNORE INTO chunks "
                "(job_id, chunk_id, start, stop, state, updated_at) "
                "VALUES (?, ?, ?, ?, 'queued', ?)",
                [
                    (job_id, i, int(start), int(stop), now)
                    for i, (start, stop) in enumerate(bounds)
                ],
            )
            return max(cur.rowcount, 0)

    @_retry_locked
    def lease_chunk(self, worker_id: str, lease_seconds: float,
                    job_id: str | None = None) -> ChunkRow | None:
        """Select-then-CAS loop: the UPDATE's state guard picks one winner."""
        where = "state = 'queued'"
        params: list = []
        if job_id is not None:
            where += " AND job_id = ?"
            params.append(job_id)
        for _ in range(8):
            now = time.time()
            with self._conn() as conn:
                row = conn.execute(
                    f"SELECT job_id, chunk_id FROM chunks WHERE {where} "
                    "ORDER BY job_id, chunk_id LIMIT 1", params
                ).fetchone()
                if row is None:
                    return None
                if poll_fault("store.claim") is not None:
                    # injected CAS race: another worker "won" this row
                    # between our SELECT and UPDATE; go around again
                    continue
                cur = conn.execute(
                    "UPDATE chunks SET state = 'leased', worker_id = ?, "
                    "lease_expires_at = ?, attempts = attempts + 1, "
                    "updated_at = ? "
                    "WHERE job_id = ? AND chunk_id = ? AND state = 'queued'",
                    (worker_id, now + float(lease_seconds), now,
                     row["job_id"], row["chunk_id"]),
                )
                if cur.rowcount == 1:
                    full = conn.execute(
                        "SELECT * FROM chunks "
                        "WHERE job_id = ? AND chunk_id = ?",
                        (row["job_id"], row["chunk_id"]),
                    ).fetchone()
                    return self._chunk_from_row(full)
        return None  # pragma: no cover - 8 straight lost races

    @_retry_locked
    def heartbeat_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                        lease_seconds: float) -> bool:
        now = time.time()
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE chunks SET lease_expires_at = ?, updated_at = ? "
                "WHERE job_id = ? AND chunk_id = ? AND state = 'leased' "
                "AND worker_id = ?",
                (now + float(lease_seconds), now, job_id, chunk_id,
                 worker_id),
            )
            return cur.rowcount == 1

    @_retry_locked
    def complete_chunk(self, job_id: str, chunk_id: int,
                       worker_id: str) -> bool:
        """CAS the chunk to ``done``; idempotent for the completing worker.

        A worker retrying a completion whose first ack was lost finds
        the chunk already ``done`` under its own ``worker_id`` and gets
        ``True`` back (nothing rewritten).  A worker whose lease was
        reassigned gets ``False`` — the stale completion is logged and
        dropped without touching the new owner's attempt counter.
        """
        now = time.time()
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE chunks SET state = 'done', lease_expires_at = NULL, "
                "error = '', updated_at = ? "
                "WHERE job_id = ? AND chunk_id = ? AND state = 'leased' "
                "AND worker_id = ?",
                (now, job_id, chunk_id, worker_id),
            )
            if cur.rowcount == 1:
                return True
            row = conn.execute(
                "SELECT state, worker_id FROM chunks "
                "WHERE job_id = ? AND chunk_id = ?",
                (job_id, chunk_id),
            ).fetchone()
        if (row is not None and row["state"] == "done"
                and row["worker_id"] == worker_id):
            logger.info(
                "duplicate completion of chunk %s/%d by %s acknowledged "
                "(first ack lost)", job_id, chunk_id, worker_id,
            )
            return True
        logger.warning(
            "dropping stale completion of chunk %s/%d by %s "
            "(row now %s)", job_id, chunk_id, worker_id,
            dict(row) if row is not None else None,
        )
        return False

    @_retry_locked
    def fail_chunk(self, job_id: str, chunk_id: int, worker_id: str,
                   error: str, max_attempts: int = 3) -> str | None:
        now = time.time()
        with self._conn() as conn:
            row = conn.execute(
                "SELECT attempts FROM chunks "
                "WHERE job_id = ? AND chunk_id = ? AND state = 'leased' "
                "AND worker_id = ?",
                (job_id, chunk_id, worker_id),
            ).fetchone()
            if row is None:
                return None
            state = "failed" if row["attempts"] >= int(max_attempts) \
                else "queued"
            conn.execute(
                "UPDATE chunks SET state = ?, worker_id = NULL, "
                "lease_expires_at = NULL, error = ?, updated_at = ? "
                "WHERE job_id = ? AND chunk_id = ? AND state = 'leased' "
                "AND worker_id = ?",
                (state, str(error), now, job_id, chunk_id, worker_id),
            )
            return state

    @_retry_locked
    def expire_chunk_leases(self, now: float | None = None) -> int:
        now = time.time() if now is None else float(now)
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE chunks SET state = 'queued', worker_id = NULL, "
                "lease_expires_at = NULL, updated_at = ? "
                "WHERE state = 'leased' AND lease_expires_at < ?",
                (now, now),
            )
            return max(cur.rowcount, 0)

    @_retry_locked
    def chunks(self, job_id: str) -> list[ChunkRow]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT * FROM chunks WHERE job_id = ? ORDER BY chunk_id",
                (job_id,),
            ).fetchall()
        return [self._chunk_from_row(r) for r in rows]

    @_retry_locked
    def chunk_counts(self, job_id: str) -> dict[str, int]:
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM chunks "
                "WHERE job_id = ? GROUP BY state",
                (job_id,),
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}
