"""The resonant feedback loop: time-domain simulation and loop analysis."""

from .agc import (
    AmplitudePrediction,
    GainAdaptation,
    adapt_to_damping,
    predict_amplitude,
    predicted_startup_time,
)
from .barkhausen import BarkhausenResult, analyze, loop_gain, startup_check
from .loop import (
    LoopRecord,
    ResonantFeedbackLoop,
    displacement_to_stress_gain,
    run_batch,
)
from .multimode import MultiModeLoop, run_multimode_batch

__all__ = [
    "AmplitudePrediction",
    "BarkhausenResult",
    "GainAdaptation",
    "LoopRecord",
    "MultiModeLoop",
    "ResonantFeedbackLoop",
    "adapt_to_damping",
    "analyze",
    "displacement_to_stress_gain",
    "loop_gain",
    "predict_amplitude",
    "predicted_startup_time",
    "run_batch",
    "run_multimode_batch",
    "startup_check",
]
