"""Amplitude behaviour of the limiter-stabilized loop.

The non-linear amplifier of Fig. 5 makes the oscillation amplitude
self-regulating: as the amplitude grows, the limiter's effective
(describing-function) gain falls, and the loop settles where the total
gain is exactly one.  This module predicts that steady state and
provides the liquid-adaptation routine: given the fluid-loaded Q, choose
the VGA setting that keeps both the startup margin and the predicted
amplitude inside the target window — what the paper's "adjust to
different mechanical damping of the cantilever, due to different
liquids" amounts to operationally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import OscillationError
from ..units import require_positive
from .barkhausen import analyze
from .loop import ResonantFeedbackLoop


@dataclass(frozen=True)
class AmplitudePrediction:
    """Describing-function steady-state prediction."""

    limiter_input_amplitude: float
    limiter_output_amplitude: float
    tip_amplitude: float
    effective_limiter_gain: float


def predict_amplitude(
    loop: ResonantFeedbackLoop, sample_rate: float
) -> AmplitudePrediction:
    """Steady-state oscillation amplitude from the describing function.

    At steady state the limiter's effective gain must be
    ``small_signal_gain / |L|`` with ``|L|`` the small-signal loop gain:
    the rest of the loop contributes ``|L| / A_lim_ss``, so
    ``N(a) * |L| / A_lim_ss = 1``.  Inverting the describing function
    gives the limiter input amplitude; propagating around the loop gives
    the mechanical tip amplitude.
    """
    result = analyze(loop, sample_rate)
    if not result.will_oscillate:
        raise OscillationError(
            f"loop gain {result.loop_gain_magnitude:.3g} < 1: no oscillation "
            "to stabilize (raise the VGA gain)"
        )
    a_lim_ss = loop.limiter.small_signal_gain
    target_gain = a_lim_ss / result.loop_gain_magnitude
    a_in = loop.limiter.amplitude_for_gain(target_gain)
    n_eff = loop.limiter.describing_function(a_in)
    a_out = n_eff * a_in

    # tip amplitude: walk back from the limiter input through the
    # pre-limiter chain gain at the oscillation frequency
    f_osc = result.oscillation_frequency
    pre_gain = loop.displacement_to_voltage * abs(
        loop.electrical_gain_at(f_osc, sample_rate)
    ) / loop.limiter.small_signal_gain
    tip = a_in / pre_gain if pre_gain > 0.0 else math.inf

    return AmplitudePrediction(
        limiter_input_amplitude=a_in,
        limiter_output_amplitude=a_out,
        tip_amplitude=tip,
        effective_limiter_gain=n_eff,
    )


def predicted_startup_time(
    loop: ResonantFeedbackLoop,
    sample_rate: float,
    initial_amplitude: float = 1e-12,
) -> float:
    """Time [s] for the oscillation to grow from a seed to steady state.

    While the limiter is still linear the envelope grows exponentially
    with rate ``(|L| - 1) w0 / (2 Q)`` (excess loop gain converted to
    negative damping), so

        t_startup ~ 2 Q / ((|L| - 1) w0) * ln(a_ss / a_0)

    The tests check this against the time-domain simulation — it is the
    spec that tells a user how long after power-on the counter reading
    is valid.
    """
    require_positive("initial_amplitude", initial_amplitude)
    result = analyze(loop, sample_rate)
    if not result.will_oscillate:
        raise OscillationError("loop gain below 1: no startup to time")
    a_ss = predict_amplitude(loop, sample_rate).tip_amplitude
    if a_ss <= initial_amplitude:
        return 0.0
    q = loop.resonator.quality_factor
    w0 = 2.0 * math.pi * loop.resonator.natural_frequency
    rate = (result.loop_gain_magnitude - 1.0) * w0 / (2.0 * q)
    return math.log(a_ss / initial_amplitude) / rate


@dataclass(frozen=True)
class GainAdaptation:
    """Result of adapting the VGA to a liquid's damping."""

    quality_factor: float
    vga_setting: int
    vga_gain_db: float
    loop_gain_magnitude: float
    predicted_tip_amplitude: float


def adapt_to_damping(
    loop: ResonantFeedbackLoop,
    sample_rate: float,
    startup_factor: float = 3.0,
) -> GainAdaptation:
    """Program the VGA for the current resonator damping and report.

    This is the operational content of the paper's VGA: re-run it after
    changing the resonator's Q (new liquid) and the loop stays alive.
    """
    require_positive("startup_factor", startup_factor)
    loop.auto_gain(sample_rate, startup_factor)
    prediction = predict_amplitude(loop, sample_rate)
    from .barkhausen import analyze as _analyze

    result = _analyze(loop, sample_rate)
    return GainAdaptation(
        quality_factor=loop.resonator.quality_factor,
        vga_setting=loop.vga.setting,
        vga_gain_db=loop.vga.gain_db,
        loop_gain_magnitude=result.loop_gain_magnitude,
        predicted_tip_amplitude=prediction.tip_amplitude,
    )
