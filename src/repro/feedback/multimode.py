"""Multi-mode loop dynamics: which mode does the oscillator pick?

The real cantilever has *many* modes inside the electrical chain's
bandwidth, and a self-oscillating loop locks onto whichever satisfies
Barkhausen with the most margin — a classic design trap: a loop meant
to run on mode 1 can wake up on mode 2 if the filters leave it more
gain.  This module closes the Fig. 5 loop around several modes at once:

* each mode advances with its own exact-ZOH propagator (the modes are
  orthogonal, so the mechanics stay block-diagonal);
* the bridge output sums the modes' contributions with their own
  displacement-to-stress gains (mode curvature at the bridge);
* the Lorentz tip force drives every mode (tip-normalized shapes all
  see the tip force with weight 1).

EXT10 demonstrates mode *selection by filtering*: identical hardware,
two filter configurations, two different winning modes.
"""

from __future__ import annotations

import numpy as np

from ..actuation.lorentz import LorentzActuator
from ..circuits.signal import Signal
from ..engine.kernel import (
    FusedLoopKernel,
    KernelBatch,
    batch_signature,
    lower_block,
    record_fallback,
    resolve_backend,
)
from ..engine.resilience import poll_fault
from ..errors import LoweringError, OscillationError
from ..mechanics.dynamics import ModalResonator
from ..transduction.placement import CLAMPED_EDGE
from ..transduction.wheatstone import WheatstoneBridge
from ..units import require_positive
from .loop import (
    ResonantFeedbackLoop,
    _linear_actuator_constants,
    displacement_to_stress_gain,
    lower_resonator_mode,
)


class MultiModeLoop:
    """The Fig. 5 loop closed around several cantilever modes at once.

    Parameters
    ----------
    resonators:
        One :class:`ModalResonator` per mode, all sharing the *same*
        timestep (enforced).
    mode_gains:
        Bridge stress-per-displacement gain of each mode [Pa/m] at the
        clamped-edge placement.
    loop:
        The electrical chain (a :class:`ResonantFeedbackLoop` whose
        resonator field is ignored except for the timestep reference).
    """

    def __init__(
        self,
        resonators: list[ModalResonator],
        mode_gains: list[float],
        loop: ResonantFeedbackLoop,
    ) -> None:
        if not resonators or len(resonators) != len(mode_gains):
            raise OscillationError(
                "need one bridge gain per modal resonator"
            )
        h0 = resonators[0].timestep
        for r in resonators[1:]:
            if abs(r.timestep - h0) > 1e-18:
                raise OscillationError("all modes must share one timestep")
        self.resonators = resonators
        self.mode_gains = [require_positive("mode_gain", abs(g)) for g in mode_gains]
        self.loop = loop
        #: :class:`~repro.engine.kernel.KernelRunInfo` of the last
        #: :meth:`run` (``None`` when the reference path executed).
        self.last_kernel_info = None

    @classmethod
    def for_geometry(
        cls,
        geometry,
        quality_factors: list[float],
        loop: ResonantFeedbackLoop,
        steps_per_cycle_of_highest: int = 40,
    ) -> "MultiModeLoop":
        """Build the first N modes of a beam (N = len(quality_factors))."""
        from ..mechanics.modal import analyze_modes

        count = len(quality_factors)
        modes = analyze_modes(geometry, count)
        # one common timestep resolving the highest mode
        timestep = 1.0 / (modes[-1].frequency * steps_per_cycle_of_highest)
        resonators = [
            ModalResonator(
                effective_mass=m.effective_mass,
                effective_stiffness=m.effective_stiffness,
                quality_factor=q,
                timestep=timestep,
            )
            for m, q in zip(modes, quality_factors)
        ]
        gains = [
            displacement_to_stress_gain(geometry, CLAMPED_EDGE, mode=m.number)
            for m in modes
        ]
        return cls(resonators, gains, loop)

    def run(
        self,
        duration: float,
        initial_kick: float = 1e-12,
        backend: str = "auto",
    ) -> Signal:
        """Close the loop; returns the bridge-output waveform.

        Every mode starts with the same tiny kick (broadband excitation,
        like thermal motion); the filters decide who wins.  ``backend``
        selects the execution path exactly as in
        :meth:`ResonantFeedbackLoop.run`.
        """
        resolved = resolve_backend(backend)
        n, sample_rate, bridge_sens = self._prepare_run(duration, initial_kick)
        loop = self.loop

        self.last_kernel_info = None
        if resolved != "reference":
            try:
                kernel = self._lower_kernel(bridge_sens)
            except LoweringError as err:
                record_fallback(str(err))
                resolved = "reference"
            else:
                result = kernel.run(n, np.zeros(n), backend=resolved)
                self._absorb_kernel_result(result)
                return Signal(result.bridge_voltage, sample_rate)

        act = _linear_actuator_constants(loop.actuator)
        out = np.empty(n)
        for i in range(n):
            v_bridge = sum(
                bridge_sens * g * r.state.displacement
                for g, r in zip(self.mode_gains, self.resonators)
            )
            v = loop.dda.step(v_bridge)
            for hp in loop.highpasses:
                v = hp.step(v)
            v = loop.phase_lead.step(v)
            v = loop.vga.step(v)
            v = loop.limiter.step(v)
            v_drive = loop.buffer.step(v)
            if act is not None:
                cur = v_drive / act[0]
                if cur > act[1]:
                    cur = act[1]
                elif cur < -act[1]:
                    cur = -act[1]
                force = act[2] * cur
            else:
                force = float(loop.actuator.tip_force_from_voltage(v_drive))
            for r in self.resonators:
                r.step(force)
            out[i] = v_bridge

        return Signal(out, sample_rate)

    def _prepare_run(
        self, duration: float, initial_kick: float
    ) -> tuple[int, float, float]:
        """Deterministic run prelude (shared by solo and batched paths):
        validate, prepare+reset the chain, kick every mode; returns
        ``(n, sample_rate, bridge_sens)``."""
        require_positive("duration", duration)
        h = self.resonators[0].timestep
        sample_rate = 1.0 / h
        n = max(2, int(round(duration * sample_rate)))

        loop = self.loop
        for hp in loop.highpasses:
            hp.reset()
            hp.prepare(sample_rate)
        loop.phase_lead.reset()
        loop.phase_lead.prepare(sample_rate)
        loop.dda.reset()
        loop.dda.prepare(sample_rate)
        loop.buffer.reset()
        loop.buffer.prepare(sample_rate)

        for r in self.resonators:
            r.reset(displacement=initial_kick)

        return n, sample_rate, abs(loop.bridge.sensitivity())

    def _absorb_kernel_result(self, result) -> None:
        for m, r in enumerate(self.resonators):
            r.state.displacement = result.mode_state[2 * m]
            r.state.velocity = result.mode_state[2 * m + 1]
        self.last_kernel_info = result.info

    def _lower_kernel(self, bridge_sens: float) -> FusedLoopKernel:
        """Lower the shared chain + every mode; raises LoweringError."""
        if poll_fault("kernel.lower") is not None:
            raise LoweringError("injected fault at kernel.lower")
        loop = self.loop
        act = _linear_actuator_constants(loop.actuator)
        if act is None:
            raise LoweringError(
                f"{type(loop.actuator).__name__} is not a stock linear "
                "LorentzActuator; not lowerable"
            )
        pre = [
            lower_block(b)
            for b in [loop.dda, *loop.highpasses, loop.phase_lead, loop.vga]
        ]
        modes = [
            lower_resonator_mode(r, bridge_sens * g)
            for g, r in zip(self.mode_gains, self.resonators)
        ]
        return FusedLoopKernel(
            pre_stages=pre,
            limiter_stages=[lower_block(loop.limiter)],
            buffer_stages=[lower_block(loop.buffer)],
            modes=modes,
            act_r=act[0],
            act_imax=act[1],
            act_fpc=act[2],
        )

    def modal_loop_gains(self, sample_rate: float) -> list[float]:
        """Small-signal |loop gain| at each mode's resonance.

        The startup race in numbers: the mode with the largest value
        above 1 wins (grows fastest).
        """
        gains = []
        for g, r in zip(self.mode_gains, self.resonators):
            f_n = r.natural_frequency
            mech = r.transfer_function(np.asarray([f_n]))[0]
            elec = self.loop.electrical_gain_at(f_n, sample_rate)
            total = (
                abs(self.loop.bridge.sensitivity())
                * g
                * abs(elec)
                * self.loop.actuator.force_per_volt
                * abs(mech)
            )
            gains.append(float(total))
        return gains


def run_multimode_batch(
    loops,
    duration,
    initial_kick: float = 1e-12,
    backend: str = "auto",
    threads: int | None = None,
) -> list[Signal]:
    """Run N :class:`MultiModeLoop` instances as batched kernel calls.

    The multi-mode analogue of :func:`repro.feedback.loop.run_batch`:
    instances sharing one program shape run in one compiled call; each
    returned bridge waveform is bit-identical to the instance's solo
    fused run; non-lowerable instances fall back per-instance to the
    reference path without poisoning the batch.  ``duration`` may be a
    float or a per-instance sequence.
    """
    loops = list(loops)
    if np.isscalar(duration):
        durations = [float(duration)] * len(loops)
    else:
        durations = [float(d) for d in duration]
        if len(durations) != len(loops):
            raise ValueError(
                f"{len(loops)} loops but {len(durations)} durations"
            )
    resolved = resolve_backend(backend)
    signals: list[Signal | None] = [None] * len(loops)
    if resolved != "fused":
        for i, mm in enumerate(loops):
            signals[i] = mm.run(durations[i], initial_kick, backend=backend)
        return signals

    groups: dict[tuple, list[int]] = {}
    kernels = [None] * len(loops)
    ns = [0] * len(loops)
    rates = [0.0] * len(loops)
    for i, mm in enumerate(loops):
        n, sample_rate, bridge_sens = mm._prepare_run(durations[i], initial_kick)
        mm.last_kernel_info = None
        try:
            kernels[i] = mm._lower_kernel(bridge_sens)
        except LoweringError as err:
            record_fallback(str(err))
            signals[i] = mm.run(durations[i], initial_kick,
                                backend="reference")
        else:
            ns[i], rates[i] = n, sample_rate
            groups.setdefault(batch_signature(kernels[i]), []).append(i)

    for indices in groups.values():
        batch = KernelBatch(
            [kernels[i] for i in indices],
            [ns[i] for i in indices],
            [np.zeros(ns[i]) for i in indices],
        )
        for i, result in zip(indices, batch.run(threads=threads)):
            loops[i]._absorb_kernel_result(result)
            signals[i] = Signal(result.bridge_voltage, rates[i])
    return signals
