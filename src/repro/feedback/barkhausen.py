"""Small-signal loop analysis: Barkhausen criterion.

A feedback oscillator starts when, at some frequency, the loop gain
magnitude exceeds one while its phase crosses zero.  This module
evaluates the complex loop gain of a :class:`ResonantFeedbackLoop`
across frequency, finds the zero-phase frequency, and reports startup
margin — the design-review companion to the time-domain simulation
(they must agree, and the tests check that they do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import OscillationError
from ..units import require_positive
from .loop import ResonantFeedbackLoop


@dataclass(frozen=True)
class BarkhausenResult:
    """Outcome of the small-signal loop analysis."""

    oscillation_frequency: float
    loop_gain_magnitude: float
    will_oscillate: bool
    gain_margin_db: float


def loop_gain(
    loop: ResonantFeedbackLoop, frequency: np.ndarray, sample_rate: float
) -> np.ndarray:
    """Complex loop gain over a frequency grid."""
    f = np.asarray(frequency, dtype=float)
    out = np.empty(len(f), dtype=complex)
    mech = loop.resonator.transfer_function(f)
    for i, fi in enumerate(f):
        elec = loop.electrical_gain_at(float(fi), sample_rate)
        out[i] = (
            loop.displacement_to_voltage
            * elec
            * loop.actuator.force_per_volt
            * mech[i]
        )
    return out


def analyze(
    loop: ResonantFeedbackLoop,
    sample_rate: float,
    span_factor: float = 0.2,
    points: int = 4001,
) -> BarkhausenResult:
    """Find the zero-phase frequency near resonance and the gain there.

    Searches ``f0 * (1 +/- span_factor)``; raises when no zero-phase
    crossing exists in the span (a broken loop, e.g. missing phase
    conditioning).
    """
    require_positive("span_factor", span_factor)
    f0 = loop.resonator.natural_frequency
    f = np.linspace(f0 * (1.0 - span_factor), f0 * (1.0 + span_factor), points)
    g = loop_gain(loop, f, sample_rate)
    phase = np.angle(g)

    crossings = np.where(np.diff(np.sign(phase)) != 0)[0]
    # keep crossings where the phase goes through zero (not +/- pi wraps)
    valid = [
        i for i in crossings
        if abs(phase[i]) < math.pi / 2 and abs(phase[i + 1]) < math.pi / 2
    ]
    if not valid:
        raise OscillationError(
            "no zero-phase crossing near resonance; the loop cannot satisfy "
            "the Barkhausen phase condition"
        )
    # choose the crossing with the highest gain magnitude
    best = max(valid, key=lambda i: abs(g[i]))
    # linear interpolation of the crossing frequency
    p0, p1 = phase[best], phase[best + 1]
    frac = 0.0 if p1 == p0 else -p0 / (p1 - p0)
    f_osc = f[best] + frac * (f[best + 1] - f[best])
    magnitude = float(abs(g[best]) + frac * (abs(g[best + 1]) - abs(g[best])))

    return BarkhausenResult(
        oscillation_frequency=float(f_osc),
        loop_gain_magnitude=magnitude,
        will_oscillate=magnitude > 1.0,
        gain_margin_db=20.0 * math.log10(magnitude) if magnitude > 0.0 else -math.inf,
    )


def startup_check(
    loop: ResonantFeedbackLoop,
    sample_rate: float,
    span_factor: float = 0.2,
    points: int = 4001,
) -> tuple[bool, str | None]:
    """Non-raising startup verdict: ``(will_start, reason_if_not)``.

    The health-layer companion to :func:`analyze`: a loop that cannot
    satisfy Barkhausen is a *channel diagnosis* during an array
    measurement, not an exception — the array keeps measuring its other
    channels.  Returns ``(True, None)`` for a healthy loop,
    ``(False, "no-zero-phase-crossing")`` when the phase condition is
    unsatisfiable, ``(False, "insufficient-loop-gain")`` when the
    crossing exists but |gain| <= 1.
    """
    try:
        result = analyze(loop, sample_rate, span_factor, points)
    except OscillationError:
        return (False, "no-zero-phase-crossing")
    if not result.will_oscillate:
        return (False, "insufficient-loop-gain")
    return (True, None)
