"""The resonant feedback loop of Fig. 5, simulated in the time domain.

The loop closes the full physical path:

    cantilever tip displacement
      -> surface stress at the clamped-edge PMOS bridge
      -> bridge differential voltage (plus its thermal + 1/f noise)
      -> DDA instrumentation amplifier
      -> high-pass filters (LF-noise damping)
      -> +90-degree phase conditioning
      -> variable-gain amplifier
      -> non-linear limiting amplifier
      -> class-AB buffer
      -> coil current -> Lorentz tip force
      -> cantilever dynamics (exact ZOH integration)

Every stage is the corresponding block from :mod:`repro.circuits` /
:mod:`repro.actuation`, stepped sample-by-sample, so every claimed
behaviour of the paper — startup, amplitude limiting, gain adjustment to
liquid damping, LF-noise suppression — emerges from the same simulation
rather than being asserted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..actuation.lorentz import ActuationCoil, LorentzActuator
from ..circuits.buffer import ClassABBuffer
from ..circuits.dda import DDAInstrumentationAmplifier
from ..circuits.filters import HighPassFilter
from ..circuits.limiter import LimitingAmplifier
from ..circuits.noise import amplifier_input_noise
from ..circuits.phase import PhaseLead
from ..circuits.signal import Signal
from ..circuits.vga import VariableGainAmplifier
from ..engine.kernel import (
    FusedLoopKernel,
    KernelBatch,
    ModeLowering,
    batch_signature,
    lower_block,
    record_fallback,
    resolve_backend,
)
from ..engine.resilience import active_injector, corruption_offsets, poll_fault
from ..errors import LoweringError, OscillationError
from ..mechanics.dynamics import ModalResonator
from ..transduction.placement import BridgePlacement, CLAMPED_EDGE, bridge_average_stress
from ..transduction.wheatstone import WheatstoneBridge
from ..units import require_positive


@dataclass
class LoopRecord:
    """Waveforms captured during a closed-loop run."""

    times: np.ndarray
    displacement: np.ndarray
    bridge_voltage: np.ndarray
    limiter_input: np.ndarray
    limiter_output: np.ndarray
    drive_voltage: np.ndarray
    sample_rate: float

    def displacement_signal(self) -> Signal:
        """Tip displacement as a Signal [m]."""
        return Signal(self.displacement, self.sample_rate)

    def bridge_signal(self) -> Signal:
        """Bridge output as a Signal [V]."""
        return Signal(self.bridge_voltage, self.sample_rate)

    def limiter_input_signal(self) -> Signal:
        """Pre-limiter node as a Signal [V] — where the high-pass
        filters' low-frequency cleanup is visible."""
        return Signal(self.limiter_input, self.sample_rate)

    def drive_signal(self) -> Signal:
        """Buffer output as a Signal [V]."""
        return Signal(self.drive_voltage, self.sample_rate)

    def steady_amplitude(self, tail_fraction: float = 0.25) -> float:
        """Tip oscillation amplitude over the trailing fraction [m]."""
        n = len(self.displacement)
        tail = self.displacement[int(n * (1.0 - tail_fraction)):]
        return float(np.sqrt(2.0) * np.std(tail))


#: Memoized bridge-noise realizations.  A noise block is a pure function
#: of (seed, scaled white PSD, corner, n, sample_rate) — the RNG is
#: freshly seeded per synthesis — so identical loops (sweep repeats,
#: fabric chunk re-runs, best-of bench rounds) can share one pink-noise
#: synthesis instead of paying the FFT shaping every run.  Entries hold
#: a private copy and hand out copies, so callers may mutate freely;
#: the cache is bounded LRU and process-local.
_NOISE_MEMO: OrderedDict[tuple, np.ndarray] = OrderedDict()
_NOISE_MEMO_LOCK = threading.Lock()
_NOISE_MEMO_ENTRIES = 64


def _memoized_bridge_noise(
    seed, psd_scaled: float, corner: float, n: int, sample_rate: float
) -> np.ndarray:
    """Bit-identical to ``amplifier_input_noise(...)`` with a fresh
    seeded RNG; memoized when the seed is deterministic."""
    if not isinstance(seed, int):
        # an unseeded loop is intentionally nondeterministic: never memoize
        return amplifier_input_noise(
            psd_scaled, corner, n, sample_rate, np.random.default_rng(seed)
        )
    key = (seed, psd_scaled, corner, n, sample_rate)
    with _NOISE_MEMO_LOCK:
        cached = _NOISE_MEMO.get(key)
        if cached is not None:
            _NOISE_MEMO.move_to_end(key)
            return cached.copy()
    noise = amplifier_input_noise(
        psd_scaled, corner, n, sample_rate, np.random.default_rng(seed)
    )
    with _NOISE_MEMO_LOCK:
        _NOISE_MEMO[key] = noise.copy()
        while len(_NOISE_MEMO) > _NOISE_MEMO_ENTRIES:
            _NOISE_MEMO.popitem(last=False)
    return noise


@dataclass(frozen=True)
class _PreparedRun:
    """The deterministic prelude of one closed-loop run: sample grid,
    synthesized bridge noise, and the signed bridge coefficient —
    identical whether the run then executes solo or inside a batch."""

    n: int
    sample_rate: float
    times: np.ndarray
    bridge_noise: np.ndarray
    signed_coefficient: float


class ResonantFeedbackLoop:
    """Closed-loop oscillator around one cantilever mode.

    Parameters
    ----------
    resonator:
        The cantilever mode (vacuum or fluid-loaded parameters).
    bridge:
        The PMOS Wheatstone bridge at the clamped edge.
    displacement_to_stress:
        Longitudinal bridge-average surface stress per metre of tip
        displacement [Pa/m]; compute with
        :func:`displacement_to_stress_gain`.
    actuator:
        Coil + magnet converting drive voltage to tip force.
    dda / highpasses / phase_lead / vga / limiter / buffer:
        The electrical chain of Fig. 5; any may be replaced for
        ablations (e.g. no high-pass filters).
    include_bridge_noise:
        Synthesize the bridge's thermal + 1/f noise into the loop.
    seed:
        RNG seed for noise realizations.
    """

    def __init__(
        self,
        resonator: ModalResonator,
        bridge: WheatstoneBridge,
        displacement_to_stress: float,
        actuator: LorentzActuator,
        dda: DDAInstrumentationAmplifier | None = None,
        highpasses: list[HighPassFilter] | None = None,
        phase_lead: PhaseLead | None = None,
        vga: VariableGainAmplifier | None = None,
        limiter: LimitingAmplifier | None = None,
        buffer: ClassABBuffer | None = None,
        include_bridge_noise: bool = True,
        seed: int = 1234,
    ) -> None:
        self.resonator = resonator
        self.bridge = bridge
        self.displacement_to_stress = require_positive(
            "displacement_to_stress", abs(displacement_to_stress)
        )
        self.actuator = actuator

        f0 = resonator.natural_frequency
        self.dda = dda if dda is not None else DDAInstrumentationAmplifier(
            feedback_r2=9e3, noise_density=0.0
        )
        self.highpasses = (
            highpasses
            if highpasses is not None
            else [HighPassFilter(f0 / 20.0), HighPassFilter(f0 / 20.0)]
        )
        self.phase_lead = phase_lead if phase_lead is not None else PhaseLead(f0)
        self.vga = vga if vga is not None else VariableGainAmplifier()
        self.buffer = (
            buffer
            if buffer is not None
            else ClassABBuffer(
                load_resistance=self.actuator.coil.resistance,
                max_current=self.actuator.coil.max_current,
            )
        )
        # The limiter must saturate *below* the buffer's current-limit
        # ceiling, otherwise the class-AB clip (not the designed
        # non-linearity) would set the amplitude.
        self.limiter = (
            limiter
            if limiter is not None
            else LimitingAmplifier(2.0, 0.5 * self.buffer.max_output_voltage)
        )
        self.include_bridge_noise = include_bridge_noise
        self.seed = seed
        #: :class:`~repro.engine.kernel.KernelRunInfo` of the last
        #: :meth:`run` (``None`` when the reference path executed).
        self.last_kernel_info = None

    # -- gains -------------------------------------------------------------------

    @property
    def displacement_to_voltage(self) -> float:
        """Bridge output per metre of tip displacement [V/m]."""
        return abs(self.bridge.sensitivity()) * self.displacement_to_stress

    def electrical_gain_at(self, frequency: float, sample_rate: float) -> complex:
        """Complex gain of the electrical chain at one frequency."""
        f = np.asarray([frequency])
        gain = complex(self.dda.gain, 0.0)
        if self.dda.gbw is not None:
            gain /= 1.0 + 1j * frequency / self.dda.bandwidth
        for hp in self.highpasses:
            gain *= hp.response(f, sample_rate)[0]
        gain *= self.phase_lead.response(f, sample_rate)[0]
        gain *= self.vga.gain
        gain *= self.limiter.small_signal_gain
        return gain

    def loop_gain_at_resonance(self, sample_rate: float) -> complex:
        """Small-signal Barkhausen loop gain at the resonator frequency.

        |value| > 1 with phase near 0 means the loop starts up.
        """
        f0 = self.resonator.natural_frequency
        mech = self.resonator.transfer_function(np.asarray([f0]))[0]
        elec = self.electrical_gain_at(f0, sample_rate)
        return (
            self.displacement_to_voltage
            * elec
            * self.actuator.force_per_volt
            * mech
        )

    def required_vga_gain(self, sample_rate: float, startup_factor: float = 3.0) -> float:
        """VGA gain needed for |loop gain| = ``startup_factor``."""
        require_positive("startup_factor", startup_factor)
        current = abs(self.loop_gain_at_resonance(sample_rate))
        if current == 0.0:
            raise OscillationError("loop gain is zero; check the chain")
        return self.vga.gain * startup_factor / current

    def auto_gain(self, sample_rate: float, startup_factor: float = 3.0) -> float:
        """Program the VGA for reliable startup; returns the set gain.

        Raises :class:`OscillationError` (via the VGA) when the damping
        is too heavy for the available range — the real failure mode in
        viscous samples.
        """
        needed = self.required_vga_gain(sample_rate, startup_factor)
        return self.vga.set_gain_at_least(needed)

    # -- simulation -----------------------------------------------------------------

    def run(
        self,
        duration: float,
        initial_kick: float | None = None,
        backend: str = "auto",
    ) -> LoopRecord:
        """Close the loop for ``duration`` seconds.

        Parameters
        ----------
        initial_kick:
            Initial tip displacement [m]; defaults to a thermal-scale
            1 pm so startup happens from noise-level motion, as on the
            real chip.
        backend:
            Execution path: ``"reference"`` steps every block in Python
            sample-by-sample; ``"fused"`` lowers the loop to the fused
            kernel (same waveforms, ~20x faster); ``"numba"`` JIT-
            compiles the kernel program (requires numba); ``"auto"``
            (default) picks the fastest available.  Blocks that cannot
            lower (custom subclasses, patched ``step``, per-sample
            noise sources) make the kernel backends fall back to the
            reference path with a logged reason — never an error —
            unless ``"numba"``/``"fused"`` was requested on a machine
            that cannot provide it.  See ``docs/FASTPATH.md``.
        """
        resolved = resolve_backend(backend)
        prep = self._prepare_run(duration, initial_kick)
        n = prep.n
        sample_rate = prep.sample_rate
        bridge_noise = prep.bridge_noise
        times = prep.times

        self.last_kernel_info = None
        if resolved != "reference":
            try:
                kernel = self._lower_kernel(prep.signed_coefficient)
            except LoweringError as err:
                record_fallback(str(err))
                resolved = "reference"
            else:
                result = kernel.run(n, bridge_noise, backend=resolved)
                self._absorb_kernel_result(result)
                return _record_from_result(prep, result)

        displacement = np.empty(n)
        bridge_voltage = np.empty(n)
        limiter_input = np.empty(n)
        limiter_output = np.empty(n)
        drive_voltage = np.empty(n)

        # a stock linear actuator is three constants; hoist them so the
        # inner loop skips the per-sample property lookups and np.clip
        act = _linear_actuator_constants(self.actuator)
        coef = prep.signed_coefficient

        x = self.resonator.state.displacement
        for i in range(n):
            v_bridge = coef * x + bridge_noise[i]
            v = self.dda.step(v_bridge)
            for hp in self.highpasses:
                v = hp.step(v)
            v = self.phase_lead.step(v)
            v = self.vga.step(v)
            v_lim = self.limiter.step(v)
            v_drive = self.buffer.step(v_lim)
            if act is not None:
                cur = v_drive / act[0]
                if cur > act[1]:
                    cur = act[1]
                elif cur < -act[1]:
                    cur = -act[1]
                force = act[2] * cur
            else:
                force = float(self.actuator.tip_force_from_voltage(v_drive))
            x = self.resonator.step(force)

            displacement[i] = x
            bridge_voltage[i] = v_bridge
            limiter_input[i] = v
            limiter_output[i] = v_lim
            drive_voltage[i] = v_drive

        return _poison_record(LoopRecord(
            times=times,
            displacement=displacement,
            bridge_voltage=bridge_voltage,
            limiter_input=limiter_input,
            limiter_output=limiter_output,
            drive_voltage=drive_voltage,
            sample_rate=sample_rate,
        ))

    def _prepare_run(
        self, duration: float, initial_kick: float | None = None
    ) -> _PreparedRun:
        """Run the deterministic prelude shared by solo and batched
        execution: validate the duration, prepare the discrete-time
        blocks, reset the resonator to the initial kick, and synthesize
        the bridge-noise realization.  The same floating-point sequence
        as the body of :meth:`run` once produced inline — extracted so
        :func:`run_batch` is bit-identical to solo runs."""
        require_positive("duration", duration)
        h = self.resonator.timestep
        sample_rate = 1.0 / h
        n = max(2, int(round(duration * sample_rate)))

        for hp in self.highpasses:
            hp.prepare(sample_rate)
        self.phase_lead.prepare(sample_rate)
        self.dda.prepare(sample_rate)
        self.buffer.prepare(sample_rate)

        if initial_kick is None:
            initial_kick = 1e-12
        self.resonator.reset(displacement=initial_kick)

        if self.include_bridge_noise:
            psd_white = float(
                self.bridge.noise_psd(np.asarray([self.resonator.natural_frequency]))[0]
            )
            corner = self.bridge.corner_frequency()
            bridge_noise = _memoized_bridge_noise(
                self.seed,
                psd_white / (1.0 + corner / self.resonator.natural_frequency),
                corner,
                n,
                sample_rate,
            )
        else:
            bridge_noise = np.zeros(n)

        k_dv = self.displacement_to_voltage
        sign = 1.0 if self.bridge.sensitivity() >= 0.0 else -1.0
        return _PreparedRun(
            n=n,
            sample_rate=sample_rate,
            times=np.arange(n) * h,
            bridge_noise=bridge_noise,
            signed_coefficient=sign * k_dv,
        )

    def _absorb_kernel_result(self, result) -> None:
        """Write a kernel run's final mechanical state + run info back."""
        self.resonator.state.displacement = result.mode_state[0]
        self.resonator.state.velocity = result.mode_state[1]
        self.last_kernel_info = result.info

    def _lower_kernel(self, bridge_coefficient: float) -> FusedLoopKernel:
        """Lower the whole loop; :class:`LoweringError` if any piece can't."""
        if poll_fault("kernel.lower") is not None:
            raise LoweringError("injected fault at kernel.lower")
        act = _linear_actuator_constants(self.actuator)
        if act is None:
            raise LoweringError(
                f"{type(self.actuator).__name__} is not a stock linear "
                "LorentzActuator; not lowerable"
            )
        pre = [
            lower_block(b)
            for b in [self.dda, *self.highpasses, self.phase_lead, self.vga]
        ]
        mode = lower_resonator_mode(self.resonator, bridge_coefficient)
        return FusedLoopKernel(
            pre_stages=pre,
            limiter_stages=[lower_block(self.limiter)],
            buffer_stages=[lower_block(self.buffer)],
            modes=[mode],
            act_r=act[0],
            act_imax=act[1],
            act_fpc=act[2],
        )

    def reset(self) -> None:
        """Clear all loop state for a fresh run."""
        self.dda.reset()
        for hp in self.highpasses:
            hp.reset()
        self.phase_lead.reset()
        self.limiter.reset()
        self.buffer.reset()
        self.resonator.reset()


def _record_from_result(prep: _PreparedRun, result) -> LoopRecord:
    return _poison_record(LoopRecord(
        times=prep.times,
        displacement=result.displacement,
        bridge_voltage=result.bridge_voltage,
        limiter_input=result.limiter_input,
        limiter_output=result.limiter_output,
        drive_voltage=result.drive_voltage,
        sample_rate=prep.sample_rate,
    ))


def _poison_record(record: LoopRecord) -> LoopRecord:
    """Apply an armed ``loop.record`` fault: non-finite recorded samples.

    Models an acquisition glitch (ADC dropout, DMA corruption): a few
    plan-seeded sample positions of the displacement and bridge
    waveforms turn NaN (or Inf for ``kind="inf"``).  Downstream the
    health layer must flag the channel as diverged — the injection
    proves nothing averages NaN into a "measurement".
    """
    spec = poll_fault("loop.record")
    if spec is None:
        return record
    injector = active_injector()
    seed = injector.plan.seed if injector is not None else 0
    n = len(record.displacement)
    bad = float("inf") if spec.kind == "inf" else float("nan")
    count = max(1, int(spec.payload)) if spec.payload else 4
    for idx in corruption_offsets(seed, n, count, "loop.record"):
        record.displacement[idx] = bad
        record.bridge_voltage[idx] = bad
    return record


def run_batch(
    loops,
    duration,
    initial_kick: float | None = None,
    backend: str = "auto",
    threads: int | None = None,
) -> list[LoopRecord]:
    """Run N independent closed loops as batched kernel calls.

    Loops whose chains lower to the same program *shape* (see
    :func:`~repro.engine.kernel.batch_signature`) are grouped into one
    :class:`~repro.engine.kernel.KernelBatch` — a single compiled call,
    pthread-partitioned across instances — so a whole sweep pays one
    ctypes dispatch instead of N.  Every record is bit-identical
    (``np.array_equal``) to the loop's solo fused run.

    Parameters
    ----------
    loops:
        The :class:`ResonantFeedbackLoop` instances.
    duration:
        Seconds to simulate — one float for all loops, or a sequence
        with one entry per loop (shorter instances are padded inside
        the batch and masked on return).
    initial_kick:
        Initial tip displacement [m] applied to every loop (default:
        the same 1 pm thermal kick as :meth:`ResonantFeedbackLoop.run`).
    backend:
        Loop backend; ``"auto"``/``"fused"`` batch through the kernel,
        anything else runs each loop solo through :meth:`run`.
    threads:
        C-level threads for the batched call (default: CPU count,
        capped by the ``REPRO_KERNEL_THREADS`` environment variable —
        see ``docs/FASTPATH.md`` on double-parallelism).

    Loops that cannot lower (patched ``step``, custom actuators, noisy
    amplifiers) fall back *per instance* to the reference path with the
    reason logged and counted — they never poison the rest of the
    batch.
    """
    loops = list(loops)
    if np.isscalar(duration):
        durations = [float(duration)] * len(loops)
    else:
        durations = [float(d) for d in duration]
        if len(durations) != len(loops):
            raise ValueError(
                f"{len(loops)} loops but {len(durations)} durations"
            )
    resolved = resolve_backend(backend)
    records: list[LoopRecord | None] = [None] * len(loops)
    if resolved != "fused":
        for i, loop in enumerate(loops):
            records[i] = loop.run(durations[i], initial_kick, backend=backend)
        return records

    groups: dict[tuple, list[int]] = {}
    kernels: list[FusedLoopKernel | None] = [None] * len(loops)
    preps: list[_PreparedRun | None] = [None] * len(loops)
    for i, loop in enumerate(loops):
        prep = loop._prepare_run(durations[i], initial_kick)
        loop.last_kernel_info = None
        try:
            kernels[i] = loop._lower_kernel(prep.signed_coefficient)
        except LoweringError as err:
            record_fallback(str(err))
            records[i] = loop.run(durations[i], initial_kick,
                                  backend="reference")
        else:
            preps[i] = prep
            groups.setdefault(batch_signature(kernels[i]), []).append(i)

    for indices in groups.values():
        batch = KernelBatch(
            [kernels[i] for i in indices],
            [preps[i].n for i in indices],
            [preps[i].bridge_noise for i in indices],
        )
        for i, result in zip(indices, batch.run(threads=threads)):
            loops[i]._absorb_kernel_result(result)
            records[i] = _record_from_result(preps[i], result)
    return records


def _linear_actuator_constants(actuator) -> tuple[float, float, float] | None:
    """``(R_coil, I_max, F_per_A)`` of a stock actuator, else ``None``.

    Exact-type checks: a subclassed actuator or coil may shape the
    force arbitrarily (e.g. the Duffing benches), so only the known
    linear pair is reduced to constants.
    """
    if type(actuator) is not LorentzActuator:
        return None
    coil = actuator.coil
    if type(coil) is not ActuationCoil:
        return None
    return (
        coil.resistance,
        coil.max_current,
        coil.force_per_current(actuator.magnet),
    )


def lower_resonator_mode(
    resonator: ModalResonator, bridge_coefficient: float
) -> ModeLowering:
    """One resonator as a :class:`~repro.engine.kernel.ModeLowering`.

    ``bridge_coefficient`` is the displacement-to-bridge-voltage gain
    [V/m] (sign included).  Subclassed or instance-patched ``step``
    means unknown dynamics: :class:`LoweringError`.
    """
    if "step" in vars(resonator):
        raise LoweringError(
            f"{type(resonator).__name__} instance has a patched step(); "
            "not lowerable"
        )
    if type(resonator).step is not ModalResonator.step:
        raise LoweringError(
            f"{type(resonator).__name__} overrides ModalResonator.step(); "
            "not lowerable"
        )
    ad, bd = resonator.propagator()
    return ModeLowering(
        a11=float(ad[0, 0]), a12=float(ad[0, 1]),
        a21=float(ad[1, 0]), a22=float(ad[1, 1]),
        b1=float(bd[0]), b2=float(bd[1]),
        coef=float(bridge_coefficient),
        x0=resonator.state.displacement,
        v0=resonator.state.velocity,
    )


def displacement_to_stress_gain(
    geometry,
    placement: BridgePlacement = CLAMPED_EDGE,
    mode: int = 1,
) -> float:
    """Bridge-average longitudinal stress per metre of tip displacement.

    [Pa/m]; multiply by the bridge's V/Pa sensitivity for the loop's
    displacement-to-voltage gain.
    """
    return abs(
        bridge_average_stress(
            geometry,
            placement,
            operation="resonant",
            tip_amplitude=1.0,
            mode=mode,
        )
    )
