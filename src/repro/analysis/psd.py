"""Power-spectral-density estimation (Welch) for signals.

Used by benches and tests to verify noise models: the synthesized 1/f
waveforms must actually have 1/f spectra, the chopper must actually move
offset to the carrier, and the loop's bridge node must show the HP
filters removing the LF shelf.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..circuits.signal import Signal
from ..errors import SignalError


def welch_psd(
    signal: Signal, segments: int = 8, detrend: str = "constant"
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided Welch PSD: (frequencies [Hz], PSD [V^2/Hz]).

    Segment length is chosen from the requested segment count with 50 %
    overlap, Hann windowed — the standard robust estimate.
    """
    n = len(signal)
    if segments < 1:
        raise SignalError("need at least one segment")
    nperseg = max(8, n // segments)
    freqs, psd = sps.welch(
        signal.samples,
        fs=signal.sample_rate,
        nperseg=nperseg,
        detrend=detrend,
    )
    return freqs, psd


def band_power(
    signal: Signal, f_low: float, f_high: float, segments: int = 8
) -> float:
    """Integrated power [V^2] in a frequency band from the Welch PSD."""
    if not 0.0 <= f_low < f_high:
        raise SignalError(f"need 0 <= f_low < f_high, got [{f_low}, {f_high}]")
    freqs, psd = welch_psd(signal, segments)
    mask = (freqs >= f_low) & (freqs <= f_high)
    if not np.any(mask):
        raise SignalError("no PSD bins inside the requested band")
    return float(np.trapezoid(psd[mask], freqs[mask]))


def band_rms(signal: Signal, f_low: float, f_high: float, segments: int = 8) -> float:
    """RMS voltage in a band [V]."""
    return float(np.sqrt(band_power(signal, f_low, f_high, segments)))


def psd_slope(
    signal: Signal, f_low: float, f_high: float, segments: int = 8
) -> float:
    """Log-log slope of the PSD over a band (e.g. ~-1 for 1/f noise)."""
    freqs, psd = welch_psd(signal, segments)
    mask = (freqs >= f_low) & (freqs <= f_high) & (psd > 0.0)
    if int(np.sum(mask)) < 4:
        raise SignalError("too few PSD bins for a slope fit")
    return float(np.polyfit(np.log(freqs[mask]), np.log(psd[mask]), 1)[0])
