"""Autonomous detection algorithms for the digital backend.

"...enables autonomous device operation" — the chip is meant to decide
*by itself* whether something bound.  This module supplies the
algorithms that decision needs, operating on the sensor output traces
the core systems produce:

* **baseline estimation** with linear drift removal (the residual drift
  the analog referencing didn't catch);
* **CUSUM step detection** — the standard change-point detector, tuned
  by noise level, announcing binding onset;
* **dose-response (Langmuir isotherm) fitting** — turning a titration's
  equilibrium plateaus into ``K_D`` and a concentration estimate for an
  unknown sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from ..errors import ConvergenceError, SignalError
from ..units import require_positive


@dataclass(frozen=True)
class Baseline:
    """Linear baseline fitted to the pre-injection segment."""

    offset: float
    slope: float
    noise_rms: float

    def evaluate(self, times: np.ndarray) -> np.ndarray:
        """Baseline value at given times."""
        return self.offset + self.slope * np.asarray(times, dtype=float)


def fit_baseline(
    times: np.ndarray, values: np.ndarray, window: float
) -> Baseline:
    """Fit offset + drift to the first ``window`` seconds of a trace."""
    require_positive("window", window)
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    mask = t <= t[0] + window
    if int(np.sum(mask)) < 4:
        raise SignalError("baseline window contains fewer than 4 samples")
    slope, offset = np.polyfit(t[mask], v[mask], 1)
    residual = v[mask] - (offset + slope * t[mask])
    return Baseline(
        offset=float(offset),
        slope=float(slope),
        noise_rms=float(np.std(residual)),
    )


@dataclass(frozen=True)
class StepDetection:
    """Outcome of the CUSUM change detector."""

    detected: bool
    onset_time: float | None
    final_level: float
    threshold: float


def cusum_detect(
    times: np.ndarray,
    values: np.ndarray,
    baseline: Baseline,
    *,
    sigmas: float = 5.0,
    drift_sigmas: float = 0.5,
) -> StepDetection:
    """Two-sided CUSUM change detection against a fitted baseline.

    Parameters
    ----------
    sigmas:
        Decision threshold in units of the baseline noise.
    drift_sigmas:
        CUSUM drift (slack) term in noise units; absorbs residual
        wander below this rate so slow drift does not alarm.
    """
    require_positive("sigmas", sigmas)
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    residual = v - baseline.evaluate(t)
    noise = max(baseline.noise_rms, 1e-15)
    threshold = sigmas * noise
    slack = drift_sigmas * noise

    up = 0.0
    down = 0.0
    onset: float | None = None
    for ti, r in zip(t, residual):
        up = max(0.0, up + r - slack)
        down = max(0.0, down - r - slack)
        if up > threshold or down > threshold:
            onset = float(ti)
            break

    return StepDetection(
        detected=onset is not None,
        onset_time=onset,
        final_level=float(residual[-1]),
        threshold=threshold,
    )


# ---------------------------------------------------------------------------
# dose-response fitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DoseResponseFit:
    """Langmuir isotherm fitted to titration plateaus."""

    k_d: float
    max_response: float
    residual_rms: float

    def response_at(self, concentration: np.ndarray) -> np.ndarray:
        """Model response at given concentrations."""
        c = np.asarray(concentration, dtype=float)
        return self.max_response * c / (c + self.k_d)

    def concentration_from_response(self, response: float) -> float:
        """Invert the isotherm for an unknown sample's concentration.

        Raises when the response is outside (0, max_response).
        """
        if not 0.0 < response < self.max_response:
            raise SignalError(
                f"response {response} outside the invertible range "
                f"(0, {self.max_response})"
            )
        return self.k_d * response / (self.max_response - response)


def fit_dose_response(
    concentrations: np.ndarray, responses: np.ndarray
) -> DoseResponseFit:
    """Fit ``R = R_max C / (C + K_D)`` to titration data.

    Sign-agnostic: negative-going responses (the static sensor's
    compressive steps) are folded to magnitudes before fitting.
    """
    c = np.asarray(concentrations, dtype=float)
    r = np.abs(np.asarray(responses, dtype=float))
    if c.shape != r.shape or len(c) < 3:
        raise SignalError("need at least 3 matching titration points")
    if np.any(c < 0.0):
        raise SignalError("concentrations must be non-negative")

    r_max_guess = float(np.max(r)) * 1.2 + 1e-30
    # K_D guess: concentration nearest half response
    half = r_max_guess / 2.0
    kd_guess = float(c[np.argmin(np.abs(r - half))]) or float(np.median(c[c > 0]))

    def model(x, kd, rmax):
        return rmax * x / (x + kd)

    try:
        popt, _ = curve_fit(
            model, c, r, p0=(kd_guess, r_max_guess), maxfev=20000
        )
    except RuntimeError as exc:
        raise ConvergenceError(f"dose-response fit failed: {exc}") from exc

    kd, rmax = (float(abs(v)) for v in popt)
    residual = r - model(c, kd, rmax)
    return DoseResponseFit(
        k_d=kd,
        max_response=rmax,
        residual_rms=float(np.sqrt(np.mean(residual**2))),
    )
