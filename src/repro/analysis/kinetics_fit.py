"""Binding-kinetics extraction from sensor transients (SPR-style analysis).

A binding transient at constant concentration is exponential with
observed rate ``k_obs = k_on C + k_off``; a titration therefore yields
the kinetic constants from a straight line: slope ``k_on``, intercept
``k_off`` — and their ratio is ``K_D``, cross-checkable against the
equilibrium isotherm fit of :mod:`repro.analysis.detection`.  This is
how surface-binding instruments (SPR, and cantilever sensors alike)
turn raw traces into publishable kinetics.

Provided: single-transient ``k_obs`` fitting (exponential least squares),
the ``k_obs``-vs-C line fit, and the end-to-end pipeline from a set of
sensor output traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from ..errors import ConvergenceError, SignalError


@dataclass(frozen=True)
class TransientFit:
    """Exponential fit of one binding transient."""

    k_obs: float
    amplitude: float
    offset: float
    residual_rms: float


def fit_transient(times: np.ndarray, response: np.ndarray) -> TransientFit:
    """Fit ``y(t) = offset + amplitude (1 - exp(-k_obs t))``.

    Works on any monotone binding trace (coverage, output volts,
    frequency shift); the sign of ``amplitude`` carries the direction.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(response, dtype=float)
    if t.shape != y.shape or len(t) < 5:
        raise SignalError("need matching arrays of at least 5 samples")
    if np.any(np.diff(t) <= 0.0):
        raise SignalError("times must be strictly increasing")

    span = float(y[-1] - y[0])
    t_span = float(t[-1] - t[0])
    k_guess = 3.0 / t_span
    # refine: time to ~63% of the span
    if span != 0.0:
        progress = (y - y[0]) / span
        reached = t[progress >= 0.632]
        if len(reached):
            k_guess = 1.0 / max(float(reached[0] - t[0]), t_span / 1e3)

    def model(x, k, a, c):
        return c + a * (1.0 - np.exp(-k * (x - t[0])))

    try:
        popt, _ = curve_fit(
            model, t, y, p0=(k_guess, span, float(y[0])), maxfev=20000
        )
    except RuntimeError as exc:
        raise ConvergenceError(f"transient fit failed: {exc}") from exc

    k_obs, amplitude, offset = (float(v) for v in popt)
    if k_obs <= 0.0:
        raise ConvergenceError(f"transient fit returned k_obs = {k_obs}")
    residual = y - model(t, *popt)
    return TransientFit(
        k_obs=k_obs,
        amplitude=amplitude,
        offset=offset,
        residual_rms=float(np.sqrt(np.mean(residual**2))),
    )


@dataclass(frozen=True)
class KineticsFit:
    """k_on / k_off extracted from a k_obs-vs-concentration line."""

    k_on: float
    k_off: float
    residual_rms: float

    @property
    def dissociation_constant(self) -> float:
        """``K_D = k_off / k_on`` [molecules/m^3]."""
        return self.k_off / self.k_on


def fit_kobs_line(
    concentrations: np.ndarray, k_obs_values: np.ndarray
) -> KineticsFit:
    """Fit ``k_obs = k_on C + k_off`` across a titration.

    Requires at least three concentrations; a negative fitted intercept
    (possible with noisy data and tight binders) is clamped to zero with
    the residual reported honestly.
    """
    c = np.asarray(concentrations, dtype=float)
    k = np.asarray(k_obs_values, dtype=float)
    if c.shape != k.shape or len(c) < 3:
        raise SignalError("need at least 3 matching titration points")
    if np.any(c < 0.0) or np.any(k <= 0.0):
        raise SignalError("concentrations must be >= 0 and k_obs > 0")

    slope, intercept = np.polyfit(c, k, 1)
    if slope <= 0.0:
        raise ConvergenceError(
            f"k_obs line has non-positive slope ({slope:.3g}): the data do "
            "not show concentration-dependent kinetics"
        )
    residual = k - (slope * c + intercept)
    return KineticsFit(
        k_on=float(slope),
        k_off=float(max(intercept, 0.0)),
        residual_rms=float(np.sqrt(np.mean(residual**2))),
    )


def extract_kinetics(
    concentrations: list[float],
    traces: list[tuple[np.ndarray, np.ndarray]],
) -> KineticsFit:
    """End-to-end: per-trace exponential fits, then the k_obs line.

    Parameters
    ----------
    concentrations:
        Analyte concentration of each transient [molecules/m^3].
    traces:
        Matching ``(times, response)`` pairs (exposure segments only).
    """
    if len(concentrations) != len(traces):
        raise SignalError("need one trace per concentration")
    k_obs = [fit_transient(t, y).k_obs for t, y in traces]
    return fit_kobs_line(np.asarray(concentrations), np.asarray(k_obs))
