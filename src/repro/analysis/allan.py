"""Allan deviation: frequency-stability analysis of the oscillator.

The resonant biosensor's mass resolution is set by how stable the
oscillation frequency is over the measurement interval, and the Allan
deviation is the standard way to express that: for fractional-frequency
samples ``y_k`` averaged over tau,

    sigma_y^2(tau) = 1/2 < (y_{k+1} - y_k)^2 >.

White frequency noise falls as ``tau^-1/2``; flicker frequency noise
flattens; drift rises as ``tau`` — the minimum of the curve is the
optimal gate time, which bench ABL2 compares against the counter's
quantization limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..units import require_positive


def fractional_frequencies(
    frequency_readings: np.ndarray, nominal_frequency: float
) -> np.ndarray:
    """Convert absolute frequency readings [Hz] to fractional offsets."""
    require_positive("nominal_frequency", nominal_frequency)
    readings = np.asarray(frequency_readings, dtype=float)
    return (readings - nominal_frequency) / nominal_frequency


def allan_variance(y: np.ndarray, m: int = 1) -> float:
    """Non-overlapping Allan variance of fractional-frequency data.

    Parameters
    ----------
    y:
        Fractional frequency samples at the base averaging time tau0.
    m:
        Averaging factor: the variance is evaluated at ``tau = m tau0``.
    """
    y = np.asarray(y, dtype=float)
    if m < 1:
        raise SignalError("averaging factor must be >= 1")
    n_groups = len(y) // m
    if n_groups < 2:
        raise SignalError(
            f"need at least 2 groups of {m} samples, have {len(y)}"
        )
    grouped = y[: n_groups * m].reshape(n_groups, m).mean(axis=1)
    diffs = np.diff(grouped)
    return float(0.5 * np.mean(diffs**2))


def allan_deviation(y: np.ndarray, m: int = 1) -> float:
    """Allan deviation ``sigma_y(m tau0)``."""
    return math.sqrt(allan_variance(y, m))


@dataclass(frozen=True)
class AllanCurve:
    """Allan deviation across averaging times."""

    taus: np.ndarray
    deviations: np.ndarray

    def optimal_tau(self) -> float:
        """Averaging time of the minimum deviation [s]."""
        return float(self.taus[int(np.argmin(self.deviations))])

    def minimum_deviation(self) -> float:
        """Best achievable fractional-frequency stability."""
        return float(np.min(self.deviations))


def allan_curve(
    y: np.ndarray, tau0: float, max_factor: int | None = None
) -> AllanCurve:
    """Allan deviation over octave-spaced averaging factors.

    Parameters
    ----------
    y:
        Fractional frequency samples at base time tau0.
    tau0:
        Base sampling/averaging interval [s].
    max_factor:
        Largest averaging factor; defaults to ``len(y) // 4`` so every
        point averages at least four groups.
    """
    require_positive("tau0", tau0)
    y = np.asarray(y, dtype=float)
    if max_factor is None:
        max_factor = max(1, len(y) // 4)
    factors = []
    m = 1
    while m <= max_factor:
        factors.append(m)
        m *= 2
    taus = np.asarray([m * tau0 for m in factors])
    devs = np.asarray([allan_deviation(y, m) for m in factors])
    return AllanCurve(taus=taus, deviations=devs)


def frequency_noise_to_mass_noise(
    sigma_y: float, nominal_frequency: float, responsivity: float
) -> float:
    """Translate fractional-frequency stability into rms mass noise [kg].

    ``sigma_m = sigma_y * f0 / |df/dm|`` — the chain that turns an Allan
    plot into a biosensor limit of detection.
    """
    require_positive("nominal_frequency", nominal_frequency)
    if responsivity == 0.0:
        raise SignalError("zero responsivity cannot resolve any mass")
    return sigma_y * nominal_frequency / abs(responsivity)
