"""Signal analysis: frequency estimation, stability, calibration, sweeps."""

from .allan import (
    AllanCurve,
    allan_curve,
    allan_deviation,
    allan_variance,
    fractional_frequencies,
    frequency_noise_to_mass_noise,
)
from .kinetics_fit import (
    KineticsFit,
    TransientFit,
    extract_kinetics,
    fit_kobs_line,
    fit_transient,
)
from .phase_noise import (
    OscillatorNoiseBudget,
    allan_from_white_fm,
    leeson_phase_noise,
    leeson_phase_noise_dbc,
    loop_noise_budget,
    white_fm_coefficient,
)
from .detection import (
    Baseline,
    DoseResponseFit,
    StepDetection,
    cusum_detect,
    fit_baseline,
    fit_dose_response,
)
from .resonance_fit import (
    ResonanceFit,
    fit_resonance,
    measure_resonance,
    swept_sine_response,
)
from .calibration import (
    DetectionLimit,
    concentration_responsivity,
    coverage_lod_to_concentration,
    limit_of_detection,
    snr_db,
)
from .freqest import (
    fft_peak_frequency,
    ring_down_quality_factor,
    zero_crossing_frequency,
)
from .psd import band_power, band_rms, psd_slope, welch_psd
from .sweep import (
    LoopSweepTask,
    SweepResult,
    geometric_space,
    loop_headline,
    override_grid,
    run_parallel,
    run_spec_sweep,
    run_sweep_outcomes,
    sweep,
)

__all__ = [
    "AllanCurve",
    "Baseline",
    "KineticsFit",
    "OscillatorNoiseBudget",
    "TransientFit",
    "extract_kinetics",
    "fit_kobs_line",
    "fit_transient",
    "allan_from_white_fm",
    "leeson_phase_noise",
    "leeson_phase_noise_dbc",
    "loop_noise_budget",
    "white_fm_coefficient",
    "DoseResponseFit",
    "ResonanceFit",
    "StepDetection",
    "cusum_detect",
    "fit_baseline",
    "fit_dose_response",
    "fit_resonance",
    "measure_resonance",
    "swept_sine_response",
    "DetectionLimit",
    "LoopSweepTask",
    "SweepResult",
    "allan_curve",
    "allan_deviation",
    "allan_variance",
    "band_power",
    "band_rms",
    "concentration_responsivity",
    "coverage_lod_to_concentration",
    "fft_peak_frequency",
    "fractional_frequencies",
    "frequency_noise_to_mass_noise",
    "geometric_space",
    "limit_of_detection",
    "loop_headline",
    "override_grid",
    "psd_slope",
    "ring_down_quality_factor",
    "run_parallel",
    "run_spec_sweep",
    "run_sweep_outcomes",
    "snr_db",
    "sweep",
    "welch_psd",
    "zero_crossing_frequency",
]
