"""Oscillator phase noise: the Leeson model for the Fig. 5 loop.

The closed loop turns additive noise at the sustaining-amplifier input
into phase noise of the oscillation.  Leeson's classic result: with
carrier rms ``V_sig`` and one-sided noise PSD ``S_v`` at that node, the
single-sideband phase-noise spectrum is

    L(df) = (S_v / (2 V_sig^2)) * (1 + (f0 / (2 Q df))^2)

— flat white-phase noise far out, rising 20 dB/decade inside the
resonator half-bandwidth ``f0 / 2Q``.  Inside that region the oscillator
performs a random walk of phase, equivalent to *white frequency noise*
with coefficient

    h0 = S_v / (V_sig^2 (2 Q)^2)

whose Allan deviation is ``sigma_y(tau) = sqrt(h0 / (2 tau))`` — the
intrinsic stability floor the counter quantization (EXT2b) is compared
against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..units import require_positive


def leeson_phase_noise(
    offset_frequency: np.ndarray,
    carrier_frequency: float,
    quality_factor: float,
    signal_rms: float,
    noise_psd: float,
) -> np.ndarray:
    """Single-sideband phase noise ``L(df)`` [1/Hz] (linear, not dBc).

    Parameters
    ----------
    offset_frequency:
        Offsets from the carrier [Hz]; must be positive.
    carrier_frequency / quality_factor:
        The resonator.
    signal_rms:
        RMS carrier amplitude at the noise-injection node [V].
    noise_psd:
        One-sided additive noise PSD at the same node [V^2/Hz].
    """
    require_positive("carrier_frequency", carrier_frequency)
    require_positive("quality_factor", quality_factor)
    require_positive("signal_rms", signal_rms)
    require_positive("noise_psd", noise_psd)
    df = np.asarray(offset_frequency, dtype=float)
    if np.any(df <= 0.0):
        raise SignalError("offset frequencies must be positive")
    half_bandwidth = carrier_frequency / (2.0 * quality_factor)
    return (
        noise_psd
        / (2.0 * signal_rms**2)
        * (1.0 + (half_bandwidth / df) ** 2)
    )


def leeson_phase_noise_dbc(
    offset_frequency: np.ndarray,
    carrier_frequency: float,
    quality_factor: float,
    signal_rms: float,
    noise_psd: float,
) -> np.ndarray:
    """``L(df)`` in dBc/Hz — the datasheet unit."""
    linear = leeson_phase_noise(
        offset_frequency, carrier_frequency, quality_factor, signal_rms, noise_psd
    )
    return 10.0 * np.log10(linear)


def white_fm_coefficient(
    quality_factor: float, signal_rms: float, noise_psd: float
) -> float:
    """White-frequency-noise coefficient ``h0`` [1/Hz].

    ``S_y(f) = h0`` for offsets inside the resonator half-bandwidth.
    """
    require_positive("quality_factor", quality_factor)
    require_positive("signal_rms", signal_rms)
    require_positive("noise_psd", noise_psd)
    return noise_psd / (signal_rms**2 * (2.0 * quality_factor) ** 2)


def allan_from_white_fm(h0: float, averaging_time: float) -> float:
    """Allan deviation of white FM: ``sigma_y = sqrt(h0 / (2 tau))``."""
    require_positive("h0", h0)
    require_positive("averaging_time", averaging_time)
    return math.sqrt(h0 / (2.0 * averaging_time))


@dataclass(frozen=True)
class OscillatorNoiseBudget:
    """Leeson-model stability summary of one closed loop."""

    carrier_frequency: float
    quality_factor: float
    signal_rms: float
    noise_psd: float
    h0: float

    def allan_deviation(self, averaging_time: float) -> float:
        """Intrinsic (electronics-limited) Allan floor at ``tau``."""
        return allan_from_white_fm(self.h0, averaging_time)

    def frequency_noise(self, averaging_time: float) -> float:
        """RMS frequency noise [Hz] at ``tau``."""
        return self.allan_deviation(averaging_time) * self.carrier_frequency

    def phase_noise_dbc(self, offset_frequency: float) -> float:
        """``L(df)`` at one offset [dBc/Hz]."""
        return float(
            leeson_phase_noise_dbc(
                np.asarray([offset_frequency]),
                self.carrier_frequency,
                self.quality_factor,
                self.signal_rms,
                self.noise_psd,
            )[0]
        )


def loop_noise_budget(loop, sample_rate: float) -> OscillatorNoiseBudget:
    """Build the Leeson budget of a :class:`ResonantFeedbackLoop`.

    The dominant additive noise enters at the bridge (the loop's most
    sensitive node); the carrier there is the bridge signal at the
    predicted oscillation amplitude.
    """
    from ..feedback.agc import predict_amplitude

    prediction = predict_amplitude(loop, sample_rate)
    f0 = loop.resonator.natural_frequency
    v_sig_rms = (
        loop.displacement_to_voltage * prediction.tip_amplitude / math.sqrt(2.0)
    )
    s_v = float(loop.bridge.noise_psd(np.asarray([f0]))[0])
    q = loop.resonator.quality_factor
    return OscillatorNoiseBudget(
        carrier_frequency=f0,
        quality_factor=q,
        signal_rms=v_sig_rms,
        noise_psd=s_v,
        h0=white_fm_coefficient(q, v_sig_rms, s_v),
    )
